"""FaultSpec: validation, classification, and the fingerprint key."""

import pytest

from repro import (
    AVCProtocol,
    FaultSpec,
    InvalidParameterError,
    PairwiseLeaderElection,
    ThreeStateProtocol,
    corrupt_counts,
)
from repro.faults import FaultRuntime, active_faults


class TestValidation:
    @pytest.mark.parametrize("field", [
        "flip_prob", "crash_prob", "join_prob", "drop_prob",
        "oneway_prob", "scheduler_strength"])
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_probabilities_bounded(self, field, value):
        with pytest.raises(InvalidParameterError):
            FaultSpec(**{field: value})

    def test_flip_mode_checked(self):
        with pytest.raises(InvalidParameterError, match="flip_mode"):
            FaultSpec(flip_mode="sometimes")

    @pytest.mark.parametrize("horizon", [0, -5])
    def test_horizon_positive(self, horizon):
        with pytest.raises(InvalidParameterError, match="horizon"):
            FaultSpec(horizon=horizon)

    def test_min_population_floor(self):
        with pytest.raises(InvalidParameterError, match="min_population"):
            FaultSpec(min_population=1)

    def test_scheduler_name_checked(self):
        with pytest.raises(InvalidParameterError, match="scheduler"):
            FaultSpec(scheduler="round-robin")

    def test_scheduler_excludes_churn(self):
        with pytest.raises(InvalidParameterError, match="churn"):
            FaultSpec(scheduler="stubborn", crash_prob=0.1)

    def test_scheduler_clusters_minimum(self):
        with pytest.raises(InvalidParameterError, match="clusters"):
            FaultSpec(scheduler_clusters=1)


class TestClassification:
    def test_default_spec_is_null(self):
        spec = FaultSpec()
        assert not spec.active
        assert not spec.churn
        assert not spec.can_unsettle

    @pytest.mark.parametrize("kwargs", [
        {"flip_prob": 0.1}, {"crash_prob": 0.1}, {"join_prob": 0.1},
        {"drop_prob": 0.1}, {"oneway_prob": 0.1},
        {"scheduler": "stubborn"}])
    def test_any_channel_activates(self, kwargs):
        assert FaultSpec(**kwargs).active

    def test_churn_is_crash_or_join(self):
        assert FaultSpec(crash_prob=0.1).churn
        assert FaultSpec(join_prob=0.1).churn
        assert not FaultSpec(flip_prob=0.1).churn

    def test_unsettling_is_flip_or_join(self):
        assert FaultSpec(flip_prob=0.1).can_unsettle
        assert FaultSpec(join_prob=0.1).can_unsettle
        assert not FaultSpec(crash_prob=0.1).can_unsettle
        assert not FaultSpec(drop_prob=0.1).can_unsettle


class TestActiveFaults:
    def test_none_passes_through(self):
        assert active_faults(None) is None

    def test_null_spec_normalizes_to_none(self):
        assert active_faults(FaultSpec()) is None

    def test_active_spec_passes_through(self):
        spec = FaultSpec(flip_prob=0.1)
        assert active_faults(spec) is spec

    def test_wrong_type_rejected(self):
        with pytest.raises(InvalidParameterError, match="FaultSpec"):
            active_faults({"flip_prob": 0.1})


class TestKey:
    def test_null_spec_empty_key(self):
        assert FaultSpec().key() == {}

    def test_only_non_default_fields(self):
        spec = FaultSpec(flip_prob=0.02, horizon=500)
        assert spec.key() == {"flip_prob": 0.02, "horizon": 500}

    def test_same_model_same_key(self):
        assert (FaultSpec(flip_prob=1e-2).key()
                == FaultSpec(flip_prob=0.01).key())


class TestRuntimeBuild:
    def test_targeted_needs_majority_protocol(self):
        spec = FaultSpec(flip_prob=0.1, flip_mode="targeted")
        with pytest.raises(InvalidParameterError, match="majority"):
            FaultRuntime.build(spec, PairwiseLeaderElection(),
                               expected=1)

    def test_targeted_needs_expected(self):
        spec = FaultSpec(flip_prob=0.1, flip_mode="targeted")
        with pytest.raises(InvalidParameterError, match="expected"):
            FaultRuntime.build(spec, AVCProtocol(m=5, d=1), expected=None)

    def test_targeted_flips_to_minority_input(self):
        protocol = ThreeStateProtocol()
        spec = FaultSpec(flip_prob=0.1, flip_mode="targeted")
        runtime = FaultRuntime.build(spec, protocol, expected=1)
        minority = protocol.state_index[
            protocol.initial_state(protocol.INPUT_B)]
        assert list(runtime.flip_states) == [minority]

    def test_joins_land_in_input_states(self):
        protocol = AVCProtocol(m=5, d=1)
        runtime = FaultRuntime.build(FaultSpec(join_prob=0.1), protocol,
                                     expected=1)
        expected_states = {
            protocol.state_index[protocol.initial_state(protocol.INPUT_A)],
            protocol.state_index[protocol.initial_state(protocol.INPUT_B)]}
        assert set(runtime.join_states.tolist()) == expected_states

    def test_scheduler_requires_capable_engine(self):
        spec = FaultSpec(scheduler="stubborn")
        with pytest.raises(InvalidParameterError, match="agent"):
            FaultRuntime.build(spec, ThreeStateProtocol(), expected=1,
                               scheduler_ok=False)

    def test_hold_until_semantics(self):
        build = lambda spec: FaultRuntime.build(  # noqa: E731
            spec, ThreeStateProtocol(), expected=1)
        # Unsettling faults with a horizon hold the run until it passes.
        assert build(FaultSpec(flip_prob=0.1, horizon=400)).hold_until == 400
        # Non-unsettling faults never hold.
        assert build(FaultSpec(drop_prob=0.1, horizon=400)).hold_until == 0
        # An unbounded horizon cannot hold (the run must end sometime).
        assert build(FaultSpec(flip_prob=0.1)).hold_until == 0


class TestCorruptCounts:
    def test_moves_agents_between_states(self):
        counts = {"a": 5, "b": 3}
        out = corrupt_counts(counts, remove={"a": 2}, inject={"c": 2})
        assert out == {"a": 3, "b": 3, "c": 2}
        assert counts == {"a": 5, "b": 3}  # input untouched

    def test_drops_zeroed_states(self):
        assert corrupt_counts({"a": 2}, remove={"a": 2},
                              inject={"b": 2}) == {"b": 2}

    def test_cannot_overdraw(self):
        with pytest.raises(InvalidParameterError, match="only 1 present"):
            corrupt_counts({"a": 1}, remove={"a": 2})

    def test_rejects_negative_counts(self):
        with pytest.raises(InvalidParameterError):
            corrupt_counts({"a": 1}, remove={"a": -1})
        with pytest.raises(InvalidParameterError):
            corrupt_counts({"a": 1}, inject={"b": -1})
