"""Determinism and no-regression guarantees of the fault subsystem.

Two contracts:

* identical ``(RunSpec, FaultSpec, seed)`` → bit-identical results on
  every engine, sequentially and in parallel;
* ``faults=None`` (and the null ``FaultSpec()``) is bit-identical to
  the pre-fault-subsystem code — pinned against hardcoded seed-7
  baselines recorded before the subsystem existed, and against the
  clean cache fingerprints the run store already holds.
"""

import pytest

from repro import (
    AVCProtocol,
    FaultSpec,
    FourStateProtocol,
    RunSpec,
    ThreeStateProtocol,
    run_trials,
    run_trials_parallel,
)
from repro.runstore.fingerprint import fingerprint, spec_key

AVC = AVCProtocol(m=15, d=1)


def signature(results):
    return [(r.steps, r.decision, r.settled, r.productive_steps)
            for r in results]


def full_signature(results):
    return [(r.steps, r.decision, r.settled, r.productive_steps,
             r.fault_events,
             sorted((str(state), count)
                    for state, count in r.final_counts.items()))
            for r in results]


FAULTED = FaultSpec(flip_prob=0.02, crash_prob=0.002, join_prob=0.002,
                    drop_prob=0.01, oneway_prob=0.01, horizon=500)


class TestFaultedDeterminism:
    @pytest.mark.parametrize("engine", ["count", "agent", "batch",
                                        "ensemble", "count-ensemble",
                                        "auto"])
    def test_identical_spec_identical_results(self, engine):
        spec = RunSpec(AVC, n=101, epsilon=5 / 101, num_trials=3,
                       seed=7, engine=engine, faults=FAULTED)
        assert full_signature(run_trials(spec)) \
            == full_signature(run_trials(spec))

    def test_scheduler_runs_deterministic(self):
        spec = RunSpec(AVC, n=101, epsilon=5 / 101, num_trials=2,
                       seed=7, faults=FaultSpec(scheduler="clustered",
                                                scheduler_strength=0.8))
        assert full_signature(run_trials(spec)) \
            == full_signature(run_trials(spec))

    def test_parallel_matches_sequential(self):
        spec = RunSpec(AVC, n=101, epsilon=5 / 101, num_trials=4,
                       seed=7, faults=FAULTED)
        assert full_signature(run_trials_parallel(spec, processes=2)) \
            == full_signature(run_trials(spec))


class TestCleanBitIdentity:
    """Hardcoded pre-subsystem baselines: the fault plumbing must not
    move a single sample of any clean run."""

    BASELINES = [
        (RunSpec(AVC, n=101, epsilon=5 / 101, num_trials=4, seed=7,
                 engine="ensemble"),
         [(1053, 1, True, 386), (1105, 1, True, 434),
          (1205, 1, True, 438), (1520, 1, True, 476)]),
        (RunSpec(AVC, n=101, epsilon=5 / 101, num_trials=3, seed=7,
                 engine="count"),
         [(1104, 1, True, 439), (1707, 1, True, 520),
          (1526, 1, True, 472)]),
        (RunSpec(AVC, n=101, epsilon=5 / 101, num_trials=3, seed=7,
                 engine="agent"),
         [(1463, 1, True, 521), (1357, 1, True, 498),
          (1577, 1, True, 479)]),
        (RunSpec(ThreeStateProtocol(), n=101, epsilon=5 / 101,
                 num_trials=3, seed=7),
         [(1771, 1, True, 938), (1067, 1, True, 488),
          (1132, 0, True, 568)]),
        (RunSpec(FourStateProtocol(), n=51, epsilon=3 / 51,
                 num_trials=3, seed=7),
         [(2308, 1, True, 146), (2654, 1, True, 182),
          (1980, 1, True, 138)]),
        (RunSpec(AVC, n=101, epsilon=5 / 101, num_trials=2, seed=7,
                 engine="batch"),
         [(1064, 1, True, 430), (1298, 1, True, 448)]),
    ]

    @pytest.mark.parametrize(
        "spec,expected", BASELINES,
        ids=["ensemble", "count", "agent", "three-state-auto",
             "four-state-auto", "batch"])
    def test_faults_none_matches_baseline(self, spec, expected):
        assert signature(run_trials(spec)) == expected

    @pytest.mark.parametrize(
        "spec,expected", BASELINES,
        ids=["ensemble", "count", "agent", "three-state-auto",
             "four-state-auto", "batch"])
    def test_null_fault_spec_matches_baseline(self, spec, expected):
        assert signature(run_trials(spec.replace(faults=FaultSpec()))) \
            == expected


class TestFingerprintStability:
    """Clean cache entries committed before this subsystem must stay
    addressable: their fingerprints are pinned byte-for-byte."""

    def test_clean_fingerprints_unchanged(self):
        spec = RunSpec(AVC, n=101, epsilon=5 / 101, num_trials=4,
                       seed=7, engine="ensemble")
        assert fingerprint(spec_key(spec)) == (
            "613ac5f4d78c6351dfe6e0574ed198af"
            "dd31e107607e7401f45121ec2e252086")

    def test_clean_fingerprint_second_point(self):
        spec = RunSpec(AVCProtocol(m=7, d=2), n=51, epsilon=3 / 51,
                       num_trials=2, seed=3)
        assert fingerprint(spec_key(spec)) == (
            "580a56a004bcec2d102314224c22228c"
            "49cdbc342d9a1151dd51e7d136a2edcb")

    def test_null_spec_shares_the_clean_fingerprint(self):
        spec = RunSpec(AVC, n=101, epsilon=5 / 101, num_trials=4,
                       seed=7, engine="ensemble")
        assert fingerprint(spec_key(spec)) \
            == fingerprint(spec_key(spec.replace(faults=FaultSpec())))

    def test_active_faults_extend_the_key(self):
        spec = RunSpec(AVC, n=101, epsilon=5 / 101, num_trials=4,
                       seed=7, engine="ensemble")
        faulted = spec.replace(faults=FaultSpec(flip_prob=0.02,
                                                horizon=500))
        key = spec_key(faulted)
        assert key["faults"] == {"flip_prob": 0.02, "horizon": 500}
        assert fingerprint(key) != fingerprint(spec_key(spec))
