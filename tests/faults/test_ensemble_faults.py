"""Vectorized fault injection: the ensemble engines vs the sequential
engines.

The ensemble engines inject faults with vectorized masks over whole
trial blocks (the token engine on its agent matrix, the count ensemble
on count vectors); the sequential engines inject tick by tick.  All
sample the same faulted Markov chain, so their settling-step samples
must agree in distribution (two-sample Kolmogorov-Smirnov), and the
token ensemble's scalar single-run path must agree with the count
engine bit for bit (they share one loop).
"""

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro import AVCProtocol, FaultSpec
from repro.rng import spawn_many
from repro.sim import (
    AgentEngine,
    CountEngine,
    CountEnsembleEngine,
    EnsembleEngine,
)

PROTOCOL = AVCProtocol(m=9, d=1)


@pytest.fixture(params=[EnsembleEngine, CountEnsembleEngine],
                ids=["token-ensemble", "count-ensemble"])
def ensemble_cls(request):
    return request.param


def agent_steps(faults, *, trials, seed, count_a=36, count_b=25):
    engine = AgentEngine(PROTOCOL)
    initial = PROTOCOL.initial_counts(count_a, count_b)
    results = [engine.run(initial, rng=child, expected=1, faults=faults)
               for child in spawn_many(seed, trials)]
    assert all(r.settled for r in results)
    return [r.steps for r in results]


def ensemble_results(ensemble_cls, faults, *, trials, seed,
                     count_a=36, count_b=25):
    initial = PROTOCOL.initial_counts(count_a, count_b)
    return ensemble_cls(PROTOCOL).run_ensemble(
        initial, num_trials=trials, rng=np.random.default_rng(seed),
        expected=1, faults=faults)


@pytest.mark.parametrize("faults", [
    pytest.param(FaultSpec(flip_prob=0.02, horizon=400), id="flip"),
    pytest.param(FaultSpec(crash_prob=0.01, join_prob=0.01,
                           horizon=400), id="churn"),
    pytest.param(FaultSpec(drop_prob=0.05, oneway_prob=0.05,
                           horizon=400), id="interaction"),
], )
def test_ensemble_matches_agent_engine_distribution(faults, ensemble_cls):
    """The acceptance bar for the vectorized fault paths: fault runs
    on either ensemble engine agree in distribution with the agent
    engine's (fixed seeds keep the check deterministic)."""
    trials = 150
    sequential = agent_steps(faults, trials=trials, seed=17)
    results = ensemble_results(ensemble_cls, faults, trials=trials,
                               seed=18)
    assert all(r.settled for r in results)
    vectorized = [r.steps for r in results]
    outcome = ks_2samp(sequential, vectorized)
    assert outcome.pvalue > 0.01, (
        f"KS statistic {outcome.statistic:.3f}, "
        f"p={outcome.pvalue:.4f}")


def test_scalar_run_matches_count_engine_exactly():
    """EnsembleEngine.run delegates its faulted scalar path to the
    count engine's loop — same rng, same result, bit for bit."""
    faults = FaultSpec(flip_prob=0.03, crash_prob=0.005,
                       join_prob=0.005, horizon=300)
    initial = PROTOCOL.initial_counts(36, 25)
    a = CountEngine(PROTOCOL).run(initial, rng=5, expected=1,
                                  faults=faults)
    b = EnsembleEngine(PROTOCOL).run(initial, rng=5, expected=1,
                                     faults=faults)
    assert (a.steps, a.decision, a.settled, a.productive_steps) \
        == (b.steps, b.decision, b.settled, b.productive_steps)
    assert a.fault_events == b.fault_events
    assert a.final_counts == b.final_counts


def test_ensemble_churn_tracks_population_per_row(ensemble_cls):
    faults = FaultSpec(crash_prob=0.02, join_prob=0.02, horizon=500,
                       min_population=10)
    results = ensemble_results(ensemble_cls, faults, trials=64, seed=9)
    for r in results:
        assert r.n == 61  # initial population, by contract
        events = r.fault_events
        population = sum(r.final_counts.values())
        assert population == 61 + events["joins"] - events["crashes"]
        assert population >= 10


def test_ensemble_hold_boundary_is_exact(ensemble_cls):
    """Trials that settle inside the fault window retire at exactly
    the horizon — the vectorized cap must not overshoot it."""
    faults = FaultSpec(flip_prob=0.001, horizon=3_000)
    results = ensemble_results(ensemble_cls, faults, trials=64, seed=12,
                               count_a=55, count_b=6)
    steps = np.array([r.steps for r in results])
    assert np.all(steps >= 3_000)
    # With a huge margin and a tiny rate, most trials converge long
    # before the horizon and must land exactly on it.
    assert np.mean(steps == 3_000) > 0.5


def test_ensemble_fault_determinism_across_chunks(ensemble_cls):
    faults = FaultSpec(flip_prob=0.02, drop_prob=0.01, horizon=400)
    first = ensemble_results(ensemble_cls, faults, trials=40, seed=21)
    second = ensemble_results(ensemble_cls, faults, trials=40, seed=21)
    assert [(r.steps, r.decision, r.fault_events) for r in first] \
        == [(r.steps, r.decision, r.fault_events) for r in second]
