"""Fault injection behavior across the engines.

Every fault-capable engine must honour the same semantics: the armed
window, the hold-until-horizon rule for unsettling faults, targeted
corruption, churn floors, and the ``fault.*`` telemetry totals.
"""

import pytest

from repro import (
    AVCProtocol,
    FaultSpec,
    InvalidParameterError,
    RunSpec,
    ThreeStateProtocol,
    simulate,
)
from repro.sim import (
    AgentEngine,
    BatchEngine,
    ContinuousTimeEngine,
    CountEngine,
    EnsembleEngine,
    NullSkippingEngine,
)
from repro.sim.run import make_run_engine, run_trials
from repro.telemetry import InMemorySink, Telemetry

PROTOCOL = AVCProtocol(m=7, d=1)

ENGINES = [
    pytest.param(lambda: CountEngine(PROTOCOL), id="count"),
    pytest.param(lambda: AgentEngine(PROTOCOL), id="agent"),
    pytest.param(lambda: BatchEngine(PROTOCOL), id="batch"),
    pytest.param(lambda: EnsembleEngine(PROTOCOL), id="ensemble"),
]


def run_one(engine, faults, *, seed=7, count_a=31, count_b=20):
    return engine.run(PROTOCOL.initial_counts(count_a, count_b),
                      rng=seed, expected=1, faults=faults)


class TestBasicInjection:
    @pytest.mark.parametrize("make_engine", ENGINES)
    def test_flip_faults_counted_and_survivable(self, make_engine):
        result = run_one(make_engine(),
                         FaultSpec(flip_prob=0.05, horizon=300))
        assert result.settled
        assert result.fault_events["flips"] > 0
        assert result.fault_events["crashes"] == 0

    @pytest.mark.parametrize("make_engine", ENGINES)
    def test_clean_run_has_no_fault_events(self, make_engine):
        result = run_one(make_engine(), None)
        assert result.settled
        assert result.fault_events is None

    @pytest.mark.parametrize("make_engine", ENGINES)
    def test_null_spec_equals_none(self, make_engine):
        clean = run_one(make_engine(), None)
        null = run_one(make_engine(), FaultSpec())
        assert (null.steps, null.decision, null.settled) \
            == (clean.steps, clean.decision, clean.settled)
        assert null.fault_events is None

    @pytest.mark.parametrize("make_engine", [
        pytest.param(lambda: NullSkippingEngine(PROTOCOL),
                     id="null-skipping"),
        pytest.param(lambda: ContinuousTimeEngine(PROTOCOL),
                     id="continuous-time"),
    ])
    def test_analytic_engines_reject_faults(self, make_engine):
        with pytest.raises(InvalidParameterError,
                           match="does not support fault injection"):
            run_one(make_engine(), FaultSpec(flip_prob=0.05))


class TestHoldUntilHorizon:
    """Unsettling faults hold the run in the arena until the horizon."""

    HORIZON = 400

    @pytest.mark.parametrize("make_engine", ENGINES)
    def test_settled_runs_outlast_the_window(self, make_engine):
        result = run_one(make_engine(),
                         FaultSpec(flip_prob=0.02, horizon=self.HORIZON))
        assert result.settled
        assert result.steps >= self.HORIZON

    @pytest.mark.parametrize("make_engine", ENGINES)
    def test_non_unsettling_faults_do_not_hold(self, make_engine):
        # A huge margin settles fast; drops cannot unsettle, so the
        # run may end well inside the fault window.
        result = run_one(make_engine(),
                         FaultSpec(drop_prob=0.05, horizon=100_000),
                         count_a=50, count_b=1)
        assert result.settled
        assert result.steps < 100_000


class TestTargetedCorruption:
    def test_flips_the_majority(self):
        """The targeted adversary rewrites agents into the minority
        input at a rate the initial margin cannot survive; AVC then
        converges to the *corrupted* total's sign (Lemma A.1)."""
        engine = CountEngine(PROTOCOL)
        result = engine.run(
            PROTOCOL.initial_counts(28, 23), rng=11, expected=1,
            faults=FaultSpec(flip_prob=0.15, flip_mode="targeted",
                             horizon=2_000))
        assert result.settled
        assert result.decision == 0
        assert result.fault_events["flips"] > 0

    def test_uniform_low_rate_preserves_majority(self):
        engine = CountEngine(PROTOCOL)
        result = engine.run(
            PROTOCOL.initial_counts(40, 11), rng=11, expected=1,
            faults=FaultSpec(flip_prob=0.005, horizon=200))
        assert result.settled
        assert result.decision == 1


class TestChurn:
    @pytest.mark.parametrize("make_engine", ENGINES[:3])
    def test_population_drifts_but_n_reports_initial(self, make_engine):
        result = run_one(make_engine(),
                         FaultSpec(crash_prob=0.01, join_prob=0.01,
                                   horizon=600))
        assert result.settled
        assert result.n == 51  # the *initial* population, by contract
        events = result.fault_events
        assert events["crashes"] > 0 or events["joins"] > 0
        final_population = sum(result.final_counts.values())
        drift = events["joins"] - events["crashes"]
        assert final_population == 51 + drift

    def test_crash_floor_respected(self):
        engine = CountEngine(PROTOCOL)
        result = engine.run(
            PROTOCOL.initial_counts(7, 4), rng=5, expected=1,
            faults=FaultSpec(crash_prob=0.5, horizon=500,
                             min_population=6))
        assert sum(result.final_counts.values()) >= 6

    def test_churn_rejected_off_the_complete_graph(self):
        networkx = pytest.importorskip("networkx")
        engine = AgentEngine(PROTOCOL,
                             graph=networkx.cycle_graph(51))
        with pytest.raises(InvalidParameterError, match="churn"):
            run_one(engine, FaultSpec(crash_prob=0.1))


class TestSpecRouting:
    def test_auto_routes_faulted_specs_to_count(self):
        spec = RunSpec(PROTOCOL, n=51, epsilon=3 / 51, seed=7,
                       faults=FaultSpec(flip_prob=0.01))
        assert make_run_engine(spec).name == "count"

    def test_auto_routes_scheduler_specs_to_agent(self):
        spec = RunSpec(PROTOCOL, n=51, epsilon=3 / 51, seed=7,
                       faults=FaultSpec(scheduler="stubborn"))
        assert make_run_engine(spec).name == "agent"

    def test_explicit_unsupported_engine_rejected(self):
        spec = RunSpec(PROTOCOL, n=51, epsilon=3 / 51, seed=7,
                       engine="null-skipping",
                       faults=FaultSpec(flip_prob=0.01))
        with pytest.raises(InvalidParameterError,
                           match="fault injection"):
            simulate(spec)

    def test_explicit_ensemble_rejects_scheduler(self):
        spec = RunSpec(PROTOCOL, n=51, epsilon=3 / 51, num_trials=4,
                       seed=7, engine="ensemble",
                       faults=FaultSpec(scheduler="stubborn"))
        with pytest.raises(InvalidParameterError, match="scheduler"):
            run_trials(spec)

    def test_scheduler_rejected_with_graph(self):
        networkx = pytest.importorskip("networkx")
        with pytest.raises(InvalidParameterError, match="graph"):
            RunSpec(PROTOCOL, n=51, epsilon=3 / 51, seed=7,
                    graph=networkx.cycle_graph(51),
                    faults=FaultSpec(scheduler="stubborn"))


class TestFaultTelemetry:
    def test_fault_counters_emitted(self):
        sink = InMemorySink()
        spec = RunSpec(ThreeStateProtocol(), n=51, epsilon=3 / 51,
                       num_trials=3, seed=7, engine="count",
                       faults=FaultSpec(flip_prob=0.05, horizon=300),
                       telemetry=Telemetry([sink]))
        results = run_trials(spec)
        runs = sum(r["value"] for r in sink.records
                   if r.get("name") == "fault.runs")
        flips = sum(r["value"] for r in sink.records
                    if r.get("name") == "fault.flips")
        assert runs == 3
        assert flips == sum(res.fault_events["flips"]
                            for res in results)
