"""Byzantine corruption budgets: validation, injection, determinism.

The byzantine channel differs from the transient fault channels in two
ways that these tests pin down: the adversary is a *budget* (``f`` of
``n`` agents lie in every meeting they join, resolved hypergeometrically
per meeting) rather than a rate, and lies corrupt the *message* — the
presented state — never the liar's own state, so the underlying
configuration only moves through honest updates.
"""

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro import (
    AVCProtocol,
    FaultSpec,
    FourStateProtocol,
    InvalidParameterError,
    PairwiseLeaderElection,
    RunSpec,
    corrupt_counts,
    run_majority,
    run_trials,
)
from repro.faults import FaultRuntime, active_faults
from repro.rng import spawn_many
from repro.runstore.fingerprint import fingerprint, spec_key
from repro.sim import AgentEngine, CountEngine, EnsembleEngine
from repro.sim.run import make_run_engine
from repro.telemetry import InMemorySink, Telemetry

PROTOCOL = AVCProtocol(m=7, d=1)


class TestSpecValidation:
    @pytest.mark.parametrize("f", [-1, -7])
    def test_budget_non_negative(self, f):
        with pytest.raises(InvalidParameterError, match="byzantine_f"):
            FaultSpec(byzantine_f=f)

    @pytest.mark.parametrize("f", [True, 1.5, "2"])
    def test_budget_must_be_an_integer(self, f):
        with pytest.raises(InvalidParameterError, match="byzantine_f"):
            FaultSpec(byzantine_f=f)

    def test_mode_checked(self):
        with pytest.raises(InvalidParameterError, match="byzantine_mode"):
            FaultSpec(byzantine_f=2, byzantine_mode="sneaky")

    @pytest.mark.parametrize("churn", [{"crash_prob": 0.1},
                                       {"join_prob": 0.1}])
    def test_byzantine_excludes_churn(self, churn):
        with pytest.raises(InvalidParameterError, match="churn"):
            FaultSpec(byzantine_f=2, **churn)

    def test_budget_activates_and_can_unsettle(self):
        spec = FaultSpec(byzantine_f=1)
        assert spec.active
        assert spec.can_unsettle
        assert not spec.churn

    def test_zero_budget_is_null(self):
        spec = FaultSpec(byzantine_f=0)
        assert not spec.active
        assert active_faults(spec) is None

    def test_key_only_non_default_fields(self):
        assert FaultSpec(byzantine_f=3).key() == {"byzantine_f": 3}
        assert FaultSpec(byzantine_f=3, byzantine_mode="adaptive").key() \
            == {"byzantine_f": 3, "byzantine_mode": "adaptive"}


class TestRuntimeBuild:
    def test_requires_capable_engine(self):
        with pytest.raises(InvalidParameterError,
                           match="byzantine corruption"):
            FaultRuntime.build(FaultSpec(byzantine_f=2), PROTOCOL,
                               expected=1, byzantine_ok=False)

    def test_budget_must_leave_an_honest_agent(self):
        with pytest.raises(InvalidParameterError, match="smaller"):
            FaultRuntime.build(FaultSpec(byzantine_f=51), PROTOCOL,
                               expected=1, byzantine_ok=True, n=51)

    def test_needs_majority_protocol(self):
        with pytest.raises(InvalidParameterError, match="majority"):
            FaultRuntime.build(FaultSpec(byzantine_f=2),
                               PairwiseLeaderElection(), expected=1,
                               byzantine_ok=True, n=51)

    def test_stubborn_needs_expected(self):
        with pytest.raises(InvalidParameterError, match="expected"):
            FaultRuntime.build(FaultSpec(byzantine_f=2), PROTOCOL,
                               expected=None, byzantine_ok=True, n=51)

    def test_stubborn_lies_with_the_minority_input(self):
        runtime = FaultRuntime.build(FaultSpec(byzantine_f=2), PROTOCOL,
                                     expected=1, byzantine_ok=True, n=51)
        minority = PROTOCOL.state_index[
            PROTOCOL.initial_state(PROTOCOL.INPUT_B)]
        counts = np.zeros(PROTOCOL.num_states, dtype=np.int64)
        assert runtime.byzantine_lie_state(counts) == minority

    def test_adaptive_lies_with_the_trailing_opinion(self):
        protocol = FourStateProtocol()
        runtime = FaultRuntime.build(
            FaultSpec(byzantine_f=2, byzantine_mode="adaptive"),
            protocol, expected=1, byzantine_ok=True, n=51)
        lie_a = protocol.state_index[
            protocol.initial_state(protocol.INPUT_A)]
        lie_b = protocol.state_index[
            protocol.initial_state(protocol.INPUT_B)]
        counts = np.zeros(protocol.num_states, dtype=np.int64)
        counts[lie_a] = 30
        counts[lie_b] = 21
        assert runtime.byzantine_lie_state(counts) == lie_b
        counts[lie_b] = 40
        assert runtime.byzantine_lie_state(counts) == lie_a
        # The vectorized twin agrees row for row.
        stacked = np.stack([counts, counts])
        assert runtime.byzantine_lie_rows(stacked).tolist() \
            == [lie_a, lie_a]


ENGINES = [
    pytest.param(lambda: CountEngine(PROTOCOL), id="count"),
    pytest.param(lambda: AgentEngine(PROTOCOL), id="agent"),
    pytest.param(lambda: EnsembleEngine(PROTOCOL), id="ensemble"),
]


def run_one(engine, faults, *, seed=7, count_a=31, count_b=20):
    return engine.run(PROTOCOL.initial_counts(count_a, count_b),
                      rng=seed, expected=1, faults=faults)


class TestInjection:
    @pytest.mark.parametrize("make_engine", ENGINES)
    def test_lies_counted_and_survivable(self, make_engine):
        result = run_one(make_engine(),
                         FaultSpec(byzantine_f=3, horizon=300))
        assert result.settled
        assert result.fault_events["byzantine_meetings"] > 0
        assert result.fault_events["byzantine_lies"] \
            >= result.fault_events["byzantine_meetings"]

    @pytest.mark.parametrize("make_engine", ENGINES)
    def test_counters_absent_without_a_budget(self, make_engine):
        """Non-byzantine faulted runs keep their pre-byzantine event
        dict shape — cached results must not grow new keys."""
        result = run_one(make_engine(),
                         FaultSpec(flip_prob=0.02, horizon=300))
        assert "byzantine_lies" not in result.fault_events
        assert "byzantine_meetings" not in result.fault_events

    @pytest.mark.parametrize("make_engine", ENGINES)
    def test_horizon_holds_the_run(self, make_engine):
        result = run_one(make_engine(),
                         FaultSpec(byzantine_f=2, horizon=400))
        assert result.settled
        assert result.steps >= 400

    def test_persistent_stubborn_adversary_flips_the_outcome(self):
        """Byzantine agents never update their own state: armed
        forever, they act as minority zealots and drag even an exact
        protocol to the wrong absorbing state."""
        result = run_one(CountEngine(PROTOCOL),
                         FaultSpec(byzantine_f=5), seed=11)
        assert result.settled
        assert result.decision == 0

    def test_transient_small_budget_preserves_the_majority(self):
        result = run_one(CountEngine(PROTOCOL),
                         FaultSpec(byzantine_f=1, horizon=200), seed=11,
                         count_a=40, count_b=11)
        assert result.settled
        assert result.decision == 1

    def test_lies_move_no_byzantine_state(self):
        """Message corruption only: the configuration's total count
        never changes, unlike churn."""
        result = run_one(CountEngine(PROTOCOL),
                         FaultSpec(byzantine_f=4, horizon=500))
        assert sum(result.final_counts.values()) == 51


class TestDeterminism:
    def test_scalar_run_matches_count_engine_exactly(self):
        faults = FaultSpec(byzantine_f=4, byzantine_mode="adaptive",
                           horizon=400)
        initial = PROTOCOL.initial_counts(31, 20)
        a = CountEngine(PROTOCOL).run(initial, rng=5, expected=1,
                                      faults=faults)
        b = EnsembleEngine(PROTOCOL).run(initial, rng=5, expected=1,
                                         faults=faults)
        assert (a.steps, a.decision, a.settled, a.productive_steps) \
            == (b.steps, b.decision, b.settled, b.productive_steps)
        assert a.fault_events == b.fault_events
        assert a.final_counts == b.final_counts

    @pytest.mark.parametrize("mode", ["stubborn", "adaptive"])
    def test_vectorized_ensemble_deterministic(self, mode):
        faults = FaultSpec(byzantine_f=3, byzantine_mode=mode,
                           horizon=400)
        initial = PROTOCOL.initial_counts(31, 20)

        def batch():
            return EnsembleEngine(PROTOCOL).run_ensemble(
                initial, num_trials=32,
                rng=np.random.default_rng(21), expected=1,
                faults=faults)

        assert [(r.steps, r.decision, r.fault_events) for r in batch()] \
            == [(r.steps, r.decision, r.fault_events) for r in batch()]

    @pytest.mark.parametrize("mode", ["stubborn", "adaptive"])
    def test_ensemble_matches_agent_engine_distribution(self, mode):
        """The vectorized byzantine path samples the same faulted
        chain as the sequential engines (two-sample KS on settling
        steps; fixed seeds keep the check deterministic)."""
        faults = FaultSpec(byzantine_f=3, byzantine_mode=mode,
                           horizon=400)
        initial = PROTOCOL.initial_counts(36, 25)
        trials = 150
        engine = AgentEngine(PROTOCOL)
        sequential = [engine.run(initial, rng=child, expected=1,
                                 faults=faults).steps
                      for child in spawn_many(17, trials)]
        results = EnsembleEngine(PROTOCOL).run_ensemble(
            initial, num_trials=trials,
            rng=np.random.default_rng(18), expected=1, faults=faults)
        assert all(r.settled for r in results)
        outcome = ks_2samp(sequential, [r.steps for r in results])
        assert outcome.pvalue > 0.01, (
            f"KS statistic {outcome.statistic:.3f}, "
            f"p={outcome.pvalue:.4f}")


class TestZeroBudgetIdentity:
    """``byzantine_f=0`` must be bit-identical to a clean run — pinned
    against the same seed-7 baseline as the other null-spec checks."""

    SPEC = RunSpec(AVCProtocol(m=15, d=1), n=101, epsilon=5 / 101,
                   num_trials=3, seed=7, engine="count")
    BASELINE = [(1104, 1, True, 439), (1707, 1, True, 520),
                (1526, 1, True, 472)]

    def signature(self, results):
        return [(r.steps, r.decision, r.settled, r.productive_steps)
                for r in results]

    def test_zero_budget_matches_the_pinned_baseline(self):
        spec = self.SPEC.replace(faults=FaultSpec(byzantine_f=0))
        assert self.signature(run_trials(spec)) == self.BASELINE

    def test_zero_budget_shares_the_clean_fingerprint(self):
        spec = self.SPEC.replace(faults=FaultSpec(byzantine_f=0))
        assert fingerprint(spec_key(spec)) \
            == fingerprint(spec_key(self.SPEC))
        # Even with a non-default mode: f=0 never lies, so the mode
        # cannot matter.
        adaptive = self.SPEC.replace(
            faults=FaultSpec(byzantine_f=0, byzantine_mode="adaptive"))
        assert fingerprint(spec_key(adaptive)) \
            == fingerprint(spec_key(self.SPEC))

    def test_active_budget_extends_the_key(self):
        faulted = self.SPEC.replace(faults=FaultSpec(byzantine_f=3))
        assert spec_key(faulted)["faults"] == {"byzantine_f": 3}
        assert fingerprint(spec_key(faulted)) \
            != fingerprint(spec_key(self.SPEC))


class TestLemmaA1OneShot:
    """One-shot byzantine rewrite via ``corrupt_counts``: Lemma A.1
    says the protocol re-converges to the *corrupted* total's sign."""

    def test_below_margin_rewrite_preserves_the_decision(self):
        protocol = AVCProtocol(m=7, d=1)
        initial = protocol.initial_counts(31, 20)
        state_a = protocol.initial_state(protocol.INPUT_A)
        state_b = protocol.initial_state(protocol.INPUT_B)
        corrupted = corrupt_counts(initial, remove={state_a: 3},
                                   inject={state_b: 3})
        result = CountEngine(protocol).run(corrupted, rng=7, expected=1)
        assert result.settled
        assert result.decision == 1

    def test_above_margin_rewrite_flips_the_decision(self):
        protocol = AVCProtocol(m=7, d=1)
        initial = protocol.initial_counts(31, 20)
        state_a = protocol.initial_state(protocol.INPUT_A)
        state_b = protocol.initial_state(protocol.INPUT_B)
        corrupted = corrupt_counts(initial, remove={state_a: 10},
                                   inject={state_b: 10})
        result = CountEngine(protocol).run(corrupted, rng=7, expected=1)
        assert result.settled
        assert result.decision == 0


class TestRoutingAndTelemetry:
    def test_auto_routes_byzantine_specs_to_count(self):
        spec = RunSpec(PROTOCOL, n=51, epsilon=3 / 51, seed=7,
                       faults=FaultSpec(byzantine_f=2))
        assert make_run_engine(spec).name == "count"

    @pytest.mark.parametrize("engine", ["batch", "null-skipping",
                                        "continuous-time"])
    def test_incapable_engines_rejected(self, engine):
        spec = RunSpec(PROTOCOL, n=51, epsilon=3 / 51, seed=7,
                       engine=engine, faults=FaultSpec(byzantine_f=2))
        with pytest.raises(InvalidParameterError):
            run_majority(spec)

    def test_budget_at_population_size_rejected(self):
        spec = RunSpec(PROTOCOL, n=51, epsilon=3 / 51, seed=7,
                       faults=FaultSpec(byzantine_f=51))
        with pytest.raises(InvalidParameterError, match="honest"):
            run_majority(spec)

    def test_multi_trial_auto_stays_on_the_token_ensemble(self):
        spec = RunSpec(PROTOCOL, n=51, epsilon=3 / 51, num_trials=4,
                       seed=7, faults=FaultSpec(byzantine_f=2,
                                                horizon=300))
        results = run_trials(spec)
        assert len(results) == 4
        assert all(r.fault_events["byzantine_meetings"] > 0
                   for r in results)

    def test_byzantine_counters_emitted(self):
        sink = InMemorySink()
        spec = RunSpec(PROTOCOL, n=51, epsilon=3 / 51, num_trials=3,
                       seed=7, engine="count",
                       faults=FaultSpec(byzantine_f=3, horizon=300),
                       telemetry=Telemetry([sink]))
        results = run_trials(spec)
        lies = sum(r["value"] for r in sink.records
                   if r.get("name") == "fault.byzantine_lies")
        assert lies == sum(res.fault_events["byzantine_lies"]
                           for res in results)
        assert lies > 0
