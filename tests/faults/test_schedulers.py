"""Adversarial pair samplers: stubborn and clustered scheduling."""

import numpy as np
import pytest

from repro import AVCProtocol, FaultSpec, RunSpec
from repro.errors import InvalidParameterError
from repro.sim import ClusteredPairSampler, StubbornPairSampler
from repro.sim.run import run_trials


class TestStubbornSampler:
    def test_favours_the_stubborn_pair(self):
        sampler = StubbornPairSampler(50, strength=0.9)
        rng = np.random.default_rng(0)
        first, second = map(np.asarray,
                            sampler.sample_block(rng, 20_000))
        stubborn = np.mean((first == 0) & (second == 1))
        assert 0.88 < stubborn < 0.92

    def test_pairs_always_valid(self):
        sampler = StubbornPairSampler(10, strength=0.5, pair=(3, 7))
        rng = np.random.default_rng(1)
        first, second = map(np.asarray,
                            sampler.sample_block(rng, 5_000))
        assert np.all(first != second)
        assert np.all((0 <= first) & (first < 10))
        assert np.all((0 <= second) & (second < 10))

    def test_zero_strength_is_uniform(self):
        sampler = StubbornPairSampler(40, strength=0.0)
        rng = np.random.default_rng(2)
        first, second = map(np.asarray,
                            sampler.sample_block(rng, 20_000))
        # Each ordered pair has probability 1/(40*39); the favoured
        # pair must not stick out.
        stubborn = np.mean((first == 0) & (second == 1))
        assert stubborn < 0.01

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            StubbornPairSampler(1)
        with pytest.raises(InvalidParameterError):
            StubbornPairSampler(10, strength=1.0)
        with pytest.raises(InvalidParameterError):
            StubbornPairSampler(10, pair=(3, 3))
        with pytest.raises(InvalidParameterError):
            StubbornPairSampler(10, pair=(0, 10))


class TestClusteredSampler:
    def test_intra_cluster_fraction(self):
        sampler = ClusteredPairSampler(60, clusters=3, intra_prob=0.9)
        rng = np.random.default_rng(3)
        first, second = map(np.asarray,
                            sampler.sample_block(rng, 20_000))
        cluster_of = np.minimum(first // 20, 2)
        same = np.mean(cluster_of == np.minimum(second // 20, 2))
        # 90% forced intra plus the uniform draws that land intra by
        # chance (~1/3 of the remaining 10%).
        assert same > 0.9

    def test_pairs_always_valid(self):
        sampler = ClusteredPairSampler(23, clusters=4, intra_prob=0.95)
        rng = np.random.default_rng(4)
        first, second = map(np.asarray,
                            sampler.sample_block(rng, 5_000))
        assert np.all(first != second)
        assert np.all((0 <= first) & (first < 23))
        assert np.all((0 <= second) & (second < 23))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ClusteredPairSampler(10, clusters=1)
        with pytest.raises(InvalidParameterError):
            ClusteredPairSampler(1)
        with pytest.raises(InvalidParameterError):
            ClusteredPairSampler(10, intra_prob=1.5)


class TestSchedulerIntegration:
    """FaultSpec schedulers through the run harness."""

    def test_stubborn_scheduler_slows_convergence(self):
        protocol = AVCProtocol(m=15, d=1)
        clean = RunSpec(protocol, n=101, epsilon=5 / 101, num_trials=3,
                        seed=7, engine="agent")
        stubborn = clean.replace(
            faults=FaultSpec(scheduler="stubborn",
                             scheduler_strength=0.95))
        clean_mean = np.mean([r.steps for r in run_trials(clean)])
        stubborn_results = run_trials(stubborn)
        assert all(r.settled for r in stubborn_results)
        stubborn_mean = np.mean([r.steps for r in stubborn_results])
        # 95% of interactions hit one fixed pair; progress crawls.
        assert stubborn_mean > 2 * clean_mean

    def test_clustered_scheduler_settles_correctly(self):
        protocol = AVCProtocol(m=15, d=1)
        spec = RunSpec(protocol, n=100, epsilon=6 / 100, num_trials=3,
                       seed=7,
                       faults=FaultSpec(scheduler="clustered",
                                        scheduler_clusters=4,
                                        scheduler_strength=0.9))
        results = run_trials(spec)
        assert all(r.settled for r in results)
        assert all(r.decision == 1 for r in results)
