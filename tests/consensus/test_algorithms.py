"""Round-based consensus algorithms: Ben-Or and epsilon-agreement.

Unit-level checks against :meth:`simulate_rounds` directly — the
engine-independent contracts: validity, agreement, determinism, the
``n > 3f`` termination region, and the adversary accounting.
"""

import numpy as np
import pytest

from repro import InvalidParameterError
from repro.consensus import BenOrConsensus, EpsilonAgreementConsensus
from repro.consensus.algorithms import ConsensusProtocol
from repro.protocols.base import MAJORITY_A, MAJORITY_B


def run_rounds(protocol, count_a, count_b, *, f=0, mode="stubborn",
               expected=1, seed=0, max_rounds=200):
    return protocol.simulate_rounds(
        count_a, count_b, f=f, mode=mode, expected=expected,
        rng=np.random.default_rng(seed), max_rounds=max_rounds)


class TestProtocolInterface:
    @pytest.mark.parametrize("protocol", [BenOrConsensus(),
                                          EpsilonAgreementConsensus()])
    def test_round_based_flag_and_binary_states(self, protocol):
        assert protocol.is_round_based
        assert tuple(protocol.enumerate_states()) == ("A", "B")
        assert protocol.output("A") == MAJORITY_A
        assert protocol.output("B") == MAJORITY_B
        # No pairwise dynamics: the transition is the identity.
        assert protocol.transition("A", "B") == ("A", "B")

    def test_settlement_is_unanimity(self):
        protocol = BenOrConsensus()
        assert protocol.is_settled({"A": 5})
        assert protocol.is_settled({"B": 5})
        assert not protocol.is_settled({"A": 3, "B": 2})

    def test_corruption_hits_the_majority_first(self):
        corrupt = ConsensusProtocol._corrupt
        assert corrupt(60, 40, 10, MAJORITY_A) == (50, 40)
        assert corrupt(60, 40, 10, MAJORITY_B) == (60, 30)
        # Spill: the budget exceeds the preferred side.
        assert corrupt(60, 40, 45, MAJORITY_B) == (55, 0)
        # No expected majority: split evenly.
        assert corrupt(50, 50, 4, None) == (48, 48)


class TestBenOr:
    def test_clean_run_decides_immediately(self):
        outcome = run_rounds(BenOrConsensus(), 60, 40)
        assert outcome.settled
        assert outcome.rounds == 1
        assert outcome.decision == 1
        assert outcome.lies == 0
        assert outcome.final_counts == {"A": 100}

    def test_validity_unanimous_input_is_kept(self):
        for value, count_a, count_b, decision in [
                ("A", 100, 0, 1), ("B", 0, 100, 0)]:
            outcome = run_rounds(BenOrConsensus(), count_a, count_b,
                                 expected=decision)
            assert outcome.settled
            assert outcome.decision == decision

    @pytest.mark.parametrize("mode", ["stubborn", "adaptive"])
    def test_agreement_with_a_small_budget(self, mode):
        outcome = run_rounds(BenOrConsensus(), 60, 40, f=8, mode=mode,
                             seed=5)
        assert outcome.settled
        assert outcome.decision in (0, 1)

    def test_deterministic_given_a_seed(self):
        a = run_rounds(BenOrConsensus(), 52, 48, f=10, seed=9)
        b = run_rounds(BenOrConsensus(), 52, 48, f=10, seed=9)
        assert (a.rounds, a.decision, a.settled, a.lies) \
            == (b.rounds, b.decision, b.settled, b.lies)

    def test_blocked_beyond_a_third(self):
        """At n <= 3f the adversary can stall Ben-Or forever: neither
        value ever clears the (n + f)/2 proposal threshold."""
        outcome = run_rounds(BenOrConsensus(), 60, 40, f=40,
                             mode="adaptive", max_rounds=200)
        assert not outcome.settled
        assert outcome.rounds == 200
        assert outcome.decision is None

    def test_lie_accounting(self):
        """Every round delivers 2 phases x f liars x h honest
        recipients."""
        outcome = run_rounds(BenOrConsensus(), 60, 40, f=5, seed=3)
        h = 100 - 5
        assert outcome.broadcasts == 2 * outcome.rounds
        assert outcome.lies == 2 * 5 * h * outcome.rounds


class TestEpsilonAgreement:
    def test_parameter_validation(self):
        for bad in (0.0, 1.0, -0.2, 5.0):
            with pytest.raises(InvalidParameterError,
                               match="epsilon_agree"):
                EpsilonAgreementConsensus(epsilon_agree=bad)

    def test_requires_honest_majority_of_received_values(self):
        with pytest.raises(InvalidParameterError, match="n > 2f"):
            run_rounds(EpsilonAgreementConsensus(), 60, 40, f=50)

    def test_clean_run_averages_in_one_round(self):
        outcome = run_rounds(EpsilonAgreementConsensus(), 60, 40)
        assert outcome.settled
        assert outcome.rounds == 1
        assert outcome.decision == 1

    @pytest.mark.parametrize("mode", ["stubborn", "adaptive"])
    def test_converges_under_a_small_budget(self, mode):
        outcome = run_rounds(EpsilonAgreementConsensus(), 60, 40, f=5,
                             mode=mode)
        assert outcome.settled
        assert outcome.decision == 1

    def test_adaptive_equivocation_slows_convergence(self):
        stubborn = run_rounds(EpsilonAgreementConsensus(), 60, 40,
                              f=10, mode="stubborn")
        adaptive = run_rounds(EpsilonAgreementConsensus(), 60, 40,
                              f=10, mode="adaptive")
        assert adaptive.rounds > stubborn.rounds

    def test_large_stubborn_budget_flips_the_decision(self):
        """f = 20 of n = 100 erases a 60/40 margin: the adversary
        corrupts 20 majority servers and drags the trimmed mean below
        1/2 — exactness is gone well before n/3."""
        outcome = run_rounds(EpsilonAgreementConsensus(), 60, 40, f=20)
        assert outcome.settled
        assert outcome.decision == 0

    def test_deterministic_without_randomness(self):
        a = run_rounds(EpsilonAgreementConsensus(), 60, 40, f=10,
                       mode="adaptive", seed=1)
        b = run_rounds(EpsilonAgreementConsensus(), 60, 40, f=10,
                       mode="adaptive", seed=99)
        assert (a.rounds, a.decision, a.settled) \
            == (b.rounds, b.decision, b.settled)

    def test_tighter_epsilon_needs_more_rounds(self):
        loose = run_rounds(EpsilonAgreementConsensus(0.25), 60, 40,
                           f=10, mode="adaptive")
        tight = run_rounds(EpsilonAgreementConsensus(0.001), 60, 40,
                           f=10, mode="adaptive")
        assert tight.rounds > loose.rounds
