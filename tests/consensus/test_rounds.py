"""The rounds engine on the RunSpec rails.

Round-based consensus must ride the exact same front door as the
population protocols: registry names, ``RunSpec`` input forms, fault
specs, serialization, the run store, and the trial runners — with the
population-only features rejected loudly rather than misbehaving.
"""

import pytest

from repro import (
    ConvergenceTimeout,
    FaultSpec,
    FourStateProtocol,
    InvalidParameterError,
    RunSpec,
    protocol_from_dict,
    protocol_to_dict,
    run_majority,
    run_trials,
    simulate,
)
from repro.consensus import (
    BenOrConsensus,
    EpsilonAgreementConsensus,
    RoundsEngine,
)
from repro.runstore import Orchestrator, RunStore
from repro.runstore.fingerprint import fingerprint, spec_key
from repro.sim import engines
from repro.sim.run import make_run_engine


def ben_or_spec(**overrides):
    base = dict(n=100, epsilon=0.2, seed=7, max_steps=500)
    base.update(overrides)
    return RunSpec("ben-or", **base)


class TestRouting:
    def test_auto_routes_to_the_rounds_engine(self):
        assert make_run_engine(ben_or_spec()).name == "rounds"
        assert engines.resolve_name("auto", BenOrConsensus()) == "rounds"

    @pytest.mark.parametrize("engine", ["count", "agent", "batch",
                                        "ensemble", "null-skipping"])
    def test_population_engines_refuse_round_protocols(self, engine):
        with pytest.raises(InvalidParameterError,
                           match="round-based"):
            simulate(ben_or_spec(engine=engine))

    def test_rounds_engine_refuses_population_protocols(self):
        with pytest.raises(InvalidParameterError, match="rounds"):
            RoundsEngine(FourStateProtocol())

    def test_registry_names_resolve(self):
        result = run_majority(RunSpec(("epsilon-agreement",
                                       {"epsilon_agree": 0.1}),
                                      n=100, epsilon=0.2, seed=1))
        assert result.engine_name == "rounds"
        assert result.decision == 1


class TestExecution:
    def test_clean_ben_or_reaches_agreement(self):
        result = run_majority(ben_or_spec())
        assert result.settled
        assert result.decision == 1
        assert result.steps == 1  # rounds, not interactions
        assert result.fault_events is None

    def test_byzantine_budget_through_the_fault_spec(self):
        result = run_majority(ben_or_spec(
            faults=FaultSpec(byzantine_f=8)))
        assert result.settled
        assert result.fault_events["byzantine_lies"] > 0
        assert result.fault_events["byzantine_meetings"] > 0

    def test_blocked_run_exhausts_the_round_budget(self):
        result = run_majority(ben_or_spec(
            max_steps=50,
            faults=FaultSpec(byzantine_f=40,
                             byzantine_mode="adaptive")))
        assert not result.settled
        assert result.steps == 50

    def test_blocked_run_raises_on_request(self):
        spec = ben_or_spec(max_steps=50, on_timeout="raise",
                           faults=FaultSpec(byzantine_f=40,
                                            byzantine_mode="adaptive"))
        with pytest.raises(ConvergenceTimeout, match="agreement"):
            run_majority(spec)

    def test_trial_batches_run_per_trial(self):
        results = run_trials(ben_or_spec(
            num_trials=4, faults=FaultSpec(byzantine_f=8)))
        assert len(results) == 4
        assert all(r.engine_name == "rounds" for r in results)
        # Independent streams: the coin phases may disagree, but
        # determinism holds batch to batch.
        again = run_trials(ben_or_spec(
            num_trials=4, faults=FaultSpec(byzantine_f=8)))
        assert [(r.steps, r.decision) for r in results] \
            == [(r.steps, r.decision) for r in again]


class TestRejections:
    def test_max_parallel_time_rejected(self):
        with pytest.raises(InvalidParameterError, match="rounds"):
            run_majority(RunSpec("ben-or", n=100, epsilon=0.2, seed=1,
                                 max_parallel_time=20.0))

    def test_population_fault_fields_rejected(self):
        with pytest.raises(InvalidParameterError, match="flip_prob"):
            run_majority(ben_or_spec(faults=FaultSpec(flip_prob=0.01)))

    def test_interaction_horizon_rejected(self):
        with pytest.raises(InvalidParameterError, match="horizon"):
            run_majority(ben_or_spec(
                faults=FaultSpec(byzantine_f=4, horizon=500)))

    def test_budget_must_leave_an_honest_server(self):
        with pytest.raises(InvalidParameterError, match="honest"):
            run_majority(ben_or_spec(
                faults=FaultSpec(byzantine_f=100)))

    def test_recorder_rejected(self):
        engine = RoundsEngine(BenOrConsensus())
        with pytest.raises(InvalidParameterError, match="recorder"):
            engine.run({"A": 60, "B": 40}, rng=1, recorder=object())

    def test_unknown_input_states_rejected(self):
        engine = RoundsEngine(BenOrConsensus())
        with pytest.raises(InvalidParameterError, match="binary"):
            engine.run({"A": 3, "X": 2}, rng=1)


class TestSerialization:
    SPECS = {
        "ben-or": ben_or_spec(faults=FaultSpec(byzantine_f=8)),
        "epsilon-agreement": RunSpec(
            EpsilonAgreementConsensus(epsilon_agree=0.1), n=100,
            epsilon=0.2, seed=3,
            faults=FaultSpec(byzantine_f=5, byzantine_mode="adaptive")),
    }

    @pytest.mark.parametrize("name", sorted(SPECS))
    def test_wire_round_trip_preserves_the_key(self, name):
        spec = self.SPECS[name]
        rebuilt = RunSpec.from_json(spec.to_json())
        assert rebuilt.key() == spec.key()

    def test_protocol_dicts_round_trip(self):
        for protocol in (BenOrConsensus(),
                         EpsilonAgreementConsensus(epsilon_agree=0.1)):
            rebuilt = protocol_from_dict(protocol_to_dict(protocol))
            assert type(rebuilt) is type(protocol)
            assert protocol_to_dict(rebuilt) == protocol_to_dict(protocol)

    def test_zero_budget_shares_the_clean_fingerprint(self):
        clean = ben_or_spec()
        nulled = ben_or_spec(faults=FaultSpec(byzantine_f=0))
        assert fingerprint(spec_key(nulled)) \
            == fingerprint(spec_key(clean))

    def test_active_budget_extends_the_key(self):
        clean = ben_or_spec()
        faulted = ben_or_spec(faults=FaultSpec(byzantine_f=8))
        assert spec_key(faulted)["faults"] == {"byzantine_f": 8}
        assert fingerprint(spec_key(faulted)) \
            != fingerprint(spec_key(clean))


class TestRunStore:
    def test_round_points_cache_and_replay(self, tmp_path):
        orch = Orchestrator(RunStore(tmp_path / ".runstore"))
        point = dict(n=100, epsilon=0.2, trials=3, seed=7,
                     max_steps=500, faults=FaultSpec(byzantine_f=8))
        first = orch.robustness_point(BenOrConsensus(), **point)
        assert orch.counters["computed"] == 1
        second = orch.robustness_point(BenOrConsensus(), **point)
        assert orch.counters["cached"] == 1
        assert second == first
        assert first["settled_fraction"] == 1.0
