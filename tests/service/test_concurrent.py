"""The coalescing acceptance test: N duplicate POSTs, one simulation."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from .conftest import small_spec


def test_concurrent_identical_posts_run_one_simulation(service, client):
    """64 simultaneous POST /runs of one uncached spec:

    * every request gets the same job id and (after waiting) the same
      result row;
    * exactly one simulation executes — asserted via the ``engine.runs``
      telemetry counter, which counts engine invocations, and via the
      job's coalesced-submission count.
    """
    spec = small_spec(seed=999)
    requests = 64

    def submit(_):
        return client.post_json("/runs?wait=120", spec).json()

    with ThreadPoolExecutor(max_workers=requests) as pool:
        views = list(pool.map(submit, range(requests)))

    ids = {view["id"] for view in views}
    assert len(ids) == 1, f"expected one job id, got {ids}"
    job_id = ids.pop()

    done = client.get(f"/runs/{job_id}?wait=120").json()
    assert done["status"] == "done"
    rows = {str(view.get("row", done["row"])) for view in views
            if view["status"] == "done"}
    assert rows == {str(done["row"])}

    # One engine invocation per trial chunk of ONE point — the spec
    # has 2 trials in a single chunk, so exactly one engine.runs
    # increment batch happened, not 64.
    engine_runs = service.sink.total("engine.runs")
    assert engine_runs == spec["num_trials"], (
        f"expected {spec['num_trials']} engine trial runs for one "
        f"simulated point, got {engine_runs}")

    # The queue saw all 64 submissions ride one job.
    job = service.queue.get(job_id)
    coalesced = service.sink.total("service.coalesced")
    enqueued = service.sink.total("service.enqueued")
    cache_hits = service.sink.total("service.cache.hit")
    assert enqueued == 1
    assert job.submissions + cache_hits == requests
    assert coalesced == job.submissions - 1
    assert service.store.get(job_id) is not None


def test_concurrent_distinct_specs_all_run(service, client):
    """Different seeds are different fingerprints: no false sharing."""
    seeds = list(range(5))

    def submit(seed):
        return client.post_json("/runs?wait=120",
                                small_spec(seed=seed)).json()

    with ThreadPoolExecutor(max_workers=len(seeds)) as pool:
        views = list(pool.map(submit, seeds))

    assert len({view["id"] for view in views}) == len(seeds)
    assert all(view["status"] == "done" for view in views)
    assert service.sink.total("service.enqueued") == len(seeds)
