"""Durable queue + graceful shutdown: no accepted job is ever lost."""

from __future__ import annotations

import time

from repro.runstore.fingerprint import fingerprint
from repro.runstore.orchestrator import Orchestrator
from repro.runstore.store import RunStore
from repro.service import ServiceConfig, SimulationService
from repro.sim.run import RunSpec

from .conftest import small_spec


def wait_for(predicate, timeout=60.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def test_pending_submission_survives_dead_server(tmp_path):
    """Accepted-but-unstarted work resumes on the next serve."""
    config = ServiceConfig(output_dir=str(tmp_path), num_workers=1)
    # Server "A" accepts a job but dies before its workers ever start.
    dead = SimulationService(config=config)
    view = dead.submit(small_spec(seed=31))
    assert view["status"] == "queued"
    fp = view["id"]
    assert [r["point"] for r in dead.store.pending_submissions()] == [fp]

    # Server "B" over the same store picks it up and finishes it.
    reborn = SimulationService(config=config)
    resumed = reborn.start()
    try:
        assert resumed == 1
        assert wait_for(lambda: fp in reborn.store)
        assert reborn.store.pending_submissions() == []
        assert reborn.get(fp, wait=60)["status"] == "done"
    finally:
        reborn.stop(graceful=False)


def test_resume_skips_already_committed_points(tmp_path):
    """A submit record whose point committed needs no new job."""
    config = ServiceConfig(output_dir=str(tmp_path), num_workers=1)
    first = SimulationService(config=config)
    first.start()
    try:
        view = first.submit(small_spec(seed=32))
        fp = view["id"]
        assert wait_for(lambda: first.store.pending_submissions() == [])
    finally:
        first.stop(graceful=False)

    # Strip the completion record: simulate a crash after the store
    # commit but before the queue append.
    queue_path = first.store.service_queue().path
    lines = [line for line in queue_path.read_text().splitlines()
             if '"done"' not in line]
    queue_path.write_text("\n".join(lines) + "\n")
    assert [r["point"] for r in first.store.pending_submissions()] \
        == [fp]

    reborn = SimulationService(config=config)
    assert reborn.start() == 0  # recognized as already committed
    try:
        assert reborn.store.pending_submissions() == []
    finally:
        reborn.stop(graceful=False)


def test_graceful_stop_then_restart_completes_bit_identically(tmp_path):
    """Stop mid-point; the restarted service finishes the job and the
    row matches an uninterrupted run exactly (chunk-checkpoint replay).
    """
    # 3 chunks of 128 trials: enough boundaries for the stop to land on.
    spec_payload = small_spec(seed=33, num_trials=384)
    config = ServiceConfig(output_dir=str(tmp_path / "served"),
                           num_workers=1)

    service = SimulationService(config=config)
    service.start()
    fp = None
    try:
        view = service.submit(spec_payload)
        fp = view["id"]
        # Let the worker pick the job up, then stop at once — the
        # worker checkpoints at its next chunk boundary.
        wait_for(lambda: service.queue.get(fp).status != "queued",
                 timeout=30)
    finally:
        service.stop(graceful=True)

    job = service.queue.get(fp)
    assert job.status in ("queued", "done")  # interrupted or finished
    if job.status == "queued":
        assert job.interruptions >= 1
        assert [r["point"] for r in service.store.pending_submissions()] \
            == [fp]

    reborn = SimulationService(config=config)
    reborn.start()
    try:
        assert wait_for(lambda: fp in reborn.store)
        row = reborn.get(fp, wait=60)["row"]
    finally:
        reborn.stop(graceful=False)

    # Reference: the same spec through a fresh orchestrator with no
    # interruptions, in a separate store.
    reference_store = RunStore(tmp_path / "reference" / ".runstore")
    orchestrator = Orchestrator(reference_store, sweep="reference")
    reference_row = orchestrator.spec_point(
        RunSpec.from_json(spec_payload))
    orchestrator.finish()
    assert row == reference_row
    assert fingerprint(RunSpec.from_json(spec_payload).key()) == fp
