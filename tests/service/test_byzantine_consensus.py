"""Byzantine fault specs and round-based consensus over the wire.

The HTTP service must address the new subsystem exactly like the
population protocols: byzantine ``FaultSpec`` fields round-trip
through the ``POST /runs`` body, invalid corruption budgets map onto
HTTP 422, and the consensus protocols are served by registry name.
"""

from __future__ import annotations

from .conftest import small_spec


def byzantine_spec(**overrides) -> dict:
    spec = small_spec(faults={"byzantine_f": 3, "horizon": 400})
    spec.update(overrides)
    return spec


def ben_or_spec(**overrides) -> dict:
    spec = {
        "schema": 1,
        "protocol": {"name": "ben-or"},
        "n": 100,
        "epsilon": 0.2,
        "num_trials": 2,
        "seed": 7,
        "max_steps": 500,
        "faults": {"byzantine_f": 8},
    }
    spec.update(overrides)
    return spec


class TestByzantineFaultsOverHttp:
    def test_byzantine_run_completes(self, client):
        response = client.post_json("/runs?wait=60", byzantine_spec())
        assert response.status == 200
        view = response.json()
        assert view["status"] == "done"
        assert view["row"]["n"] == 120

    def test_byzantine_fields_round_trip_to_the_cache(self, client):
        fresh = client.post_json("/runs?wait=60",
                                 byzantine_spec()).json()
        cached = client.post_json("/runs", byzantine_spec()).json()
        assert cached["cached"] is True
        assert cached["row"] == fresh["row"]

    def test_zero_budget_shares_the_clean_cache_entry(self, client):
        clean = client.post_json("/runs?wait=60", small_spec()).json()
        nulled = client.post_json(
            "/runs", small_spec(faults={"byzantine_f": 0})).json()
        assert nulled["cached"] is True
        assert nulled["id"] == clean["id"]

    def test_negative_budget_is_422(self, client):
        response = client.post_json(
            "/runs", small_spec(faults={"byzantine_f": -1}))
        assert response.status == 422
        assert "byzantine_f" in response.json()["error"]

    def test_budget_at_population_size_is_422(self, client):
        response = client.post_json(
            "/runs", small_spec(faults={"byzantine_f": 120}))
        assert response.status == 422
        assert "honest" in response.json()["error"]

    def test_unknown_mode_is_422(self, client):
        response = client.post_json(
            "/runs", small_spec(faults={"byzantine_f": 2,
                                        "byzantine_mode": "sneaky"}))
        assert response.status == 422
        assert "byzantine_mode" in response.json()["error"]


class TestConsensusOverHttp:
    def test_ben_or_reaches_agreement(self, client):
        response = client.post_json("/runs?wait=60", ben_or_spec())
        assert response.status == 200
        view = response.json()
        assert view["status"] == "done"
        assert view["row"]["settled_fraction"] == 1.0

    def test_epsilon_agreement_with_params(self, client):
        spec = ben_or_spec(
            protocol={"name": "epsilon-agreement",
                      "params": {"epsilon_agree": 0.1}},
            faults={"byzantine_f": 5, "byzantine_mode": "adaptive"})
        response = client.post_json("/runs?wait=60", spec)
        assert response.status == 200
        assert response.json()["row"]["settled_fraction"] == 1.0

    def test_consensus_runs_are_cached(self, client):
        fresh = client.post_json("/runs?wait=60", ben_or_spec()).json()
        cached = client.post_json("/runs", ben_or_spec()).json()
        assert cached["cached"] is True
        assert cached["row"] == fresh["row"]

    def test_unknown_protocol_name_is_422(self, client):
        response = client.post_json(
            "/runs", ben_or_spec(protocol={"name": "ben-or-deluxe"}))
        assert response.status == 422
        assert "unknown protocol" in response.json()["error"]

    def test_population_faults_on_consensus_fail_the_job(self, client):
        # Engine-capability errors surface when the job runs (the spec
        # itself is well-formed), so the run reports "failed" with the
        # engine's message rather than rejecting the submit.
        response = client.post_json(
            "/runs?wait=60", ben_or_spec(faults={"flip_prob": 0.01}))
        view = response.json()
        assert view["status"] == "failed"
        assert "byzantine servers only" in view["error"]
