"""Fixtures for the simulation-service tests.

The suite drives the stdlib ASGI app in-process through a minimal
test client (no sockets, no threads beyond the service's own workers),
plus one socket-level smoke module for the HTTP bridge.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import ServiceConfig, SimulationService, make_app


class Response:
    """What one in-process request produced."""

    def __init__(self, status: int, headers: list, body: bytes):
        self.status = status
        self.headers = {name.decode("latin-1").lower():
                        value.decode("latin-1")
                        for name, value in headers}
        self.body = body

    def json(self):
        return json.loads(self.body)

    def lines(self):
        """Decoded non-empty lines (for NDJSON trace bodies)."""
        return [line for line in self.body.decode().splitlines()
                if line.strip()]


class AsgiClient:
    """Drive an ASGI app synchronously, one request per call."""

    def __init__(self, app):
        self.app = app

    def request(self, method: str, path: str, *, body: bytes = b"",
                headers=()) -> Response:
        query = b""
        if "?" in path:
            path, _, raw_query = path.partition("?")
            query = raw_query.encode("latin-1")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method,
            "path": path,
            "query_string": query,
            "headers": [(name.encode("latin-1"), value.encode("latin-1"))
                        for name, value in headers],
            "client": ("testclient", 1),
            "server": ("testserver", 80),
            "scheme": "http",
        }
        sent = {"body": False}
        messages = []

        async def receive():
            if sent["body"]:
                await asyncio.Event().wait()
            sent["body"] = True
            return {"type": "http.request", "body": body,
                    "more_body": False}

        async def send(message):
            messages.append(message)

        asyncio.run(self.app(scope, receive, send))
        start = next(m for m in messages
                     if m["type"] == "http.response.start")
        payload = b"".join(m.get("body", b"") for m in messages
                           if m["type"] == "http.response.body")
        return Response(start["status"], start.get("headers", []),
                        payload)

    def get(self, path: str, **kwargs) -> Response:
        return self.request("GET", path, **kwargs)

    def post_json(self, path: str, payload, **kwargs) -> Response:
        return self.request("POST", path,
                            body=json.dumps(payload).encode(), **kwargs)


SMALL_SPEC = {
    "schema": 1,
    "protocol": {"kind": "four-state"},
    "n": 120,
    "epsilon": 0.2,
    "num_trials": 2,
    "seed": 7,
}


def small_spec(**overrides) -> dict:
    """A fast four-state point; override fields to vary the key."""
    return {**SMALL_SPEC, **overrides}


@pytest.fixture
def service(tmp_path):
    """A started service over a fresh store; stopped at teardown."""
    config = ServiceConfig(output_dir=str(tmp_path), num_workers=2,
                           queue_size=8)
    svc = SimulationService(config=config)
    svc.start()
    yield svc
    svc.stop(graceful=False)


@pytest.fixture
def client(service):
    return AsgiClient(make_app(service))
