"""JobQueue and RateLimiter unit behaviour (no workers, no HTTP)."""

from __future__ import annotations

import pytest

from repro.service import Job, JobQueue, QueueFullError, RateLimiter
from repro.service.errors import RateLimitedError


def make_job(job_id="f" * 64, **payload):
    return Job(id=job_id, spec=None,
               payload={"protocol": {"kind": "four-state"}, "n": 10,
                        **payload})


class TestJobQueue:
    def test_submit_then_claim(self):
        queue = JobQueue(capacity=4)
        job, created = queue.submit(make_job)
        assert created and job.status == "queued"
        claimed = queue.next_job(timeout=0)
        assert claimed is job and claimed.status == "running"

    def test_duplicate_coalesces(self):
        queue = JobQueue(capacity=4)
        first, created_first = queue.submit(make_job)
        second, created_second = queue.submit(make_job)
        assert created_first and not created_second
        assert second is first and first.submissions == 2
        # Only one queued entry exists for the pair.
        assert queue.depth() == 1

    def test_running_job_still_coalesces(self):
        queue = JobQueue(capacity=4)
        queue.submit(make_job)
        job = queue.next_job(timeout=0)
        again, created = queue.submit(make_job)
        assert again is job and not created
        assert job.status == "running"

    def test_done_job_does_not_coalesce(self):
        queue = JobQueue(capacity=4)
        queue.submit(make_job)
        job = queue.next_job(timeout=0)
        queue.mark_done(job, {"n": 10}, None)
        fresh, created = queue.submit(make_job)
        assert created and fresh is not job

    def test_capacity_bound(self):
        queue = JobQueue(capacity=2, retry_after=3.5)
        queue.submit(lambda: make_job("a" * 64))
        queue.submit(lambda: make_job("b" * 64))
        with pytest.raises(QueueFullError) as excinfo:
            queue.submit(lambda: make_job("c" * 64))
        assert excinfo.value.retry_after == 3.5
        assert excinfo.value.status == 429

    def test_requeue_goes_to_front_and_skips_capacity(self):
        queue = JobQueue(capacity=1)
        queue.submit(lambda: make_job("a" * 64))
        interrupted = queue.next_job(timeout=0)
        queue.submit(lambda: make_job("b" * 64))  # fills capacity
        queue.requeue(interrupted)  # waived: it already held a slot
        assert queue.next_job(timeout=0) is interrupted
        assert interrupted.interruptions == 1

    def test_done_event_set_on_completion(self):
        queue = JobQueue(capacity=2)
        queue.submit(make_job)
        job = queue.next_job(timeout=0)
        assert not job.done_event.is_set()
        queue.mark_failed(job, "boom")
        assert job.done_event.is_set()
        assert job.status == "failed" and job.error == "boom"

    def test_counts_and_forget(self):
        queue = JobQueue(capacity=4)
        queue.submit(lambda: make_job("a" * 64))
        queue.submit(lambda: make_job("b" * 64))
        job = queue.next_job(timeout=0)
        queue.mark_done(job, {}, None)
        counts = queue.counts()
        assert counts["queued"] == 1 and counts["done"] == 1
        queue.forget(job.id)
        assert queue.get(job.id) is None
        # Active jobs cannot be forgotten.
        other = queue.jobs("queued")[0]
        queue.forget(other.id)
        assert queue.get(other.id) is other

    def test_empty_claim_times_out(self):
        queue = JobQueue(capacity=1)
        assert queue.next_job(timeout=0.01) is None


class TestRateLimiter:
    def test_disabled_always_passes(self):
        limiter = RateLimiter(None)
        for _ in range(1000):
            limiter.check("anyone")

    def test_burst_then_reject(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, burst=2, clock=clock)
        limiter.check("alice")
        limiter.check("alice")
        with pytest.raises(RateLimitedError) as excinfo:
            limiter.check("alice")
        assert excinfo.value.retry_after == pytest.approx(1.0)
        # A different client has its own bucket.
        limiter.check("bob")

    def test_refill_over_time(self):
        clock = FakeClock()
        limiter = RateLimiter(2.0, burst=1, clock=clock)
        limiter.check("alice")
        with pytest.raises(RateLimitedError):
            limiter.check("alice")
        clock.now += 0.5  # one token at 2/s
        limiter.check("alice")

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            RateLimiter(0.0)
        with pytest.raises(ValueError):
            RateLimiter(1.0, burst=-1)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now
