"""Socket-level smoke for the stdlib HTTP bridge (`python -m repro
serve` runs this exact stack)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.service import make_app
from repro.service.http import start_in_thread

from .conftest import small_spec


@pytest.fixture
def base_url(service):
    server, base = start_in_thread(make_app(service))
    yield base
    server.shutdown()
    server.server_close()


def post_json(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"content-type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


def test_full_cycle_over_a_real_socket(service, base_url):
    spec = small_spec(seed=77)
    status, view = post_json(base_url + "/runs?wait=120", spec)
    assert status == 200 and view["status"] == "done"

    # Warm-cache resubmit: 200, cached, zero additional engine work.
    engine_before = service.sink.total("engine.runs")
    status, cached = post_json(base_url + "/runs", spec)
    assert status == 200 and cached["cached"] is True
    assert cached["row"] == view["row"]
    assert service.sink.total("engine.runs") == engine_before

    # The trace endpoint streams chunked NDJSON over the same socket.
    with urllib.request.urlopen(
            base_url + f"/runs/{view['id']}/trace",
            timeout=30) as response:
        assert response.headers["content-type"] == \
            "application/x-ndjson"
        lines = [line for line in
                 response.read().decode().splitlines() if line]
    assert json.loads(lines[0])["kind"] == "trace-header"
    assert any('"engine.' in line for line in lines)

    with urllib.request.urlopen(base_url + "/healthz",
                                timeout=30) as response:
        assert json.loads(response.read()) == {"status": "ok"}


def test_http_error_statuses(base_url):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        post_json(base_url + "/runs", {"schema": 1})
    assert excinfo.value.code == 422
    body = json.loads(excinfo.value.read())
    assert body["status"] == 422

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(base_url + "/runs/" + "0" * 64,
                               timeout=30)
    assert excinfo.value.code == 404


def test_serve_subcommand_is_wired():
    from repro.experiments.cli import _SUBCOMMANDS
    from repro.service import cli as serve_cli

    assert _SUBCOMMANDS["serve"] is serve_cli.main
    parser = serve_cli.build_parser()
    args = parser.parse_args(["--port", "9999", "--workers", "3",
                              "--rate-limit", "5"])
    assert (args.port, args.workers, args.rate_limit) == (9999, 3, 5.0)
