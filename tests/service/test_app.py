"""End-to-end ASGI routes: submit, status, list, trace, errors."""

from __future__ import annotations

import pytest

from repro.runstore.fingerprint import fingerprint
from repro.sim.run import RunSpec
from repro.telemetry import validate_trace_file

from .conftest import small_spec


def engine_total(service) -> float:
    """Total engine.* counter mass the service has observed."""
    return sum(r["value"] for r in service.sink.records
               if r["kind"] == "counter"
               and r["name"].startswith("engine."))


class TestSubmit:
    def test_submit_and_wait_returns_result(self, client):
        response = client.post_json("/runs?wait=60", small_spec())
        assert response.status == 200
        view = response.json()
        assert view["status"] == "done" and view["cached"] is False
        assert view["row"]["n"] == 120
        expected = fingerprint(RunSpec.from_json(small_spec()).key())
        assert view["id"] == expected

    def test_submit_without_wait_is_accepted(self, client):
        response = client.post_json("/runs", small_spec(seed=123))
        assert response.status == 202
        view = response.json()
        assert view["status"] in ("queued", "running")
        assert view["links"]["self"] == f"/runs/{view['id']}"
        done = client.get(f"/runs/{view['id']}?wait=60").json()
        assert done["status"] == "done"

    def test_cached_resubmit_runs_no_engine(self, service, client):
        client.post_json("/runs?wait=60", small_spec())
        before = engine_total(service)
        response = client.post_json("/runs", small_spec())
        view = response.json()
        assert response.status == 200
        assert view["status"] == "done" and view["cached"] is True
        # The acceptance criterion: a cached POST /runs does zero
        # engine work — not a single engine.* telemetry record.
        assert engine_total(service) == before
        assert service.sink.total("service.cache.hit") == 1

    def test_cached_result_matches_fresh(self, client):
        fresh = client.post_json("/runs?wait=60", small_spec()).json()
        cached = client.post_json("/runs", small_spec()).json()
        assert cached["row"] == fresh["row"]

    def test_registry_name_protocol_is_addressable(self, client):
        # The registry wire form shares cache entries with the
        # kind-based form of the same protocol.
        by_kind = small_spec()
        by_name = small_spec(
            protocol={"name": by_kind["protocol"]["kind"]})
        fresh = client.post_json("/runs?wait=60", by_kind).json()
        cached = client.post_json("/runs", by_name).json()
        assert cached["cached"] is True
        assert cached["row"] == fresh["row"]

    def test_unknown_registry_name_is_422(self, client):
        payload = small_spec(protocol={"name": "majority-deluxe"})
        response = client.post_json("/runs", payload)
        assert response.status == 422
        assert "unknown protocol" in response.json()["error"]

    def test_invalid_spec_is_422(self, client):
        response = client.post_json("/runs", {"schema": 1, "n": 3})
        assert response.status == 422
        assert "protocol" in response.json()["error"]

    def test_non_addressable_spec_is_422(self, client):
        payload = {"schema": 1, "protocol": {"kind": "three-state"},
                   "initial": {"A": 5, "B": 3}}
        response = client.post_json("/runs", payload)
        assert response.status == 422
        assert "addressable" in response.json()["error"]

    def test_bad_json_body_is_400(self, client):
        response = client.request("POST", "/runs", body=b"{nope")
        assert response.status == 400

    def test_empty_body_is_400(self, client):
        response = client.request("POST", "/runs")
        assert response.status == 400

    def test_rate_limit_answers_429(self, tmp_path):
        from repro.service import (ServiceConfig, SimulationService,
                                   make_app)
        from .conftest import AsgiClient

        service = SimulationService(config=ServiceConfig(
            output_dir=str(tmp_path), rate_limit=0.001, rate_burst=1))
        client = AsgiClient(make_app(service))
        try:
            first = client.post_json("/runs", small_spec())
            assert first.status in (200, 202)
            second = client.post_json("/runs", small_spec())
            assert second.status == 429
            assert int(second.headers["retry-after"]) >= 1
        finally:
            service.stop(graceful=False)

    def test_queue_full_answers_429(self, tmp_path):
        from repro.service import (ServiceConfig, SimulationService,
                                   make_app)
        from .conftest import AsgiClient

        # No workers started: jobs stay queued, so capacity 1 fills
        # after the first distinct spec.
        service = SimulationService(config=ServiceConfig(
            output_dir=str(tmp_path), queue_size=1))
        client = AsgiClient(make_app(service))
        first = client.post_json("/runs", small_spec(seed=1))
        assert first.status == 202
        second = client.post_json("/runs", small_spec(seed=2))
        assert second.status == 429
        assert "retry-after" in second.headers


class TestStatusAndList:
    def test_unknown_id_is_404(self, client):
        assert client.get("/runs/" + "0" * 64).status == 404

    def test_unknown_route_is_404(self, client):
        assert client.get("/nope").status == 404

    def test_wrong_method_is_405(self, client):
        response = client.request("POST", "/stats")
        assert response.status == 405
        assert "GET" in response.headers["allow"]

    def test_list_reports_jobs_and_store(self, client):
        client.post_json("/runs?wait=60", small_spec())
        listing = client.get("/runs?store=1").json()
        assert listing["counts"]["done"] == 1
        assert len(listing["committed"]) == 1
        assert listing["committed"][0]["cached"] is True

    def test_list_filters_by_status(self, client):
        client.post_json("/runs?wait=60", small_spec())
        assert client.get("/runs?status=failed").json()["jobs"] == []
        done = client.get("/runs?status=done").json()["jobs"]
        assert len(done) == 1

    def test_get_from_store_after_restart(self, tmp_path, client,
                                          service):
        """A fresh service over the same store serves old results."""
        from repro.service import (ServiceConfig, SimulationService,
                                   make_app)
        from .conftest import AsgiClient

        view = client.post_json("/runs?wait=60", small_spec()).json()
        reborn = SimulationService(config=ServiceConfig(
            output_dir=str(tmp_path)))
        fresh_client = AsgiClient(make_app(reborn))
        cached = fresh_client.get(f"/runs/{view['id']}")
        assert cached.status == 200
        assert cached.json()["row"] == view["row"]
        assert cached.json()["cached"] is True

    def test_stats_and_healthz(self, client):
        assert client.get("/healthz").json() == {"status": "ok"}
        client.post_json("/runs?wait=60", small_spec())
        stats = client.get("/stats").json()
        assert stats["queue"]["done"] == 1
        assert stats["counters"]["service.enqueued"] == 1
        assert stats["store"]["committed_points"] == 1


class TestTrace:
    def test_trace_streams_valid_jsonl(self, service, client,
                                       tmp_path):
        view = client.post_json("/runs?wait=60", small_spec()).json()
        response = client.get(f"/runs/{view['id']}/trace")
        assert response.status == 200
        assert response.headers["content-type"] == \
            "application/x-ndjson"
        lines = response.lines()
        assert lines, "trace stream was empty"
        # The streamed bytes are a valid trace file.
        streamed = tmp_path / "streamed.jsonl"
        streamed.write_text("\n".join(lines) + "\n")
        counts = validate_trace_file(streamed)
        assert counts["counter"] >= 1

    def test_trace_contains_engine_records(self, client):
        view = client.post_json("/runs?wait=60", small_spec()).json()
        lines = client.get(f"/runs/{view['id']}/trace").lines()
        assert any('"engine.' in line for line in lines)

    def test_trace_for_unknown_id_is_404(self, client):
        assert client.get("/runs/" + "0" * 64 + "/trace").status == 404

    def test_no_trace_for_cache_only_result(self, service, client):
        """A result whose trace is gone answers 404, not a hang."""
        view = client.post_json("/runs?wait=60", small_spec()).json()
        service.store.service_trace_path(view["id"]).unlink()
        cached = client.post_json("/runs", small_spec())
        assert cached.json()["cached"] is True
        assert client.get(f"/runs/{view['id']}/trace").status == 404
