"""Optional FastAPI adapter: gated import, identical semantics.

The whole module is skipped when FastAPI is not installed (the core
service is stdlib-only; the adapter is a deployment convenience).
The gating behaviour itself is tested unconditionally.
"""

from __future__ import annotations

import pytest

from repro.service import ServiceConfig, SimulationService
from repro.service.fastapi_adapter import (
    fastapi_available,
    make_fastapi_app,
)

from .conftest import small_spec


def test_missing_fastapi_raises_clear_error(tmp_path, monkeypatch):
    from repro.errors import ReproError
    from repro.service import fastapi_adapter

    monkeypatch.setattr(fastapi_adapter, "fastapi", None)
    service = SimulationService(config=ServiceConfig(
        output_dir=str(tmp_path)))
    with pytest.raises(ReproError, match="fastapi"):
        fastapi_adapter.make_fastapi_app(service)


pytestmark_needs_fastapi = pytest.mark.skipif(
    not fastapi_available(), reason="fastapi is not installed")


@pytestmark_needs_fastapi
def test_fastapi_app_serves_runs(tmp_path):
    from fastapi.testclient import TestClient

    service = SimulationService(config=ServiceConfig(
        output_dir=str(tmp_path), num_workers=1))
    app = make_fastapi_app(service)
    with TestClient(app) as client:
        response = client.post("/runs?wait=120", json=small_spec())
        assert response.status_code == 200
        view = response.json()
        assert view["status"] == "done"

        cached = client.post("/runs", json=small_spec())
        assert cached.status_code == 200
        assert cached.json()["cached"] is True

        assert client.get("/healthz").json() == {"status": "ok"}
        assert client.post("/runs", json={"schema": 1}).status_code \
            == 422
