"""RunSpec wire-form round trips (the ``POST /runs`` body contract)."""

from __future__ import annotations

import json

import pytest

from repro import AVCProtocol, FourStateProtocol, ThreeStateProtocol
from repro.errors import InvalidParameterError
from repro.faults import FaultSpec
from repro.runstore.fingerprint import fingerprint
from repro.sim.run import RunSpec


class TestRoundTripPreservesKey:
    """to_json -> from_json must address the same cache entry."""

    SPECS = {
        "margin": RunSpec(AVCProtocol(m=5, d=2), n=500, epsilon=0.1,
                          num_trials=8, seed=42),
        "counts": RunSpec(FourStateProtocol(), count_a=70, count_b=50,
                          num_trials=3, seed=1),
        "engine-pinned": RunSpec(ThreeStateProtocol(), n=100,
                                 epsilon=0.2, seed=9,
                                 engine="count", batch_fraction=0.1),
        "faulted": RunSpec(FourStateProtocol(), n=200, epsilon=0.15,
                           seed=3,
                           faults=FaultSpec(flip_prob=0.001,
                                            crash_prob=0.0005)),
        "bounded": RunSpec(AVCProtocol(m=3, d=1), n=300, epsilon=0.1,
                           seed=5, max_steps=10_000,
                           on_timeout="raise"),
    }

    @pytest.mark.parametrize("name", sorted(SPECS))
    def test_key_preserved(self, name):
        spec = self.SPECS[name]
        rebuilt = RunSpec.from_json(spec.to_json())
        assert rebuilt.key() == spec.key()
        assert fingerprint(rebuilt.key()) == fingerprint(spec.key())

    @pytest.mark.parametrize("name", sorted(SPECS))
    def test_wire_form_is_json(self, name):
        payload = self.SPECS[name].to_json()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["schema"] == 1

    def test_from_json_accepts_text(self):
        spec = self.SPECS["margin"]
        rebuilt = RunSpec.from_json(json.dumps(spec.to_json()))
        assert rebuilt.key() == spec.key()

    def test_round_trip_is_stable(self):
        payload = self.SPECS["counts"].to_json()
        again = RunSpec.from_json(payload).to_json()
        assert again == payload

    def test_initial_form_round_trips(self):
        # Initial-form specs serialize (states by string form) even
        # though they are not cache-addressable.
        protocol = ThreeStateProtocol()
        spec = RunSpec(protocol, initial={"A": 5, "B": 3},
                       expected=1, seed=0)
        rebuilt = RunSpec.from_json(spec.to_json())
        assert rebuilt.initial == spec.initial
        assert rebuilt.expected == 1


class TestValidationErrors:
    """Malformed payloads raise InvalidParameterError (HTTP 422)."""

    def test_not_json(self):
        with pytest.raises(InvalidParameterError, match="valid JSON"):
            RunSpec.from_json("{nope")

    def test_missing_protocol(self):
        with pytest.raises(InvalidParameterError, match="protocol"):
            RunSpec.from_json({"schema": 1, "n": 10, "epsilon": 0.1})

    def test_unknown_field(self):
        with pytest.raises(InvalidParameterError, match="unknown"):
            RunSpec.from_json({"schema": 1,
                               "protocol": {"kind": "three-state"},
                               "n": 11, "epsilon": 0.1,
                               "turbo": True})

    def test_wrong_schema(self):
        with pytest.raises(InvalidParameterError, match="schema"):
            RunSpec.from_json({"schema": 99,
                               "protocol": {"kind": "three-state"},
                               "n": 11, "epsilon": 0.1})

    def test_unknown_protocol_kind(self):
        with pytest.raises(InvalidParameterError, match="kind"):
            RunSpec.from_json({"schema": 1,
                               "protocol": {"kind": "exact-majority"},
                               "n": 11, "epsilon": 0.1})

    def test_bad_parameters_surface(self):
        # Constructor-level validation flows through as the same
        # error type, so the HTTP layer maps everything to 422.
        with pytest.raises(InvalidParameterError):
            RunSpec.from_json({"schema": 1,
                               "protocol": {"kind": "four-state"},
                               "n": -5, "epsilon": 0.1})

    def test_runtime_objects_not_serializable(self):
        spec = RunSpec(FourStateProtocol(), n=11, epsilon=0.2,
                       recorder=object())
        with pytest.raises(InvalidParameterError):
            spec.to_json()

    def test_generator_seed_not_serializable(self):
        import numpy as np
        spec = RunSpec(FourStateProtocol(), n=11, epsilon=0.2,
                       seed=np.random.default_rng(0))
        with pytest.raises(InvalidParameterError):
            spec.to_json()
