"""Journal crash-safety: every replayed prefix is consistent."""

import json

from repro.runstore.journal import Journal, chunk_map, committed_points


def test_append_replay_roundtrip(tmp_path):
    journal = Journal(tmp_path / "sweep.jsonl")
    records = [{"event": "begin", "sweep": "s"},
               {"event": "chunk", "point": "ab", "index": 0,
                "results": [{"steps": 1}]},
               {"event": "point", "point": "ab"}]
    for record in records:
        journal.append(record)
    assert journal.replay() == records


def test_replay_missing_file_is_empty(tmp_path):
    assert Journal(tmp_path / "absent.jsonl").replay() == []


def test_torn_tail_line_ignored(tmp_path):
    journal = Journal(tmp_path / "sweep.jsonl")
    journal.append({"event": "chunk", "point": "ab", "index": 0,
                    "results": []})
    # Simulate a crash mid-append: a partial record with no newline.
    with open(journal.path, "a") as handle:
        handle.write('{"event": "chunk", "point": "ab", "ind')
    assert journal.replay() == [{"event": "chunk", "point": "ab",
                                 "index": 0, "results": []}]


def test_corrupt_line_truncates_replay(tmp_path):
    journal = Journal(tmp_path / "sweep.jsonl")
    good = {"event": "point", "point": "ab"}
    journal.append(good)
    with open(journal.path, "a") as handle:
        handle.write("not json at all\n")
    journal.append({"event": "point", "point": "cd"})
    # The record after the corruption is unreachable: consistent prefix.
    assert journal.replay() == [good]


def test_clear_removes_file(tmp_path):
    journal = Journal(tmp_path / "sweep.jsonl")
    journal.append({"event": "begin"})
    assert journal.exists()
    journal.clear()
    assert not journal.exists()
    journal.clear()  # idempotent


def test_chunk_map_drops_committed_points(tmp_path):
    records = [
        {"event": "chunk", "point": "aa", "index": 0, "results": [1]},
        {"event": "chunk", "point": "aa", "index": 1, "results": [2]},
        {"event": "chunk", "point": "bb", "index": 0, "results": [3]},
        {"event": "point", "point": "aa"},
    ]
    assert chunk_map(records) == {"bb": {0: [3]}}
    assert committed_points(records) == {"aa"}


def test_records_are_single_lines(tmp_path):
    journal = Journal(tmp_path / "sweep.jsonl")
    journal.append({"event": "chunk", "results": [{"a": 1}, {"b": 2}]})
    lines = journal.path.read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["event"] == "chunk"
