"""Distributed sweep execution: leases, reclamation, cross-worker resume.

The four acceptance properties of multi-worker sweeps live here:

* two workers racing on one point produce exactly one engine run;
* a stale lease (dead worker) is reclaimed and its point recomputed;
* a point half-computed by a crashed worker A resumes bit-identically
  from A's journaled chunks on worker B;
* per-worker journal files merge on read, each contributing its own
  torn-tail-recovered prefix.
"""

import importlib
import time

import pytest

from repro import AVCProtocol
from repro.experiments.runner import measure_majority_point
from repro.runstore import (
    LeaseLost,
    LeaseManager,
    Orchestrator,
    RunStore,
    WorkerStatus,
    lease_ttl_from_env,
    new_worker_id,
    read_worker_statuses,
)
from repro.runstore.fingerprint import fingerprint, point_key
from repro.runstore.workers_cli import run_worker
from repro.sim.ensemble_engine import EnsembleEngine

# ``repro.sim`` re-exports a *function* named ``run``, which shadows the
# submodule on attribute access — go through importlib for the module.
run_module = importlib.import_module("repro.sim.run")

POINT = dict(n=51, epsilon=5 / 51, trials=10, seed=11,
             engine="ensemble")


def _store(tmp_path):
    return RunStore(tmp_path / ".runstore")


class TestLeaseManager:
    def test_acquire_is_exclusive(self, tmp_path):
        a = LeaseManager(tmp_path, "wa")
        b = LeaseManager(tmp_path, "wb")
        wins = [a.acquire("ff" * 32), b.acquire("ff" * 32)]
        assert wins == [True, False]
        assert a.owned("ff" * 32) and not b.owned("ff" * 32)

    def test_release_only_drops_own_lease(self, tmp_path):
        a = LeaseManager(tmp_path, "wa")
        b = LeaseManager(tmp_path, "wb")
        a.acquire("aa" * 32)
        b.release("aa" * 32)  # not b's to drop
        assert a.owned("aa" * 32)
        a.release("aa" * 32)
        assert a.owner("aa" * 32) is None

    def test_heartbeat_raises_when_lease_reclaimed(self, tmp_path):
        a = LeaseManager(tmp_path, "wa")
        a.acquire("aa" * 32)
        a.heartbeat("aa" * 32)  # still owned: fine
        a.path("aa" * 32).unlink()  # a peer reclaimed it
        with pytest.raises(LeaseLost):
            a.heartbeat("aa" * 32)

    def test_reclaim_requires_staleness(self, tmp_path):
        offset = [0.0]
        stale_aware = LeaseManager(
            tmp_path, "wb", ttl=10.0,
            clock=lambda: time.time() + offset[0])
        LeaseManager(tmp_path, "dead", ttl=10.0).acquire("aa" * 32)
        assert not stale_aware.reclaim("aa" * 32)  # fresh: refused
        offset[0] = 11.0  # the owner missed every heartbeat
        assert stale_aware.owner("aa" * 32)["stale"]
        assert stale_aware.reclaim("aa" * 32)
        assert stale_aware.reclaimed == 1
        assert stale_aware.owner("aa" * 32) is None
        # No tombstone left behind either.
        assert list(tmp_path.glob("*.reclaim-*")) == []

    def test_worker_ids_are_filesystem_safe(self):
        worker = new_worker_id("svc.worker/7")
        assert "." not in worker and "/" not in worker
        assert worker.startswith("svc-worker-7-")
        assert new_worker_id() != new_worker_id()  # nonce

    def test_ttl_resolution(self, monkeypatch):
        assert lease_ttl_from_env(42.0) == 42.0
        monkeypatch.setenv("REPRO_LEASE_TTL", "120")
        assert lease_ttl_from_env() == 120.0
        assert lease_ttl_from_env(5.0) == 5.0  # explicit beats env
        from repro.errors import ExperimentError
        with pytest.raises(ExperimentError):
            lease_ttl_from_env(0.0)


class TestConcurrentClaim:
    def test_two_workers_one_point_single_engine_run(self, tmp_path):
        """The claim race: the loser waits, then serves from cache."""
        store = _store(tmp_path)
        fp = fingerprint(point_key("thing", {"n": 5}))
        calls = {"n": 0}

        def compute():
            calls["n"] += 1
            return {"value": 42}

        leases_a = LeaseManager(store.leases_dir, "wa")
        assert leases_a.acquire(fp)

        def peer_finishes(_delay):
            # While B sleeps on A's lease, A commits and releases —
            # the interleaving a real second process produces.
            Orchestrator(store).point("thing", {"n": 5}, compute)
            leases_a.release(fp)

        b = Orchestrator(store, worker="wb", wait_poll=0.0,
                         sleep=peer_finishes,
                         leases=LeaseManager(store.leases_dir, "wb"))

        def forbidden():
            raise AssertionError("peer-leased point computed twice")

        assert b.point("thing", {"n": 5}, forbidden) == {"value": 42}
        assert calls["n"] == 1
        assert b.counters["cached"] == 1
        assert b.counters["computed"] == 0


class TestStaleLeaseReclamation:
    def test_dead_workers_point_reclaimed_and_recomputed(self, tmp_path):
        store = _store(tmp_path)
        fp = fingerprint(point_key("thing", {"n": 7}))
        # The dead worker took the lease and then stopped heartbeating.
        LeaseManager(store.leases_dir, "dead", ttl=10.0).acquire(fp)

        offset = [0.0]
        live_leases = LeaseManager(
            store.leases_dir, "live", ttl=10.0,
            clock=lambda: time.time() + offset[0])
        calls = {"n": 0}

        def compute():
            calls["n"] += 1
            return {"value": 7}

        live = Orchestrator(store, leases=live_leases, worker="live",
                            wait_poll=0.0, sleep=lambda _delay: None)
        offset[0] = 11.0  # TTL elapsed with no heartbeat
        assert live.point("thing", {"n": 7}, compute) == {"value": 7}
        assert calls["n"] == 1
        assert live.counters["lease_reclaims"] == 1
        assert live_leases.reclaimed == 1


class TestCrossWorkerResume:
    def _crash_worker_a_mid_point(self, store, protocol, monkeypatch):
        """Worker A journals chunk 0 of 3, then dies."""
        intact = EnsembleEngine.run_ensemble
        calls = {"n": 0}

        def crash_on_second(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("worker A died mid-point")
            return intact(self, *args, **kwargs)

        monkeypatch.setattr(EnsembleEngine, "run_ensemble",
                            crash_on_second)
        a = Orchestrator(store, sweep="fig", worker="wa")
        with pytest.raises(RuntimeError, match="died mid-point"):
            a.majority_point(protocol, **POINT)
        monkeypatch.setattr(EnsembleEngine, "run_ensemble", intact)

    def test_peer_resumes_crashed_workers_chunks_bit_identical(
            self, tmp_path, monkeypatch):
        # Shrink chunks so a 10-trial point spans [4, 4, 2].
        monkeypatch.setattr(run_module, "ENSEMBLE_CHUNK_TRIALS", 4)
        protocol = AVCProtocol.with_num_states(34)
        reference = measure_majority_point(protocol, **POINT)
        del reference["wall_seconds"]

        store = _store(tmp_path)
        self._crash_worker_a_mid_point(store, protocol, monkeypatch)

        # Worker B (a different process in real life) merges A's
        # per-worker journal at init and resumes from A's boundary.
        b = Orchestrator(store, sweep="fig", resume=True, worker="wb",
                         leases=LeaseManager(store.leases_dir, "wb"))
        row = b.majority_point(protocol, **POINT)
        assert b.counters["resumed_chunks"] == 1
        assert row == reference

    def test_claim_time_refresh_sees_chunks_journaled_after_init(
            self, tmp_path, monkeypatch):
        """B predates A's checkpoints: resume rests on the re-merge
        that happens when B claims the point, not on init replay."""
        monkeypatch.setattr(run_module, "ENSEMBLE_CHUNK_TRIALS", 4)
        protocol = AVCProtocol.with_num_states(34)
        reference = measure_majority_point(protocol, **POINT)
        del reference["wall_seconds"]

        store = _store(tmp_path)
        b = Orchestrator(store, sweep="fig", resume=True, worker="wb",
                         leases=LeaseManager(store.leases_dir, "wb"))
        self._crash_worker_a_mid_point(store, protocol, monkeypatch)

        row = b.majority_point(protocol, **POINT)
        assert b.counters["resumed_chunks"] == 1
        assert row == reference


class TestMergedJournals:
    def test_each_file_contributes_its_torn_tail_recovered_prefix(
            self, tmp_path):
        store = _store(tmp_path)
        wa = store.journal("s", worker="wa")
        wb = store.journal("s", worker="wb")
        wa.append({"event": "begin", "sweep": "s", "worker": "wa"})
        wa.append({"event": "chunk", "point": "aa", "index": 0,
                   "results": [1, 2]})
        wb.append({"event": "begin", "sweep": "s", "worker": "wb"})
        wb.append({"event": "chunk", "point": "bb", "index": 0,
                   "results": [3]})
        # Worker B died mid-append: torn final line, no newline.
        with open(wb.path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "chunk", "point": "bb", "ind')

        records = store.sweep_records("s")
        assert len(records) == 4  # torn tail dropped, prefixes intact
        events = [(r.get("event"), r.get("point")) for r in records]
        assert ("chunk", "aa") in events
        assert ("chunk", "bb") in events

        # The introspection views see one merged stream too.
        rows = store.in_flight()
        assert {row["point"] for row in rows} == {"aa", "bb"}
        assert all(row["sweep"] == "s" for row in rows)


class TestManifestWorkers:
    def test_generic_worker_drains_published_manifest(self, tmp_path):
        """A helper with no knowledge of the experiment computes the
        launcher's grid from the manifest; the launcher's placeholder
        rows back-fill from the store, byte-identical to local runs."""
        store = _store(tmp_path)
        protocol = AVCProtocol.with_num_states(34)
        grid = [dict(n=n, epsilon=5 / n, trials=4, seed=3,
                     engine="ensemble") for n in (11, 21)]
        references = []
        for params in grid:
            reference = measure_majority_point(protocol, **params)
            del reference["wall_seconds"]
            references.append(reference)

        lead = Orchestrator(
            store, sweep="fig", defer=True, worker="lead",
            leases=LeaseManager(store.leases_dir, "lead"))
        rows = [lead.majority_point(protocol, **params)
                for params in grid]
        assert all(value is None
                   for row in rows for value in row.values())
        entries = lead.manifest()
        assert len(entries) == 2
        store.write_manifest("fig", entries)

        counters = run_worker(store, "fig", worker_id="helper")
        assert counters["computed"] == 2

        lead.drain()  # every point already committed by the helper
        lead.finish()
        assert lead.counters["cached"] == 2
        assert lead.counters["computed"] == 0
        assert rows == references

    def test_missing_manifest_is_a_no_op(self, tmp_path):
        counters = run_worker(_store(tmp_path), "gone",
                              worker_id="helper")
        assert counters["computed"] == 0


class TestWorkerStatus:
    def test_write_read_roundtrip(self, tmp_path):
        status = WorkerStatus(tmp_path, "wa", sweep="fig")
        status.write("running", {"computed": 3}, pending_points=2)
        statuses = read_worker_statuses(tmp_path)
        assert len(statuses) == 1
        assert statuses[0]["worker"] == "wa"
        assert statuses[0]["sweep"] == "fig"
        assert statuses[0]["counters"] == {"computed": 3}
        assert statuses[0]["pending_points"] == 2
        assert statuses[0]["started_at"] == status.started_at

    def test_unreadable_status_files_skipped(self, tmp_path):
        (tmp_path / "torn.json").write_text("{ torn")
        WorkerStatus(tmp_path, "ok", sweep="fig").write("done")
        assert [s["worker"] for s in read_worker_statuses(tmp_path)] \
            == ["ok"]


class TestStoreMemo:
    def test_memoized_reads_are_isolated_copies(self, tmp_path):
        store = _store(tmp_path)
        fp = "ab" * 32
        store.put(fp, key={"kind": "t"}, row={"v": 1})
        first = store.get(fp)
        first["row"]["v"] = 999  # must not poison the memo
        assert store.get(fp)["row"] == {"v": 1}

    def test_peer_commit_invalidates_memo_via_stat_token(self, tmp_path):
        # Two store handles over one directory, like two processes.
        mine = _store(tmp_path)
        peer = _store(tmp_path)
        fp = "cd" * 32
        mine.put(fp, key={"kind": "t"}, row={"v": 1})
        assert mine.get(fp)["row"]["v"] == 1  # memoized
        peer.put(fp, key={"kind": "t"}, row={"v": 22222})
        assert mine.get(fp)["row"]["v"] == 22222

    def test_misses_are_never_memoized(self, tmp_path):
        store = _store(tmp_path)
        fp = "ef" * 32
        assert store.get(fp) is None
        store.put(fp, key={"kind": "t"}, row={"v": 1})
        assert store.get(fp)["row"] == {"v": 1}
