"""Store service-state introspection, gc --dry-run, and the
orchestrator's cooperative-stop hook."""

from __future__ import annotations

import pytest

from repro import FourStateProtocol
from repro.errors import JobInterrupted
from repro.runstore.fingerprint import fingerprint, spec_key
from repro.runstore.orchestrator import Orchestrator
from repro.runstore.store import RunStore
from repro.sim.run import RunSpec


def small_spec(num_trials=2, seed=5):
    return RunSpec(FourStateProtocol(), n=120, epsilon=0.2,
                   num_trials=num_trials, seed=seed)


class TestServiceQueueIntrospection:
    def test_pending_submissions_replay(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        queue = store.service_queue()
        queue.append({"event": "submit", "point": "aa", "spec": {}})
        queue.append({"event": "submit", "point": "bb", "spec": {}})
        queue.append({"event": "submit", "point": "cc", "spec": {}})
        queue.append({"event": "done", "point": "aa"})
        queue.append({"event": "failed", "point": "cc", "error": "x"})
        pending = store.pending_submissions()
        assert [record["point"] for record in pending] == ["bb"]

    def test_duplicate_submits_collapse(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        queue = store.service_queue()
        queue.append({"event": "submit", "point": "aa", "spec": {}})
        queue.append({"event": "submit", "point": "aa", "spec": {}})
        assert len(store.pending_submissions()) == 1

    def test_empty_store_has_no_pending(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        assert store.pending_submissions() == []
        assert store.in_flight() == []

    def test_in_flight_reports_journaled_chunks(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        spec = small_spec(num_trials=256)  # 2 chunks of 128
        fp = fingerprint(spec_key(spec))

        # Interrupt after the first chunk: stop flag flips once one
        # chunk is journaled.
        seen = []

        def stop_after_first_chunk():
            journal = store.journal("sweep-x")
            chunks = [record for record in journal.replay()
                      if record.get("event") == "chunk"]
            seen.append(len(chunks))
            return len(chunks) >= 1

        orchestrator = Orchestrator(store, sweep="sweep-x",
                                    should_stop=stop_after_first_chunk)
        with pytest.raises(JobInterrupted):
            orchestrator.spec_point(spec)

        rows = store.in_flight()
        assert len(rows) == 1
        assert rows[0]["sweep"] == "sweep-x"
        assert rows[0]["point"] == fp
        assert rows[0]["chunks"] == 1
        assert rows[0]["trials"] == 128

        # Committing the point clears the in-flight row via finish().
        resumed = Orchestrator(store, sweep="sweep-x", resume=True)
        resumed.spec_point(spec)
        resumed.finish()
        assert store.in_flight() == []
        assert fp in store


class TestCooperativeStop:
    def test_stop_before_first_chunk(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        orchestrator = Orchestrator(store, sweep="s",
                                    should_stop=lambda: True)
        with pytest.raises(JobInterrupted):
            orchestrator.spec_point(small_spec())

    def test_interrupted_resume_is_bit_identical(self, tmp_path):
        spec = small_spec(num_trials=384, seed=9)  # 3 chunks

        interrupted_store = RunStore(tmp_path / "a" / ".runstore")

        def stop_after_two_chunks():
            journal = interrupted_store.journal("s")
            return sum(1 for record in journal.replay()
                       if record.get("event") == "chunk") >= 2

        orchestrator = Orchestrator(interrupted_store, sweep="s",
                                    should_stop=stop_after_two_chunks)
        with pytest.raises(JobInterrupted):
            orchestrator.spec_point(spec)
        resumed = Orchestrator(interrupted_store, sweep="s",
                               resume=True)
        row_resumed = resumed.spec_point(spec)

        clean_store = RunStore(tmp_path / "b" / ".runstore")
        row_clean = Orchestrator(clean_store,
                                 sweep="s").spec_point(spec)
        assert row_resumed == row_clean

    def test_no_stop_hook_never_interrupts(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        row = Orchestrator(store, sweep="s").spec_point(small_spec())
        assert row["n"] == 120


class TestRunsCli:
    """`python -m repro runs status|gc --dry-run` surface the state."""

    def _store_with_state(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        spec = small_spec(num_trials=256)

        def stop_after_first_chunk():
            return sum(1 for record in store.journal("s").replay()
                       if record.get("event") == "chunk") >= 1

        orchestrator = Orchestrator(store, sweep="s",
                                    should_stop=stop_after_first_chunk)
        with pytest.raises(JobInterrupted):
            orchestrator.spec_point(spec)
        store.service_queue().append(
            {"event": "submit", "point": fingerprint(spec_key(spec)),
             "spec": {}})
        return store

    def test_status_reports_queue_and_in_flight(self, tmp_path,
                                                capsys):
        from repro.runstore.cli import main

        self._store_with_state(tmp_path)
        assert main(["status", "--output-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "service queue: 1 pending submission(s)" in out
        assert "in-flight points" in out
        assert "checkpointed_chunks" in out

    def test_status_on_empty_store(self, tmp_path, capsys):
        from repro.runstore.cli import main

        assert main(["status", "--output-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "service queue: 0 pending submission(s)" in out

    def test_gc_dry_run_deletes_nothing(self, tmp_path, capsys):
        from repro.runstore.cli import main

        store = self._store_with_state(tmp_path)
        journals_before = [name for name, _ in store.journals()]
        assert main(["gc", "--dry-run",
                     "--output-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "would remove" in out
        assert "nothing was deleted" in out
        assert [name for name, _ in store.journals()] \
            == journals_before


class TestGcDryRun:
    def _populated_store(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        Orchestrator(store, sweep="done-sweep").spec_point(small_spec())
        # A finished journal (every point committed) is gc-able.
        assert any(store.journals())
        # Plus a stray temp file from a hypothetical crashed commit.
        store.objects_dir.mkdir(parents=True, exist_ok=True)
        (store.objects_dir / "x.tmp").write_text("junk")
        return store

    def test_dry_run_deletes_nothing(self, tmp_path):
        store = self._populated_store(tmp_path)
        before_objects = sorted(store.objects_dir.glob("*/*.json"))
        before_journals = [name for name, _ in store.journals()]

        report = store.gc(dry_run=True)
        assert sorted(store.objects_dir.glob("*/*.json")) \
            == before_objects
        assert [name for name, _ in store.journals()] \
            == before_journals
        assert (store.objects_dir / "x.tmp").exists()
        assert report["journals"] == 1
        assert report["temp_files"] == 1
        assert len(report["would_remove"]) >= 2

    def test_dry_run_counts_match_real_gc(self, tmp_path):
        dry_store = self._populated_store(tmp_path / "dry")
        wet_store = self._populated_store(tmp_path / "wet")
        dry = dry_store.gc(dry_run=True)
        wet = wet_store.gc()
        assert {key: dry[key] for key in wet} == wet
        assert not any(wet_store.journals())
        assert not (wet_store.objects_dir / "x.tmp").exists()

    def test_dry_run_drop_all_keeps_store(self, tmp_path):
        store = self._populated_store(tmp_path)
        report = store.gc(drop_all=True, dry_run=True)
        assert store.root.is_dir()
        assert report["objects"] == 1
        assert report["would_remove"] == [str(store.root)]
        store.gc(drop_all=True)
        assert not store.root.exists()
