"""Orchestrator: caching, chunk-level resume, retries.

The two acceptance properties of the run store live here:

* a figure3 sweep killed mid-grid and resumed produces a CSV
  byte-identical to an uninterrupted seed-matched run;
* a warm-cache re-invocation never enters a simulation engine.
"""

import importlib

import pytest

from repro import AVCProtocol
from repro.errors import WorkerError
from repro.experiments.config import Scale
from repro.experiments.figure3 import figure3_rows
from repro.experiments.io import write_csv
from repro.experiments.runner import measure_majority_point
from repro.runstore import Orchestrator, RunStore
from repro.sim.ensemble_engine import EnsembleEngine
import repro.runstore.orchestrator as orchestrator_module

# ``repro.sim`` re-exports a *function* named ``run``, which shadows the
# submodule on attribute access — go through importlib for the module.
run_module = importlib.import_module("repro.sim.run")

TINY = Scale(
    name="tiny",
    figure3_populations=(11, 101),
    figure3_trials=4,
)

POINT = dict(n=51, epsilon=5 / 51, trials=10, seed=11,
             engine="ensemble")


def _store(tmp_path):
    return RunStore(tmp_path / ".runstore")


class CrashAfter(Orchestrator):
    """Simulated mid-grid crash: die before the k-th point computes."""

    def __init__(self, *args, fail_after, **kwargs):
        super().__init__(*args, **kwargs)
        self._remaining = fail_after

    def majority_point(self, *args, **kwargs):
        if self._remaining == 0:
            raise RuntimeError("simulated crash mid-sweep")
        self._remaining -= 1
        return super().majority_point(*args, **kwargs)


class TestSweepResumeParity:
    def test_interrupted_resumed_csv_byte_identical(self, tmp_path):
        # Uninterrupted reference sweep.
        clean = Orchestrator(_store(tmp_path / "a"), sweep="figure3_tiny")
        reference = tmp_path / "a" / "figure3.csv"
        write_csv(reference, figure3_rows(TINY, seed=5, orchestrator=clean))
        clean.finish()

        # Same sweep, killed after 3 of 6 points.
        crash_store = _store(tmp_path / "b")
        flaky = CrashAfter(crash_store, sweep="figure3_tiny",
                           fail_after=3)
        with pytest.raises(RuntimeError, match="simulated crash"):
            figure3_rows(TINY, seed=5, orchestrator=flaky)

        # Resume: completed points come from the store, the rest are
        # computed fresh; the CSV must match byte for byte.
        resumed = Orchestrator(crash_store, sweep="figure3_tiny",
                               resume=True)
        rows = figure3_rows(TINY, seed=5, orchestrator=resumed)
        assert resumed.counters["cached"] == 3
        assert resumed.counters["computed"] == 3
        target = tmp_path / "b" / "figure3.csv"
        write_csv(target, rows)
        assert target.read_bytes() == reference.read_bytes()

    def test_warm_cache_never_enters_an_engine(self, tmp_path,
                                               monkeypatch):
        store = _store(tmp_path)
        first = Orchestrator(store, sweep="figure3_tiny")
        reference = figure3_rows(TINY, seed=5, orchestrator=first)
        first.finish()

        def forbidden(*args, **kwargs):
            raise AssertionError("simulation engine entered on a "
                                 "warm cache")

        # Every simulation path the orchestrator can take.
        monkeypatch.setattr(orchestrator_module, "make_run_engine",
                            forbidden)
        monkeypatch.setattr(EnsembleEngine, "run_ensemble", forbidden)
        warm = Orchestrator(store, sweep="figure3_tiny")
        rows = figure3_rows(TINY, seed=5, orchestrator=warm)
        assert rows == reference
        assert warm.counters == {"computed": 0, "cached": 6,
                                 "resumed_chunks": 0, "retries": 0,
                                 "trials": 0, "interactions": 0,
                                 "lease_reclaims": 0, "lease_lost": 0}


class TestChunkResume:
    def test_mid_point_crash_resumes_bit_identical(self, tmp_path,
                                                   monkeypatch):
        # Shrink chunks so a 10-trial point spans [4, 4, 2].
        monkeypatch.setattr(run_module, "ENSEMBLE_CHUNK_TRIALS", 4)
        protocol = AVCProtocol.with_num_states(34)
        reference = measure_majority_point(protocol, **POINT)
        del reference["wall_seconds"]

        store = _store(tmp_path)
        calls = {"n": 0}
        intact = EnsembleEngine.run_ensemble

        def crash_on_second(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("simulated crash mid-point")
            return intact(self, *args, **kwargs)

        monkeypatch.setattr(EnsembleEngine, "run_ensemble",
                            crash_on_second)
        crashed = Orchestrator(store, sweep="fig")
        with pytest.raises(RuntimeError, match="mid-point"):
            crashed.majority_point(protocol, **POINT)
        monkeypatch.setattr(EnsembleEngine, "run_ensemble", intact)

        # One chunk survived in the journal; resume replays it and
        # recomputes only the remaining two.
        resumed = Orchestrator(store, sweep="fig", resume=True)
        row = resumed.majority_point(protocol, **POINT)
        assert resumed.counters["resumed_chunks"] == 1
        assert row == reference

    def test_restart_without_resume_discards_checkpoints(self, tmp_path):
        store = _store(tmp_path)
        store.journal("fig").append(
            {"event": "chunk", "point": "aa", "index": 0,
             "results": []})
        fresh = Orchestrator(store, sweep="fig", resume=False)
        assert fresh._pending == {}
        records = store.journal("fig").replay()
        assert [r["event"] for r in records] == ["begin"]


class TestGenericPoints:
    def test_point_cached_across_orchestrators(self, tmp_path):
        store = _store(tmp_path)
        calls = {"n": 0}

        def compute():
            calls["n"] += 1
            return [{"value": 1}, {"value": 2}]

        first = Orchestrator(store).point("thing", {"n": 5}, compute)
        second = Orchestrator(store).point("thing", {"n": 5}, compute)
        assert calls["n"] == 1
        assert first == second

    def test_no_cache_forces_recompute(self, tmp_path):
        store = _store(tmp_path)
        calls = {"n": 0}

        def compute():
            calls["n"] += 1
            return {"value": calls["n"]}

        Orchestrator(store).point("thing", {}, compute)
        cold = Orchestrator(store, use_cache=False)
        assert cold.point("thing", {}, compute) == {"value": 2}
        assert cold.counters["cached"] == 0

    def test_finish_clears_journal(self, tmp_path):
        store = _store(tmp_path)
        orch = Orchestrator(store, sweep="fig")
        orch.point("thing", {}, lambda: {"value": 1})
        assert store.journal("fig").exists()
        orch.finish()
        assert not store.journal("fig").exists()


class TestRetries:
    def test_worker_failures_retried_with_capped_backoff(self):
        delays = []
        attempts = {"n": 0}

        def compute():
            attempts["n"] += 1
            if attempts["n"] <= 3:
                raise WorkerError("pool died")
            return {"ok": True}

        orch = Orchestrator(max_attempts=4, backoff_base=10.0,
                            backoff_cap=25.0, sleep=delays.append)
        assert orch.point("thing", {}, compute) == {"ok": True}
        assert delays == [10.0, 20.0, 25.0]  # doubled, then capped
        assert orch.counters["retries"] == 3

    def test_exhausted_retries_raise(self):
        def compute():
            raise WorkerError("pool died")

        orch = Orchestrator(max_attempts=2, sleep=lambda _: None)
        with pytest.raises(WorkerError):
            orch.point("thing", {}, compute)
        assert orch.counters["retries"] == 1

    def test_non_transient_errors_not_retried(self):
        attempts = {"n": 0}

        def compute():
            attempts["n"] += 1
            raise ValueError("a real bug")

        orch = Orchestrator(max_attempts=3, sleep=lambda _: None)
        with pytest.raises(ValueError):
            orch.point("thing", {}, compute)
        assert attempts["n"] == 1

    def test_chunk_level_worker_failure_retried(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setattr(run_module, "ENSEMBLE_CHUNK_TRIALS", 4)
        protocol = AVCProtocol.with_num_states(34)
        reference = measure_majority_point(protocol, **POINT)
        del reference["wall_seconds"]

        intact = EnsembleEngine.run_ensemble
        failures = {"n": 0}

        def flaky(self, *args, **kwargs):
            if failures["n"] == 0:
                failures["n"] += 1
                raise WorkerError("pool died")
            return intact(self, *args, **kwargs)

        monkeypatch.setattr(EnsembleEngine, "run_ensemble", flaky)
        orch = Orchestrator(sleep=lambda _: None)
        assert orch.majority_point(protocol, **POINT) == reference
        assert orch.counters["retries"] == 1
