"""Content-addressed store: atomic commits, lookup, gc policy."""

import json

from repro.runstore.fingerprint import RESULT_SCHEMA_VERSION, fingerprint
from repro.runstore.store import RunStore, atomic_write_text


def _key(**overrides):
    key = {"schema": RESULT_SCHEMA_VERSION, "kind": "test", "n": 11}
    key.update(overrides)
    return key


def _commit(store, **overrides):
    key = _key(**overrides)
    fp = fingerprint(key)
    store.put(fp, key=key, row={"n": key["n"], "value": 1.5},
              meta={"wall_seconds": 0.1})
    return fp


class TestObjects:
    def test_put_get_roundtrip(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        fp = _commit(store)
        entry = store.get(fp)
        assert entry["fingerprint"] == fp
        assert entry["row"] == {"n": 11, "value": 1.5}
        assert entry["meta"]["wall_seconds"] == 0.1
        assert entry["schema"] == RESULT_SCHEMA_VERSION
        assert fp in store

    def test_miss_returns_none(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        assert store.get("ab" * 32) is None
        assert "ab" * 32 not in store

    def test_commit_leaves_no_temp_files(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        _commit(store)
        assert list((tmp_path / ".runstore").rglob("*.tmp")) == []

    def test_corrupt_object_reads_as_miss(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        fp = _commit(store)
        store.object_path(fp).write_text("{ truncated")
        assert store.get(fp) is None

    def test_entries_enumerates_all(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        fps = {_commit(store, n=n) for n in (11, 21, 31)}
        assert {entry["fingerprint"] for entry in store.entries()} == fps

    def test_atomic_write_cleans_up_on_failure(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        try:
            atomic_write_text(target, 12345)  # not a str: write() raises
        except TypeError:
            pass
        assert target.read_text() == "old"
        assert list(tmp_path.glob("*.tmp")) == []


class TestGc:
    def test_gc_drops_stale_schema_objects(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        current = _commit(store)
        old_key = _key(schema=RESULT_SCHEMA_VERSION - 1, n=99)
        old_fp = fingerprint(old_key)
        store.put(old_fp, key=old_key, row={})
        removed = store.gc()
        assert removed["objects"] == 1
        assert store.get(current) is not None
        assert store.get(old_fp) is None

    def test_gc_keeps_in_flight_journals(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        pending = store.journal("interrupted")
        pending.append({"event": "chunk", "point": "aa", "index": 0,
                        "results": []})
        finished = store.journal("finished")
        finished.append({"event": "chunk", "point": "bb", "index": 0,
                         "results": []})
        finished.append({"event": "point", "point": "bb"})
        removed = store.gc()
        assert removed["journals"] == 1
        assert pending.exists()
        assert not finished.exists()

    def test_gc_removes_stray_temp_files(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        fp = _commit(store)
        stray = store.object_path(fp).with_name("half-commit.tmp")
        stray.write_text("partial")
        assert store.gc()["temp_files"] == 1
        assert not stray.exists()

    def test_gc_drop_all_wipes_store(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        _commit(store)
        store.journal("sweep").append({"event": "begin"})
        removed = store.gc(drop_all=True)
        assert removed["objects"] == 1
        assert removed["journals"] == 1
        assert not (tmp_path / ".runstore").exists()

    def test_gc_on_empty_store_is_safe(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        assert store.gc() == {"journals": 0, "objects": 0,
                              "temp_files": 0, "worker_files": 0}
        assert store.gc(drop_all=True)["objects"] == 0


def test_for_output_dir_respects_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_OUTPUT_DIR", str(tmp_path / "alt"))
    store = RunStore.for_output_dir()
    assert store.root == tmp_path / "alt" / ".runstore"
    explicit = RunStore.for_output_dir(tmp_path / "given")
    assert explicit.root == tmp_path / "given" / ".runstore"


def test_store_entry_is_valid_json_on_disk(tmp_path):
    store = RunStore(tmp_path / ".runstore")
    fp = _commit(store)
    payload = json.loads(store.object_path(fp).read_text())
    assert payload["key"]["kind"] == "test"
