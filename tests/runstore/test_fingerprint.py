"""Fingerprint stability: the cache contract."""

import numpy as np
import pytest

from repro import AVCProtocol, RunSpec
from repro.runstore.fingerprint import (
    RESULT_SCHEMA_VERSION,
    canonical,
    canonical_json,
    fingerprint,
    majority_point_key,
    point_key,
    spec_key,
)


class TestCanonical:
    def test_dict_insertion_order_irrelevant(self):
        first = {"a": 1, "b": 2.5, "c": "x"}
        second = {"c": "x", "b": 2.5, "a": 1}
        assert canonical_json(first) == canonical_json(second)
        assert fingerprint(first) == fingerprint(second)

    def test_float_spelling_irrelevant(self):
        # 1e-2 and 0.01 are the same float, hence the same point.
        assert fingerprint({"eps": 1e-2}) == fingerprint({"eps": 0.01})
        assert fingerprint({"eps": 1 / 3}) == \
            fingerprint({"eps": 0.3333333333333333})

    def test_distinct_floats_distinct(self):
        assert fingerprint({"eps": 0.3}) != \
            fingerprint({"eps": 0.30000000000000004})

    def test_negative_zero_folded(self):
        assert fingerprint({"x": -0.0}) == fingerprint({"x": 0.0})

    def test_tuple_and_list_agree(self):
        assert fingerprint({"xs": (1, 2, 3)}) == fingerprint({"xs": [1, 2, 3]})

    def test_numpy_scalars_unboxed(self):
        assert fingerprint({"n": np.int64(5)}) == fingerprint({"n": 5})
        assert fingerprint({"x": np.float64(0.5)}) == \
            fingerprint({"x": 0.5})

    def test_nested_normalization(self):
        assert canonical({"outer": {"b": (np.int64(1),), "a": -0.0}}) == \
            {"outer": {"b": [1], "a": 0.0}}

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            fingerprint({"x": float("nan")})

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError):
            canonical({"x": object()})


class TestPointKeys:
    def test_identical_protocol_instances_share_address(self):
        a = majority_point_key(AVCProtocol(m=15, d=1), n=101,
                               epsilon=1 / 101, trials=5, seed=7)
        b = majority_point_key(AVCProtocol(m=15, d=1), n=101,
                               epsilon=1 / 101, trials=5, seed=7)
        assert fingerprint(a) == fingerprint(b)

    @pytest.mark.parametrize("change", [
        {"seed": 8}, {"trials": 6}, {"engine": "count"}, {"n": 103},
        {"epsilon": 2 / 101}, {"max_parallel_time": 10.0},
    ])
    def test_any_input_change_changes_address(self, change):
        base = dict(n=101, epsilon=1 / 101, trials=5, seed=7,
                    engine="auto")
        protocol = AVCProtocol(m=15, d=1)
        baseline = fingerprint(majority_point_key(protocol, **base))
        changed = fingerprint(majority_point_key(protocol,
                                                 **{**base, **change}))
        assert changed != baseline

    def test_protocol_parameters_enter_the_key(self):
        base = dict(n=101, epsilon=1 / 101, trials=5, seed=7)
        assert fingerprint(majority_point_key(AVCProtocol(m=15, d=1),
                                              **base)) != \
            fingerprint(majority_point_key(AVCProtocol(m=15, d=2),
                                           **base))

    def test_schema_version_embedded(self):
        key = majority_point_key(AVCProtocol(m=15, d=1), n=101,
                                 epsilon=1 / 101, trials=5, seed=7)
        assert key["schema"] == RESULT_SCHEMA_VERSION
        assert point_key("phases", {"n": 101})["schema"] == \
            RESULT_SCHEMA_VERSION

    def test_fingerprint_is_hex_sha256(self):
        fp = fingerprint({"anything": 1})
        assert len(fp) == 64
        int(fp, 16)  # raises if not hex


class TestEngineKeyPolicy:
    """The key records the *requested* engine name, never the resolved
    one: every engine ``"auto"`` may pick samples the same chain, so
    the population-size routing between the token and count ensembles
    must not move any cached address."""

    def test_auto_key_is_stable_across_the_routing_threshold(self):
        protocol = AVCProtocol(m=63, d=1)
        small = RunSpec(protocol, n=101, epsilon=5 / 101, num_trials=8,
                        seed=7)
        large = RunSpec(protocol, n=100_001, epsilon=5 / 100_001,
                        num_trials=8, seed=7)
        for key in (spec_key(small), spec_key(large)):
            assert key["engine"] == "auto"

    def test_requested_engine_names_are_distinct_addresses(self):
        base = dict(n=101, epsilon=5 / 101, num_trials=8, seed=7)
        protocol = AVCProtocol(m=15, d=1)
        prints = {
            fingerprint(spec_key(RunSpec(protocol, engine=name, **base)))
            for name in ("auto", "ensemble", "count-ensemble")}
        assert len(prints) == 3  # streams are engine-specific

    def test_engine_instances_are_rejected(self):
        from repro.sim import CountEnsembleEngine

        protocol = AVCProtocol(m=15, d=1)
        spec = RunSpec(protocol, n=101, epsilon=5 / 101, num_trials=8,
                       seed=7, engine=CountEnsembleEngine(protocol))
        with pytest.raises(ValueError, match="registered"):
            spec_key(spec)
