"""Tests for interaction-graph builders."""

import networkx as nx
import pytest

from repro import InvalidParameterError
from repro.graphs import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    random_regular_graph,
    star_graph,
)


class TestDeterministicBuilders:
    def test_complete(self):
        graph = complete_graph(5)
        assert graph.number_of_edges() == 10
        assert nx.is_connected(graph)

    def test_cycle(self):
        graph = cycle_graph(6)
        assert all(d == 2 for _, d in graph.degree())

    def test_path(self):
        graph = path_graph(4)
        assert graph.number_of_edges() == 3

    def test_star(self):
        graph = star_graph(10)
        assert graph.number_of_nodes() == 10
        degrees = sorted(d for _, d in graph.degree())
        assert degrees == [1] * 9 + [9]

    def test_grid(self):
        graph = grid_graph(3, 4)
        assert graph.number_of_nodes() == 12
        assert set(graph.nodes()) == set(range(12))

    def test_torus_is_regular(self):
        graph = grid_graph(4, 4, periodic=True)
        assert all(d == 4 for _, d in graph.degree())

    @pytest.mark.parametrize("builder,args", [
        (complete_graph, (1,)),
        (cycle_graph, (2,)),
        (path_graph, (1,)),
        (grid_graph, (1, 1)),
    ])
    def test_size_validation(self, builder, args):
        with pytest.raises(InvalidParameterError):
            builder(*args)


class TestRandomBuilders:
    def test_regular_graph_properties(self):
        graph = random_regular_graph(20, 3, rng=0)
        assert all(d == 3 for _, d in graph.degree())
        assert nx.is_connected(graph)

    def test_regular_graph_reproducible(self):
        first = random_regular_graph(16, 4, rng=7)
        second = random_regular_graph(16, 4, rng=7)
        assert sorted(first.edges()) == sorted(second.edges())

    def test_regular_parity_validation(self):
        with pytest.raises(InvalidParameterError):
            random_regular_graph(7, 3)  # n * degree odd

    def test_regular_degree_validation(self):
        with pytest.raises(InvalidParameterError):
            random_regular_graph(5, 5)

    def test_erdos_renyi_connected(self):
        graph = erdos_renyi_graph(30, 0.3, rng=1)
        assert nx.is_connected(graph)
        assert graph.number_of_nodes() == 30

    def test_erdos_renyi_probability_validation(self):
        with pytest.raises(InvalidParameterError):
            erdos_renyi_graph(10, 0.0)
        with pytest.raises(InvalidParameterError):
            erdos_renyi_graph(10, 1.5)

    def test_erdos_renyi_gives_up_when_too_sparse(self):
        with pytest.raises(InvalidParameterError):
            erdos_renyi_graph(200, 0.001, rng=0)
