"""Tests for workload generators."""

import pytest

from repro import (
    FourStateProtocol,
    InvalidParameterError,
    RunSpec,
    ThreeStateProtocol,
    run,
)
from repro.rng import spawn_many
from repro.workloads import (
    bernoulli_workload,
    clustered_placement,
    margin_workload,
    worst_case_workload,
)


class TestMarginWorkload:
    def test_counts_and_truth(self):
        workload = margin_workload(FourStateProtocol(), 101, 5 / 101)
        assert workload.n == 101
        assert workload.count_a - workload.count_b == 5
        assert workload.expected == 1
        assert workload.epsilon == pytest.approx(5 / 101)

    def test_majority_b(self):
        workload = margin_workload(FourStateProtocol(), 101, 5 / 101,
                                   majority="B")
        assert workload.expected == 0
        assert workload.count_b > workload.count_a


class TestWorstCase:
    def test_single_agent_advantage(self):
        workload = worst_case_workload(FourStateProtocol(), 11)
        assert workload.count_a - workload.count_b == 1

    def test_needs_odd_n(self):
        with pytest.raises(InvalidParameterError):
            worst_case_workload(FourStateProtocol(), 10)


class TestBernoulli:
    def test_counts_sum_and_distribution(self):
        protocol = ThreeStateProtocol()
        totals = []
        for child in spawn_many(0, 50):
            workload = bernoulli_workload(protocol, 100, 0.7, rng=child)
            assert workload.n == 100
            totals.append(workload.count_a)
        mean = sum(totals) / len(totals)
        assert 60 < mean < 80  # E[count_a] = 70

    def test_realized_majority_can_disagree_with_p(self):
        """Near p = 1/2 the ground truth is the *sample*, not p."""
        protocol = ThreeStateProtocol()
        saw_b_majority = False
        for child in spawn_many(1, 60):
            workload = bernoulli_workload(protocol, 51, 0.5, rng=child)
            if workload.expected == 0:
                saw_b_majority = True
        assert saw_b_majority

    def test_tie_has_no_expected(self):
        protocol = ThreeStateProtocol()
        for child in spawn_many(2, 100):
            workload = bernoulli_workload(protocol, 10, 0.5, rng=child)
            if workload.count_a == workload.count_b:
                assert workload.expected is None
                return
        pytest.skip("no tie sampled (unlikely)")

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            bernoulli_workload(ThreeStateProtocol(), 10, 1.5)
        with pytest.raises(InvalidParameterError):
            bernoulli_workload(ThreeStateProtocol(), 1, 0.5)

    def test_exactness_under_random_inputs(self):
        """AVC decides the *realized* majority of Bernoulli inputs."""
        from repro import AVCProtocol

        protocol = AVCProtocol(m=5, d=1)
        for child in spawn_many(3, 10):
            workload = bernoulli_workload(protocol, 60, 0.5, rng=child)
            if workload.expected is None:
                continue
            result = run(RunSpec(protocol, initial=workload.counts,
                                 seed=11, expected=workload.expected))
            assert result.settled and result.correct


class TestClusteredPlacement:
    def test_layout(self):
        protocol = FourStateProtocol()
        workload = margin_workload(protocol, 11, 3 / 11)
        agents = clustered_placement(protocol, workload)
        assert len(agents) == 11
        assert agents[:workload.count_a] == ["+1"] * workload.count_a
        assert agents[workload.count_a:] == ["-1"] * workload.count_b
