"""Tests for the phases and topology experiments."""

import pytest

from repro.experiments.config import SCALES
from repro.experiments.phases import phase_rows
from repro.experiments.topology import topology_rows


@pytest.fixture(scope="module")
def smoke():
    return SCALES["smoke"]


class TestPhases:
    def test_rows_cover_all_halvings(self, smoke):
        rows = phase_rows(smoke, seed=3)
        thresholds = [row["minority_max_weight_below"] for row in rows]
        assert thresholds[0] == smoke.ablation_d_m
        assert thresholds[-1] == 1
        # Each threshold halves (integer division).
        for previous, current in zip(thresholds, thresholds[1:]):
            assert current == previous // 2

    def test_times_monotone_and_within_run(self, smoke):
        rows = phase_rows(smoke, seed=4)
        times = [row["parallel_time"] for row in rows]
        assert times == sorted(times)
        assert times[-1] <= rows[-1]["total_convergence_time"]


class TestTopology:
    def test_rows_shape_and_findings(self, smoke):
        rows = topology_rows(smoke, seed=5)
        by_key = {(row["topology"], row["protocol"].split("(")[0]): row
                  for row in rows}

        # Interval consensus settles everywhere, correctly.
        for topology in ("clique", "random-4-regular", "torus", "ring"):
            row = by_key[(topology, "interval-consensus")]
            assert row["settled_fraction"] == 1.0
            assert row["error_fraction"] == 0.0

        # Measured times and spectral predictions order the same way.
        measured = [by_key[(t, "interval-consensus")]
                    ["mean_parallel_time"]
                    for t in ("clique", "torus", "ring")]
        predicted = [by_key[(t, "interval-consensus")]["predicted_time"]
                     for t in ("clique", "torus", "ring")]
        assert measured == sorted(measured)
        assert predicted == sorted(predicted)

        # AVC: fast on the clique, frozen on the ring.
        assert by_key[("clique", "avc")]["settled_fraction"] == 1.0
        assert by_key[("ring", "avc")]["settled_fraction"] < 0.5
