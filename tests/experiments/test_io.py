"""Tests for experiment CSV / table output."""

import csv

import pytest

from repro.errors import ExperimentError
from repro.experiments.io import format_table, write_csv


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = write_csv(tmp_path / "out.csv", rows)
        with open(path) as handle:
            loaded = list(csv.DictReader(handle))
        assert loaded == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_creates_parent_directories(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "dir" / "out.csv",
                         [{"a": 1}])
        assert path.exists()

    def test_column_selection_and_missing_values(self, tmp_path):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        path = write_csv(tmp_path / "out.csv", rows, columns=("b", "a"))
        with open(path) as handle:
            loaded = list(csv.DictReader(handle))
        assert loaded[0] == {"b": "2", "a": "1"}
        assert loaded[1] == {"b": "", "a": "3"}

    def test_empty_rows_without_columns_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            write_csv(tmp_path / "out.csv", [])

    def test_empty_rows_with_columns_writes_header_only(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", [], columns=("a", "b"))
        with open(path) as handle:
            reader = csv.DictReader(handle)
            assert reader.fieldnames == ["a", "b"]
            assert list(reader) == []

    def test_write_is_atomic(self, tmp_path):
        target = tmp_path / "out.csv"
        write_csv(target, [{"a": 1}])
        # A failed rewrite must leave the previous file intact and no
        # temporary files behind.
        before = target.read_bytes()
        with pytest.raises(ExperimentError):
            write_csv(target, [])
        assert target.read_bytes() == before
        assert list(tmp_path.glob("*.tmp")) == []

    def test_no_temp_files_after_success(self, tmp_path):
        write_csv(tmp_path / "out.csv", [{"a": 1}])
        assert list(tmp_path.glob("*.tmp")) == []


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table([{"name": "x", "value": 1.5},
                             {"name": "longer", "value": 22.25}])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "longer" in lines[3]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 2  # header/body aligned

    def test_title(self):
        text = format_table([{"a": 1}], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table([{"v": 1234567.0, "w": 0.000012,
                              "x": float("nan"), "y": 3.14159}])
        assert "1.235e+06" in text
        assert "1.200e-05" in text
        assert "nan" in text
        assert "3.142" in text

    def test_empty(self):
        assert format_table([]) == "(no rows)"
