"""The byzantine exactness-breakdown sweep and its cache contract.

The load-bearing property: the sweep's ``f = 0`` control points carry
the *same fingerprints* as the robustness sweep's rate-0.0 controls
(same protocols, geometry, and per-point seed formula), so the two
sweeps share control cache entries and never re-simulate them.
"""

import pytest

from repro.experiments import byzantine, robustness
from repro.experiments.config import SCALES, Scale
from repro.faults import FaultSpec
from repro.runstore import Orchestrator, RunStore

TINY = Scale(
    name="tiny",
    robustness_population=41,
    robustness_trials=3,
    robustness_rates=(0.0, 0.02),
    robustness_horizon=2.0,
    robustness_budget=20_000,
    byzantine_budgets=(0, 2),
)


def _orchestrator(tmp_path):
    return Orchestrator(RunStore(tmp_path / ".runstore"))


class TestSpecFor:
    def test_zero_budget_is_the_clean_spec(self):
        assert byzantine.byzantine_spec_for(0, "stubborn", 400) is None

    def test_active_budget_carries_mode_and_horizon(self):
        spec = byzantine.byzantine_spec_for(3, "adaptive", 400)
        assert spec == FaultSpec(byzantine_f=3,
                                 byzantine_mode="adaptive",
                                 horizon=400)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            byzantine.byzantine_rows(TINY, mode="sneaky")


class TestScales:
    @pytest.mark.parametrize("name", sorted(SCALES))
    def test_budgets_defined_and_inside_the_population(self, name):
        scale = SCALES[name]
        assert scale.byzantine_budgets[0] == 0
        assert all(f < scale.robustness_population
                   for f in scale.byzantine_budgets)
        assert list(scale.byzantine_budgets) \
            == sorted(set(scale.byzantine_budgets))


class TestSweep:
    def test_rows_cover_the_grid(self, tmp_path):
        rows = byzantine.byzantine_rows(
            TINY, orchestrator=_orchestrator(tmp_path))
        assert len(rows) == 2 * len(TINY.byzantine_budgets)
        assert {row["byzantine_f"] for row in rows} \
            == set(TINY.byzantine_budgets)
        assert {row["protocol"] for row in rows} \
            == {"avc(m=15,d=1)", "four-state"}
        controls = [row for row in rows if row["byzantine_f"] == 0]
        assert all(row["fault_model"] == "fault-free"
                   for row in controls)
        assert all(row["residual_error"] == 0.0 for row in controls)

    def test_rerun_is_a_pure_cache_hit(self, tmp_path):
        orch = _orchestrator(tmp_path)
        first = byzantine.byzantine_rows(TINY, orchestrator=orch)
        computed = orch.counters["computed"]
        second = byzantine.byzantine_rows(TINY, orchestrator=orch)
        assert second == first
        assert orch.counters["computed"] == computed
        assert orch.counters["cached"] == computed

    def test_controls_shared_with_the_robustness_sweep(self, tmp_path):
        """The satellite contract: after a robustness sweep, the
        byzantine sweep's f=0 points are served from cache (and only
        those — the faulted points are new), in either order."""
        orch = _orchestrator(tmp_path)
        robustness.robustness_rows(TINY, orchestrator=orch)
        assert orch.counters["cached"] == 0
        byzantine.byzantine_rows(TINY, orchestrator=orch)
        # 2 protocols x 1 control point each came from the robustness
        # controls; 2 protocols x 1 faulted budget were computed fresh.
        assert orch.counters["cached"] == 2

    def test_adaptive_and_stubborn_are_distinct_points(self, tmp_path):
        orch = _orchestrator(tmp_path)
        byzantine.byzantine_rows(TINY, mode="stubborn",
                                 orchestrator=orch)
        computed = orch.counters["computed"]
        byzantine.byzantine_rows(TINY, mode="adaptive",
                                 orchestrator=orch)
        # Controls are shared across modes; the faulted points differ.
        assert orch.counters["cached"] == 2
        assert orch.counters["computed"] == computed + 2
