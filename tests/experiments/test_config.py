"""Tests for experiment scales."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import SCALES, resolve_scale


def test_known_scales_present():
    assert set(SCALES) == {"smoke", "default", "paper"}


def test_resolve_by_name():
    assert resolve_scale("smoke").name == "smoke"
    assert resolve_scale("paper").figure3_populations[-1] == 100_001


def test_resolve_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")
    assert resolve_scale(None).name == "smoke"


def test_resolve_default_without_environment(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert resolve_scale(None).name == "default"


def test_unknown_scale_rejected():
    with pytest.raises(ExperimentError):
        resolve_scale("galactic")


def test_paper_scale_matches_appendix_d():
    """The paper grid: Figure 3's n values and Figure 4's s values."""
    paper = SCALES["paper"]
    assert paper.figure3_populations == (11, 101, 1001, 10_001, 100_001)
    assert paper.figure3_trials == 101
    assert paper.figure4_num_states == (4, 6, 12, 24, 34, 66, 130, 258,
                                        514, 1026, 2050, 4098, 16340)


def test_scales_share_field_names():
    smoke, default = SCALES["smoke"], SCALES["default"]
    assert set(vars(smoke)) == set(vars(default))
