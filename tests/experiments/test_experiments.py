"""End-to-end tests of the experiment modules at a tiny scale.

These are the library's own acceptance tests for the figure harness:
each experiment must run, produce rows with the expected schema, and
show the paper's qualitative shape even at minimal scale.
"""

import pytest

from repro.experiments.ablation_d import ablation_d_rows
from repro.experiments.config import Scale
from repro.experiments.figure3 import avc_n_state, figure3_rows
from repro.experiments.figure4 import figure4_rows, margin_advantages
from repro.experiments.four_state_census import census_summary, scaling_rows
from repro.experiments.lowerbound_logn import propagation_rows
from repro.experiments.runner import measure_majority_point
from repro.experiments.successors import successor_specs, successors_rows
from repro import FourStateProtocol

TINY = Scale(
    name="tiny",
    figure3_populations=(11, 101),
    figure3_trials=4,
    figure4_population=101,
    figure4_num_states=(4, 34),
    figure4_margins_per_decade=1,
    figure4_trials=4,
    ablation_d_population=101,
    ablation_d_m=15,
    ablation_d_levels=(1, 2),
    ablation_d_trials=4,
    propagation_populations=(100, 400),
    propagation_trials=20,
    census_sizes=(3,),
    census_limit=300,
    census_scaling_populations=(15, 45),
    census_scaling_trials=6,
    successors_populations=(60, 100),
    successors_trials=3,
    successors_epsilon=0.2,
)


class TestRunner:
    def test_measure_point_schema(self):
        row = measure_majority_point(FourStateProtocol(), n=21,
                                     epsilon=1 / 21, trials=3, seed=0)
        assert row["protocol"] == "four-state"
        assert row["trials"] == 3
        assert row["settled_fraction"] == 1.0
        assert row["error_fraction"] == 0.0
        assert row["mean_parallel_time"] > 0
        assert row["wall_seconds"] > 0


class TestFigure3:
    def test_avc_n_state_choice(self):
        protocol = avc_n_state(11)
        assert protocol.num_states >= 11
        assert protocol.num_states <= 13
        assert protocol.d == 1

    def test_rows_shape(self):
        rows = figure3_rows(TINY, seed=1)
        assert len(rows) == 2 * 3  # two n values x three protocols
        four_state = [r for r in rows if r["protocol"] == "four-state"]
        avc = [r for r in rows if r["protocol"].startswith("avc")]
        assert four_state[-1]["mean_parallel_time"] > \
            avc[-1]["mean_parallel_time"]
        assert all(r["error_fraction"] == 0.0 for r in four_state + avc)


class TestSuccessors:
    def test_specs_resolve_through_registry(self):
        specs = successor_specs(1000)
        names = [name for name, _ in specs]
        assert names == ["avc", "phase-doubling", "log-state"]
        assert all(params["levels"] == 10 for name, params in specs
                   if name != "avc")

    def test_rows_shape(self):
        rows = successors_rows(TINY, seed=1)
        assert len(rows) == 2 * 3  # two n values x three protocols
        assert all(r["error_fraction"] == 0.0 for r in rows)
        assert all(r["settled_fraction"] == 1.0 for r in rows)
        assert all(r["num_states"] > 0 for r in rows)
        # The log-state successor's additive state space stays well
        # below the phase-doubling product at equal level budgets.
        by_name = {r["protocol"].split("(")[0]: r for r in rows}
        assert (by_name["log-state"]["num_states"]
                < by_name["phase-doubling"]["num_states"])


class TestFigure4:
    def test_margin_advantages_odd_and_increasing(self):
        advantages = margin_advantages(1001, per_decade=2)
        assert all(a % 2 == 1 for a in advantages)
        assert advantages == sorted(advantages)
        assert advantages[0] == 1
        assert advantages[-1] <= 500

    def test_margin_advantages_validation(self):
        with pytest.raises(ValueError):
            margin_advantages(100, per_decade=2)

    def test_rows_shape(self):
        rows = figure4_rows(TINY, seed=1)
        assert {row["s"] for row in rows} == {4, 34}
        for row in rows:
            assert row["s_times_epsilon"] == \
                pytest.approx(row["s"] * row["epsilon"])
            assert row["error_fraction"] == 0.0
        # More states helps at the smallest margin.
        smallest = min(r["epsilon"] for r in rows)
        times = {r["s"]: r["mean_parallel_time"]
                 for r in rows if r["epsilon"] == smallest}
        assert times[34] < times[4]


class TestAblationD:
    def test_rows_flat_in_d(self):
        rows = ablation_d_rows(TINY, seed=1)
        assert [row["d"] for row in rows] == [1, 2]
        times = [row["mean_parallel_time"] for row in rows]
        assert max(times) < 3 * min(times)


class TestPropagation:
    def test_rows_match_closed_form(self):
        rows = propagation_rows(TINY, seed=1)
        for row in rows:
            assert row["mean_parallel_time"] == pytest.approx(
                row["exact_expected_parallel_time"], rel=0.2)


class TestCensusExperiment:
    def test_summary_and_scaling(self):
        summary, result = census_summary(TINY)
        assert summary["num_checked"] == 300
        assert summary["all_survivors_slow"]
        rows = scaling_rows(TINY, seed=2)
        assert len(rows) == 2
        assert rows[1]["mean_parallel_time"] > rows[0]["mean_parallel_time"]
