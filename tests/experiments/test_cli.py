"""CLI smoke tests: every subcommand runs at smoke scale."""

import pytest

from repro.experiments.cli import main


@pytest.fixture(autouse=True)
def isolated_output(tmp_path, monkeypatch):
    """Keep CSV output inside the test sandbox."""
    monkeypatch.chdir(tmp_path)


def run_cli(capsys, *argv):
    status = main(list(argv))
    captured = capsys.readouterr()
    return status, captured.out


def test_figure3_command(capsys, tmp_path):
    status, out = run_cli(capsys, "figure3", "--scale", "smoke",
                          "--output-dir", str(tmp_path / "res"))
    assert status == 0
    assert "Figure 3" in out
    assert (tmp_path / "res" / "figure3_smoke.csv").exists()


def test_figure4_command(capsys, tmp_path):
    status, out = run_cli(capsys, "figure4", "--scale", "smoke",
                          "--output-dir", str(tmp_path / "res"))
    assert status == 0
    assert "Figure 4" in out


def test_ablation_command(capsys, tmp_path):
    status, out = run_cli(capsys, "ablation-d", "--scale", "smoke",
                          "--output-dir", str(tmp_path / "res"))
    assert status == 0
    assert "d-ablation" in out


def test_propagation_command(capsys, tmp_path):
    status, out = run_cli(capsys, "info-propagation", "--scale", "smoke",
                          "--output-dir", str(tmp_path / "res"))
    assert status == 0
    assert "propagation" in out


def test_phases_command(capsys, tmp_path):
    status, out = run_cli(capsys, "phases", "--scale", "smoke",
                          "--output-dir", str(tmp_path / "res"))
    assert status == 0
    assert "phase structure" in out
    assert "rule mix" in out


def test_topology_command(capsys, tmp_path):
    status, out = run_cli(capsys, "topology", "--scale", "smoke",
                          "--output-dir", str(tmp_path / "res"))
    assert status == 0
    assert "Topology sweep" in out


def test_leader_command(capsys, tmp_path):
    status, out = run_cli(capsys, "leader-election", "--scale", "smoke",
                          "--output-dir", str(tmp_path / "res"))
    assert status == 0
    assert "Leader election" in out


def test_global_output_dir_before_subcommand(capsys, tmp_path):
    status, out = run_cli(capsys, "--output-dir", str(tmp_path / "glob"),
                          "figure3", "--scale", "smoke")
    assert status == 0
    assert (tmp_path / "glob" / "figure3_smoke.csv").exists()


def test_output_dir_env_var(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_OUTPUT_DIR", str(tmp_path / "env"))
    status, _ = run_cli(capsys, "figure3", "--scale", "smoke")
    assert status == 0
    assert (tmp_path / "env" / "figure3_smoke.csv").exists()


def test_resume_flag_reuses_cache(capsys, tmp_path):
    out_dir = str(tmp_path / "res")
    status, _ = run_cli(capsys, "figure3", "--scale", "smoke",
                        "--output-dir", out_dir)
    assert status == 0
    first = (tmp_path / "res" / "figure3_smoke.csv").read_bytes()
    status, out = run_cli(capsys, "figure3", "--scale", "smoke",
                          "--output-dir", out_dir, "--resume")
    assert status == 0
    assert "0 computed" in out
    assert (tmp_path / "res" / "figure3_smoke.csv").read_bytes() == first


def test_runs_subcommands(capsys, tmp_path):
    out_dir = str(tmp_path / "res")
    run_cli(capsys, "figure3", "--scale", "smoke",
            "--output-dir", out_dir)

    status, out = run_cli(capsys, "runs", "list", "--output-dir", out_dir)
    assert status == 0
    assert "majority" in out

    status, out = run_cli(capsys, "runs", "status", "--output-dir",
                          out_dir)
    assert status == 0
    assert "objects" in out

    status, out = run_cli(capsys, "runs", "gc", "--output-dir", out_dir,
                          "--all")
    assert status == 0
    status, out = run_cli(capsys, "runs", "list", "--output-dir", out_dir)
    assert status == 0
    assert "majority" not in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["teleport"])


def test_module_entry_point():
    import repro.__main__  # noqa: F401  (import must not execute main)
