"""CLI smoke tests: every subcommand runs at smoke scale."""

import pytest

from repro.experiments.cli import main


@pytest.fixture(autouse=True)
def isolated_output(tmp_path, monkeypatch):
    """Keep CSV output inside the test sandbox."""
    monkeypatch.chdir(tmp_path)


def run_cli(capsys, *argv):
    status = main(list(argv))
    captured = capsys.readouterr()
    return status, captured.out


def test_figure3_command(capsys, tmp_path):
    status, out = run_cli(capsys, "figure3", "--scale", "smoke",
                          "--output-dir", str(tmp_path / "res"))
    assert status == 0
    assert "Figure 3" in out
    assert (tmp_path / "res" / "figure3_smoke.csv").exists()


def test_figure4_command(capsys, tmp_path):
    status, out = run_cli(capsys, "figure4", "--scale", "smoke",
                          "--output-dir", str(tmp_path / "res"))
    assert status == 0
    assert "Figure 4" in out


def test_ablation_command(capsys, tmp_path):
    status, out = run_cli(capsys, "ablation-d", "--scale", "smoke",
                          "--output-dir", str(tmp_path / "res"))
    assert status == 0
    assert "d-ablation" in out


def test_propagation_command(capsys, tmp_path):
    status, out = run_cli(capsys, "info-propagation", "--scale", "smoke",
                          "--output-dir", str(tmp_path / "res"))
    assert status == 0
    assert "propagation" in out


def test_phases_command(capsys, tmp_path):
    status, out = run_cli(capsys, "phases", "--scale", "smoke",
                          "--output-dir", str(tmp_path / "res"))
    assert status == 0
    assert "phase structure" in out
    assert "rule mix" in out


def test_topology_command(capsys, tmp_path):
    status, out = run_cli(capsys, "topology", "--scale", "smoke",
                          "--output-dir", str(tmp_path / "res"))
    assert status == 0
    assert "Topology sweep" in out


def test_leader_command(capsys, tmp_path):
    status, out = run_cli(capsys, "leader-election", "--scale", "smoke",
                          "--output-dir", str(tmp_path / "res"))
    assert status == 0
    assert "Leader election" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["teleport"])


def test_module_entry_point():
    import repro.__main__  # noqa: F401  (import must not execute main)
