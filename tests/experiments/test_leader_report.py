"""Tests for the leader-election experiment and the report generator."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import SCALES
from repro.experiments.io import write_csv
from repro.experiments.leader import leader_rows
from repro.experiments.report import collect_rows, render_report


class TestLeaderExperiment:
    def test_rows_shape(self):
        rows = leader_rows(SCALES["smoke"], seed=1)
        assert len(rows) == 4  # two n values x two protocols
        for row in rows:
            assert row["mean_parallel_time"] > 0
            assert row["time_over_n"] == pytest.approx(
                row["mean_parallel_time"] / row["n"])

    def test_election_time_linear_in_n(self):
        rows = leader_rows(SCALES["smoke"], seed=2)
        pairwise = [row for row in rows
                    if row["protocol"] == "leader-election"]
        small, large = sorted(pairwise, key=lambda r: r["n"])
        ratio = large["mean_parallel_time"] / small["mean_parallel_time"]
        n_ratio = large["n"] / small["n"]
        assert n_ratio / 5 < ratio < n_ratio * 5


class TestReport:
    def test_collect_rows_types(self, tmp_path):
        path = write_csv(tmp_path / "x.csv",
                         [{"a": 1, "b": 2.5, "c": "text"}])
        rows = collect_rows(path)
        assert rows == [{"a": 1, "b": 2.5, "c": "text"}]

    def test_render_report(self, tmp_path):
        write_csv(tmp_path / "alpha.csv", [{"n": 10, "time": 1.5}])
        write_csv(tmp_path / "beta.csv", [{"k": 3}])
        report = render_report(tmp_path)
        assert "# Reproduction report" in report
        assert "## alpha" in report
        assert "## beta" in report
        assert "1.5" in report

    def test_empty_results_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            render_report(tmp_path)

    def test_cli_report_round_trip(self, tmp_path, capsys):
        from repro.experiments.report import main

        write_csv(tmp_path / "alpha.csv", [{"n": 10}])
        assert main(["--output-dir", str(tmp_path)]) == 0
        assert (tmp_path / "REPORT.md").exists()
