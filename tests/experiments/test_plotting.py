"""Tests for the ASCII chart renderer."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.plotting import ascii_chart


def simple_series():
    return {"up": [(1, 10), (10, 100), (100, 1000)],
            "flat": [(1, 50), (100, 50)]}


class TestAsciiChart:
    def test_contains_axes_and_legend(self):
        chart = ascii_chart(simple_series(), title="demo")
        assert chart.splitlines()[0] == "demo"
        assert "legend: o up  x flat" in chart
        assert "+----" in chart

    def test_markers_present(self):
        chart = ascii_chart(simple_series())
        assert chart.count("o") >= 3
        assert chart.count("x") >= 2

    def test_monotone_series_renders_monotone(self):
        chart = ascii_chart({"up": [(1, 1), (10, 10), (100, 100)]})
        rows = [line for line in chart.splitlines() if "|" in line]
        columns = [line.index("o") for line in rows if "o" in line]
        # The top row holds the largest y, which for this series is
        # also the largest x (rightmost column); scanning downward the
        # marker must move left.
        assert columns == sorted(columns, reverse=True)

    def test_log_ticks(self):
        chart = ascii_chart({"a": [(1, 1), (1000, 1000)]})
        assert "1e+0" in chart and "1e+3" in chart

    def test_linear_scale(self):
        chart = ascii_chart({"a": [(0, 0), (5, 5)]}, log_x=False,
                            log_y=False)
        assert "1e" not in chart

    def test_deterministic(self):
        assert ascii_chart(simple_series()) == ascii_chart(simple_series())

    def test_rejects_empty(self):
        with pytest.raises(ExperimentError):
            ascii_chart({})
        with pytest.raises(ExperimentError):
            ascii_chart({"a": []})

    def test_rejects_nonpositive_on_log_axis(self):
        with pytest.raises(ExperimentError):
            ascii_chart({"a": [(0, 1)]})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ExperimentError):
            ascii_chart(simple_series(), width=4)

    def test_single_point(self):
        chart = ascii_chart({"a": [(10, 10)]})
        assert "o" in chart
