"""The engine registry: registration, policies, resolution."""

import pytest

from repro import FourStateProtocol, InvalidParameterError
from repro.sim import CountEngine, engines
from repro.sim.count_engine import CountEngine as CountEngineClass


@pytest.fixture
def cleanup():
    """Remove any names a test registered."""
    added = []
    yield added.append
    for name in added:
        try:
            engines.unregister(name)
        except InvalidParameterError:
            pass


class TestBuiltins:
    def test_available_lists_policies_then_engines(self):
        assert engines.available() == (
            "auto", "agent", "batch", "batch-jit", "continuous-time",
            "count", "count-ensemble", "count-ensemble-jit",
            "count-jit", "ensemble", "null-skipping", "rounds")

    def test_is_policy(self):
        assert engines.is_policy("auto")
        assert not engines.is_policy("count")

    def test_unknown_name_lists_choices(self):
        with pytest.raises(InvalidParameterError, match="auto"):
            engines.get("warp-drive")


class TestRegistration:
    def test_register_and_create(self, cleanup):
        engines.register("mine", lambda protocol, **_:
                         CountEngineClass(protocol))
        cleanup("mine")
        engine = engines.create(FourStateProtocol(), "mine")
        assert isinstance(engine, CountEngine)

    def test_duplicate_requires_replace(self, cleanup):
        engines.register("dup", lambda protocol, **_: None)
        cleanup("dup")
        with pytest.raises(InvalidParameterError, match="replace=True"):
            engines.register("dup", lambda protocol, **_: None)
        engines.register("dup", lambda protocol, **_:
                         CountEngineClass(protocol), replace=True)
        assert isinstance(engines.create(FourStateProtocol(), "dup"),
                          CountEngine)

    def test_unregister(self):
        engines.register("ephemeral", lambda protocol, **_: None)
        engines.unregister("ephemeral")
        with pytest.raises(InvalidParameterError):
            engines.get("ephemeral")
        with pytest.raises(InvalidParameterError):
            engines.unregister("ephemeral")

    def test_bad_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            engines.register("", lambda protocol, **_: None)

    def test_graph_requires_supports_graph(self, cleanup):
        engines.register("no-graph", lambda protocol, **_:
                         CountEngineClass(protocol))
        cleanup("no-graph")
        with pytest.raises(InvalidParameterError, match="complete graph"):
            engines.create(FourStateProtocol(), "no-graph",
                           graph=object())


class TestPolicies:
    def test_policy_chain_resolves(self, cleanup):
        engines.register_policy("indirect", lambda protocol, **_: "auto")
        cleanup("indirect")
        resolved = engines.resolve_name("indirect", FourStateProtocol())
        assert resolved == "null-skipping"

    def test_policy_cycle_detected(self, cleanup):
        engines.register_policy("ping", lambda protocol, **_: "pong")
        cleanup("ping")
        engines.register_policy("pong", lambda protocol, **_: "ping")
        cleanup("pong")
        with pytest.raises(InvalidParameterError, match="cycle"):
            engines.resolve_name("ping", FourStateProtocol())

    def test_auto_is_a_registered_policy(self):
        entry = engines.get("auto")
        assert entry.policy is not None and entry.factory is None
