"""Tests for per-interaction observers and the AVC rule census."""

import pytest

from repro import AVCProtocol, FourStateProtocol, RunSpec, run_majority
from repro.sim import AgentEngine, BatchEngine, CountEngine, \
    NullSkippingEngine
from repro.sim.observers import RuleCensus, avc_rule_classifier


class TestObserverPlumbing:
    @pytest.mark.parametrize("engine_class",
                             [AgentEngine, CountEngine,
                              NullSkippingEngine])
    def test_observer_sees_every_productive_step(self, engine_class):
        protocol = FourStateProtocol()
        events = []
        engine = engine_class(protocol)
        result = engine.run(
            protocol.initial_counts(20, 10), rng=1,
            event_observer=lambda *e: events.append(e))
        assert len(events) == result.productive_steps
        s = protocol.num_states
        for i, j, new_i, new_j in events:
            assert all(0 <= k < s for k in (i, j, new_i, new_j))
            assert (new_i, new_j) != (i, j)

    def test_multiple_observers(self):
        protocol = FourStateProtocol()
        first, second = [], []
        CountEngine(protocol).run(
            protocol.initial_counts(10, 5), rng=2,
            event_observer=[lambda *e: first.append(e),
                            lambda *e: second.append(e)])
        assert first and first == second

    def test_batch_engine_ignores_observers(self):
        protocol = FourStateProtocol()
        events = []
        result = BatchEngine(protocol).run(
            protocol.initial_counts(40, 20), rng=3,
            event_observer=lambda *e: events.append(e))
        assert result.settled
        assert events == []

    def test_observed_run_matches_unobserved(self):
        """Observation must not perturb the dynamics."""
        protocol = FourStateProtocol()
        engine = CountEngine(protocol)
        plain = engine.run(protocol.initial_counts(25, 15), rng=4)
        observed = engine.run(protocol.initial_counts(25, 15), rng=4,
                              event_observer=lambda *e: None)
        assert plain.steps == observed.steps
        assert plain.final_counts == observed.final_counts


class TestRuleCensus:
    def test_avc_rule_mix(self):
        protocol = AVCProtocol(m=9, d=2)
        census = RuleCensus(avc_rule_classifier(protocol))
        result = run_majority(RunSpec(protocol, n=101, epsilon=5 / 101,
                                      seed=5, engine="count",
                                      event_observer=census))
        assert result.settled
        assert census.total == result.productive_steps
        # A normal run exercises averaging, neutralization and follow.
        assert census.counts["averaging"] > 0
        assert census.counts["neutralization"] > 0
        assert census.counts["follow"] > 0
        fractions = census.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_four_state_equivalent_has_no_averaging(self):
        """AVC(m=1) never fires rule 1 — everything is weight <= 1."""
        protocol = AVCProtocol(m=1, d=1)
        census = RuleCensus(avc_rule_classifier(protocol))
        run_majority(RunSpec(protocol, n=51, epsilon=5 / 51, seed=6,
                             engine="count", event_observer=census))
        assert census.counts["averaging"] == 0
        assert census.counts["neutralization"] > 0

    def test_empty_census(self):
        census = RuleCensus(lambda *e: "x")
        assert census.total == 0
        assert census.fractions() == {}

    def test_shift_events_with_deep_levels(self):
        protocol = AVCProtocol(m=3, d=6)
        census = RuleCensus(avc_rule_classifier(protocol))
        run_majority(RunSpec(protocol, n=101, epsilon=1 / 101, seed=7,
                             engine="count", event_observer=census))
        assert census.counts["shift"] > 0
