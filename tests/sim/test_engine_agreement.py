"""Cross-engine validation (abl-engines, statistical part).

All exact engines sample the same Markov chain, so their convergence
time distributions must agree; the batch engine is approximate but
must agree within tolerance.  We compare mean parallel times over
modest trial counts with loose thresholds to keep the suite fast and
deterministic (fixed seeds); the stronger ground-truth comparison
against exact Markov-chain absorption times lives in
``tests/analysis/test_markov.py``.
"""

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro import (
    AVCProtocol,
    FourStateProtocol,
    LogStateMajorityProtocol,
    PhaseDoublingProtocol,
    ThreeStateProtocol,
)
from repro.sim import (
    AgentEngine,
    BatchEngine,
    CountEngine,
    CountEnsembleEngine,
    EnsembleEngine,
    JitCountEnsembleEngine,
    NullSkippingEngine,
    TrialStats,
)
from repro.sim import kernels
from repro.rng import spawn_many

needs_backend = pytest.mark.skipif(
    kernels.default_backend() is None,
    reason="no usable kernel backend on this host")


def mean_time(engine, protocol, count_a, count_b, trials, seed):
    results = [
        engine.run(protocol.initial_counts(count_a, count_b), rng=child)
        for child in spawn_many(seed, trials)
    ]
    stats = TrialStats.from_results(results)
    assert stats.settled_fraction == 1.0
    return stats.mean_parallel_time


@pytest.mark.parametrize("protocol_factory,count_a,count_b", [
    (FourStateProtocol, 40, 21),
    (ThreeStateProtocol, 45, 16),
    (lambda: AVCProtocol(m=9, d=1), 36, 25),
    (lambda: PhaseDoublingProtocol(levels=5, theta=2), 36, 25),
    (lambda: LogStateMajorityProtocol(levels=5, phase_len=2), 36, 25),
])
def test_exact_engines_agree(protocol_factory, count_a, count_b):
    protocol = protocol_factory()
    trials = 60
    agent = mean_time(AgentEngine(protocol), protocol, count_a, count_b,
                      trials, seed=101)
    count = mean_time(CountEngine(protocol), protocol, count_a, count_b,
                      trials, seed=202)
    skip = mean_time(NullSkippingEngine(protocol), protocol, count_a,
                     count_b, trials, seed=303)
    # Same chain, independent samples: means within 35% of each other.
    reference = agent
    assert count == pytest.approx(reference, rel=0.35)
    assert skip == pytest.approx(reference, rel=0.35)


def test_batch_engine_agrees_within_tolerance():
    protocol = AVCProtocol(m=9, d=1)
    trials = 40
    exact = mean_time(CountEngine(protocol), protocol, 120, 81, trials,
                      seed=7)
    batched = mean_time(BatchEngine(protocol, batch_fraction=0.05),
                        protocol, 120, 81, trials, seed=8)
    assert batched == pytest.approx(exact, rel=0.5)


@pytest.mark.parametrize("ensemble_cls", [
    EnsembleEngine, CountEnsembleEngine,
    pytest.param(JitCountEnsembleEngine, marks=needs_backend),
], ids=["token-ensemble", "count-ensemble", "count-ensemble-jit"])
@pytest.mark.parametrize("protocol_factory,count_a,count_b", [
    (FourStateProtocol, 40, 21),
    (ThreeStateProtocol, 45, 16),
    (lambda: AVCProtocol(m=9, d=1), 36, 25),
    (lambda: PhaseDoublingProtocol(levels=5, theta=2), 36, 25),
    (lambda: LogStateMajorityProtocol(levels=5, phase_len=2), 36, 25),
], ids=["four-state", "three-state", "avc", "phase-doubling",
        "log-state"])
def test_ensemble_matches_count_engine_distribution(protocol_factory,
                                                    count_a, count_b,
                                                    ensemble_cls):
    """Both ensemble paths sample the count-engine chain exactly, so
    their convergence-step samples must come from the same distribution
    (two-sample Kolmogorov-Smirnov; fixed seeds keep it deterministic)."""
    protocol = protocol_factory()
    trials = 150
    initial = protocol.initial_counts(count_a, count_b)
    count_engine = CountEngine(protocol)
    count_steps = [count_engine.run(initial, rng=child).steps
                   for child in spawn_many(17, trials)]
    results = ensemble_cls(protocol).run_ensemble(
        initial, num_trials=trials, rng=np.random.default_rng(18))
    assert all(r.settled for r in results)
    ensemble_steps = [r.steps for r in results]
    outcome = ks_2samp(count_steps, ensemble_steps)
    assert outcome.pvalue > 0.01, (
        f"KS statistic {outcome.statistic:.3f}, p={outcome.pvalue:.4f}")


def test_null_skipping_steps_match_count_engine_distribution():
    """The skipped-null accounting must reproduce raw step counts, not
    just productive ones."""
    protocol = FourStateProtocol()
    trials = 80
    count = mean_time(CountEngine(protocol), protocol, 30, 25, trials,
                      seed=11)
    skip = mean_time(NullSkippingEngine(protocol), protocol, 30, 25,
                     trials, seed=12)
    assert skip == pytest.approx(count, rel=0.35)
