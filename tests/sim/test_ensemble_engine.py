"""EnsembleEngine behavior: guards, compaction, routing, censoring.

Distributional correctness lives in
``test_single_step_distribution.py`` (one-step exactness) and
``test_engine_agreement.py`` (convergence-time KS agreement with the
count engine); this module covers the engine's mechanics — the
unanimity requirement, budget handling, converged-row compaction, the
``run_trials`` routing guards, and auto-selection.
"""

import numpy as np
import pytest

from repro import (
    AVCProtocol,
    FourStateProtocol,
    InvalidParameterError,
    SimulationError,
    ThreeStateProtocol,
)
from repro.protocols.leader_election import PairwiseLeaderElection
from repro.sim import CountEngine, EnsembleEngine, NullSkippingEngine
from repro.sim.run import RunSpec, make_engine, run_trials


def avc():
    return AVCProtocol(m=9, d=1)


class TestRunEnsemble:
    def test_returns_one_result_per_trial_in_order(self):
        protocol = avc()
        results = EnsembleEngine(protocol).run_ensemble(
            protocol.initial_counts(36, 25), num_trials=30,
            rng=np.random.default_rng(3))
        assert len(results) == 30
        assert all(r.settled for r in results)
        assert all(r.engine_name == "ensemble" for r in results)
        assert all(r.n == 61 for r in results)

    def test_converged_rows_are_compacted_not_corrupted(self):
        """Trials finish at different ticks, so rows are repeatedly
        compacted out mid-run; every surviving result must still be a
        valid unanimous configuration of the full population."""
        protocol = avc()
        results = EnsembleEngine(protocol).run_ensemble(
            protocol.initial_counts(36, 25), num_trials=40,
            rng=np.random.default_rng(9))
        steps = [r.steps for r in results]
        assert len(set(steps)) > 1  # staggered finishes => compaction ran
        outputs = {state: protocol.output(state)
                   for state in protocol.states}
        for result in results:
            assert sum(result.final_counts.values()) == 61
            decided = {outputs[state]
                       for state, count in result.final_counts.items()
                       if count}
            assert decided == {result.decision}
            assert 0 < result.productive_steps <= result.steps

    def test_reproducible_with_fixed_seed(self):
        protocol = avc()
        initial = protocol.initial_counts(36, 25)
        engine = EnsembleEngine(protocol)
        first = engine.run_ensemble(initial, num_trials=20,
                                    rng=np.random.default_rng(4))
        second = engine.run_ensemble(initial, num_trials=20,
                                     rng=np.random.default_rng(4))
        assert [(r.steps, r.decision) for r in first] \
            == [(r.steps, r.decision) for r in second]

    def test_already_settled_initial_configuration(self):
        protocol = ThreeStateProtocol()
        results = EnsembleEngine(protocol).run_ensemble(
            {"A": 9}, num_trials=5, rng=np.random.default_rng(0))
        assert all(r.settled and r.steps == 0 for r in results)
        assert len({r.decision for r in results}) == 1

    def test_budget_censoring_reports_budget_steps(self):
        protocol = avc()
        results = EnsembleEngine(protocol).run_ensemble(
            protocol.initial_counts(36, 25), num_trials=6,
            rng=np.random.default_rng(1), max_steps=3)
        assert all(not r.settled for r in results)
        assert all(r.steps == 3 for r in results)
        assert all(r.decision is None for r in results)

    def test_rejects_non_unanimity_protocols(self):
        protocol = PairwiseLeaderElection()
        with pytest.raises(SimulationError, match="unanimity"):
            EnsembleEngine(protocol).run_ensemble(
                protocol.initial_counts(10), num_trials=2)

    def test_rejects_absurd_budget(self):
        protocol = avc()
        with pytest.raises(SimulationError, match="budget"):
            EnsembleEngine(protocol).run_ensemble(
                protocol.initial_counts(36, 25), num_trials=2,
                max_steps=10 ** 16)

    def test_validates_num_trials_and_population(self):
        protocol = avc()
        engine = EnsembleEngine(protocol)
        with pytest.raises(InvalidParameterError):
            engine.run_ensemble(protocol.initial_counts(36, 25),
                                num_trials=0)
        with pytest.raises(InvalidParameterError):
            engine.run_ensemble({protocol.states[0]: 1}, num_trials=2)


class TestRunTrialsRouting:
    def test_explicit_ensemble_engine(self):
        stats = run_trials(RunSpec(avc(), num_trials=25, seed=5,
                                   engine="ensemble", n=61,
                                   epsilon=11 / 61),
                           stats=True)
        assert stats.num_settled == 25
        assert stats.error_fraction == 0.0

    def test_recorder_and_observer_are_rejected(self):
        for unsupported in ("recorder", "event_observer", "graph"):
            with pytest.raises(InvalidParameterError, match="ensemble"):
                run_trials(RunSpec(avc(), num_trials=2, seed=0,
                                   engine="ensemble", n=61,
                                   epsilon=11 / 61,
                                   **{unsupported: object()}))

    def test_auto_upgrades_large_unanimity_protocols(self):
        wide = AVCProtocol.with_num_states(18)
        assert isinstance(make_engine(wide, "auto", num_trials=2),
                          EnsembleEngine)
        # Single runs and small state spaces keep their engines.
        assert isinstance(make_engine(wide, "auto", num_trials=1),
                          CountEngine)
        assert isinstance(make_engine(FourStateProtocol(), "auto",
                                      num_trials=2),
                          NullSkippingEngine)

    def test_auto_route_matches_explicit_ensemble(self):
        wide = AVCProtocol.with_num_states(18)
        spec = RunSpec(wide, num_trials=12, seed=21, n=41,
                       epsilon=5 / 41)
        auto = run_trials(spec.replace(engine="auto"))
        explicit = run_trials(spec.replace(engine="ensemble"))
        assert [(r.steps, r.decision) for r in auto] \
            == [(r.steps, r.decision) for r in explicit]
