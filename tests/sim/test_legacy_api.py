"""The deprecated kwargs forms of run/run_majority/run_trials.

The one-door API takes a :class:`repro.RunSpec`; the pre-RunSpec
signatures keep working but emit ``DeprecationWarning``.  These tests
pin both halves of that contract: every legacy form warns, and the
legacy path is bit-identical to the spec path (the ISSUE's seed-7
acceptance check), so downstream callers can migrate with zero result
drift.
"""

import pytest

from repro import (
    FourStateProtocol,
    InvalidParameterError,
    RunSpec,
    ThreeStateProtocol,
    run,
    run_majority,
    run_trials,
)
from repro.sim.parallel import run_trials_parallel


def legacy(callable_, *args, **kwargs):
    with pytest.warns(DeprecationWarning, match="repro.RunSpec"):
        return callable_(*args, **kwargs)


class TestEveryLegacyFormWarns:
    def test_run(self):
        result = legacy(run, ThreeStateProtocol(),
                        {"A": 5, "B": 2, "_": 3}, seed=1)
        assert result.settled

    def test_run_majority(self):
        result = legacy(run_majority, FourStateProtocol(), n=21,
                        epsilon=1 / 21, seed=0)
        assert result.settled

    def test_run_trials(self):
        results = legacy(run_trials, FourStateProtocol(), num_trials=2,
                         seed=0, n=21, epsilon=1 / 21)
        assert len(results) == 2

    def test_run_trials_parallel(self):
        results = legacy(run_trials_parallel, FourStateProtocol(),
                         num_trials=2, seed=0, processes=2, n=21,
                         epsilon=1 / 21)
        assert len(results) == 2

    def test_spec_form_does_not_warn(self, recwarn):
        run_majority(RunSpec(FourStateProtocol(), n=21, epsilon=1 / 21,
                             seed=0))
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]


class TestLegacyFormValidation:
    def test_unknown_kwarg_is_type_error(self):
        with pytest.raises(TypeError):
            legacy(run_majority, FourStateProtocol(), n=21,
                   epsilon=1 / 21, sead=0)

    def test_seed_and_rng_exclusive(self, rng):
        with pytest.raises(InvalidParameterError):
            legacy(run_majority, FourStateProtocol(), n=11,
                   epsilon=1 / 11, seed=1, rng=rng)

    def test_legacy_rng_form_runs(self, rng):
        result = legacy(run_majority, FourStateProtocol(), n=21,
                        epsilon=1 / 21, rng=rng)
        assert result.settled

    def test_input_validation_still_applies(self):
        with pytest.raises(InvalidParameterError):
            legacy(run_majority, FourStateProtocol(), n=10,
                   epsilon=0.2, count_a=5, count_b=5)


class TestSeed7BitIdentity:
    """Legacy kwargs and RunSpec must draw identical randomness."""

    def test_run_majority(self):
        spec = RunSpec(FourStateProtocol(), n=31, epsilon=3 / 31, seed=7)
        via_spec = run_majority(spec)
        via_kwargs = legacy(run_majority, FourStateProtocol(), n=31,
                            epsilon=3 / 31, seed=7)
        assert via_spec == via_kwargs

    def test_run(self):
        initial = {"A": 18, "B": 13}
        via_spec = run(RunSpec(ThreeStateProtocol(), initial=initial,
                               seed=7))
        via_kwargs = legacy(run, ThreeStateProtocol(), initial, seed=7)
        assert via_spec == via_kwargs

    def test_run_trials(self):
        spec = RunSpec(ThreeStateProtocol(), num_trials=5, seed=7,
                       n=31, epsilon=3 / 31)
        via_spec = run_trials(spec)
        via_kwargs = legacy(run_trials, ThreeStateProtocol(),
                            num_trials=5, seed=7, n=31, epsilon=3 / 31)
        assert via_spec == via_kwargs

    def test_run_trials_parallel(self):
        spec = RunSpec(ThreeStateProtocol(), num_trials=4, seed=7,
                       n=31, epsilon=3 / 31)
        via_spec = run_trials_parallel(spec, processes=2)
        via_kwargs = legacy(run_trials_parallel, ThreeStateProtocol(),
                            num_trials=4, seed=7, processes=2, n=31,
                            epsilon=3 / 31)
        assert via_spec == via_kwargs
