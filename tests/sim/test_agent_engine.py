"""Tests for the agent-array engine."""

import networkx as nx
import pytest

from repro import (
    AVCProtocol,
    AgentEngine,
    FourStateProtocol,
    ThreeStateProtocol,
)
from repro.errors import InvalidParameterError
from repro.sim.record import TrajectoryRecorder
from repro.sim.schedule import CompletePairSampler


class TestBasicRuns:
    def test_four_state_converges_correctly(self, rng):
        engine = AgentEngine(FourStateProtocol())
        counts = FourStateProtocol().initial_counts(30, 20)
        result = engine.run(counts, rng=rng, expected=1)
        assert result.settled
        assert result.decision == 1
        assert result.correct
        assert result.steps > 0
        assert result.n == 50

    def test_avc_converges_correctly(self, rng):
        protocol = AVCProtocol(m=5, d=1)
        engine = AgentEngine(protocol)
        counts = protocol.initial_counts_for_margin(51, 3 / 51)
        result = engine.run(counts, rng=rng, expected=1)
        assert result.settled and result.decision == 1

    def test_final_counts_consistent(self, rng):
        protocol = ThreeStateProtocol()
        engine = AgentEngine(protocol)
        result = engine.run(protocol.initial_counts(20, 10), rng=rng)
        assert sum(result.final_counts.values()) == 30
        assert result.settled

    def test_already_settled_input(self, rng):
        protocol = ThreeStateProtocol()
        engine = AgentEngine(protocol)
        result = engine.run({"A": 10}, rng=rng, expected=1)
        assert result.settled
        assert result.steps == 0
        assert result.parallel_time == 0

    def test_budget_exhaustion_returns_unsettled(self, rng):
        protocol = FourStateProtocol()
        engine = AgentEngine(protocol)
        result = engine.run(protocol.initial_counts(500, 499),
                            rng=rng, max_steps=50)
        assert not result.settled
        assert result.steps == 50
        assert result.decision is None
        assert result.correct is None

    def test_population_of_one_rejected(self, rng):
        engine = AgentEngine(ThreeStateProtocol())
        with pytest.raises(InvalidParameterError):
            engine.run({"A": 1}, rng=rng)

    def test_reproducible_given_seed(self):
        protocol = ThreeStateProtocol()
        engine = AgentEngine(protocol)
        first = engine.run(protocol.initial_counts(30, 20), rng=42)
        second = engine.run(protocol.initial_counts(30, 20), rng=42)
        assert first.steps == second.steps
        assert first.final_counts == second.final_counts


class TestGraphSupport:
    def test_runs_on_cycle_graph(self, rng):
        protocol = ThreeStateProtocol()
        engine = AgentEngine(protocol, graph=nx.cycle_graph(20))
        result = engine.run(protocol.initial_counts(15, 5), rng=rng)
        assert result.settled

    def test_clique_four_state_deadlocks_on_star(self, rng):
        """The paper's clique form of the 4-state protocol is *not*
        exact on general graphs: on a star, opposite strong leaves can
        never interact, so the run cannot settle (this motivates the
        swap-based IntervalConsensusProtocol)."""
        protocol = FourStateProtocol()
        engine = AgentEngine(protocol, graph=nx.star_graph(14))  # 15 nodes
        result = engine.run(protocol.initial_counts(9, 6), rng=rng,
                            expected=1, max_parallel_time=2000)
        assert not result.settled

    def test_interval_consensus_exact_on_star_graph(self):
        """[DV12]: interval consensus (token swaps) is exact on any
        connected graph — it must settle on the true majority."""
        from repro.protocols.interval_consensus import (
            IntervalConsensusProtocol,
        )

        protocol = IntervalConsensusProtocol()
        engine = AgentEngine(protocol, graph=nx.star_graph(14))  # 15 nodes
        for trial_seed in range(5):
            result = engine.run(protocol.initial_counts(9, 6),
                                rng=trial_seed, expected=1)
            assert result.settled and result.decision == 1

    def test_sampler_population_mismatch(self, rng):
        protocol = ThreeStateProtocol()
        engine = AgentEngine(protocol,
                             pair_sampler=CompletePairSampler(10))
        with pytest.raises(ValueError):
            engine.run(protocol.initial_counts(3, 2), rng=rng)

    def test_graph_and_sampler_exclusive(self):
        with pytest.raises(ValueError):
            AgentEngine(ThreeStateProtocol(), graph=nx.path_graph(3),
                        pair_sampler=CompletePairSampler(3))


class TestRecorderIntegration:
    def test_recorder_sees_initial_and_final(self, rng):
        protocol = ThreeStateProtocol()
        engine = AgentEngine(protocol)
        recorder = TrajectoryRecorder(interval_steps=1)
        result = engine.run(protocol.initial_counts(10, 5), rng=rng,
                            recorder=recorder)
        assert recorder.steps[0] == 0
        assert recorder.steps[-1] == result.steps
        # Population conserved in every snapshot.
        assert all(s.sum() == 15 for s in recorder.snapshots)
