"""The count-ensemble engine: guards, routing, memory, regressions.

Statistical agreement with the sequential engines lives in
``test_engine_agreement.py`` (clean) and
``tests/faults/test_ensemble_faults.py`` (faulted); this module covers
the engine's own contracts — the collision-bounded batch loop's
invariants, the ``O(T*s)`` memory bound, the registry/RunSpec routing
by population size, and pinned seed-7 baselines.
"""

import tracemalloc

import numpy as np
import pytest

from repro import (
    AVCProtocol,
    FaultSpec,
    InvalidParameterError,
    RunSpec,
    run_trials,
)
from repro.errors import SimulationError
from repro.protocols import PairwiseLeaderElection
from repro.sim import (
    CountEnsembleEngine,
    EnsembleEngine,
    JitCountEnsembleEngine,
    TrajectoryRecorder,
    engines,
)
from repro.sim import kernels
from repro.sim.engines import COUNT_ENSEMBLE_MIN_N
from repro.sim.run import resolve_trial_engine

PROTOCOL = AVCProtocol(m=9, d=1)


def run_batch(trials=32, seed=7, count_a=36, count_b=25, **kwargs):
    initial = PROTOCOL.initial_counts(count_a, count_b)
    return CountEnsembleEngine(PROTOCOL).run_ensemble(
        initial, num_trials=trials, rng=np.random.default_rng(seed),
        **kwargs)


class TestGuards:
    def test_rejects_zero_trials(self):
        with pytest.raises(InvalidParameterError, match="num_trials"):
            run_batch(trials=0)

    def test_rejects_non_unanimity_protocols(self):
        protocol = PairwiseLeaderElection()
        initial = {state: 5 for state in range(protocol.num_states)}
        with pytest.raises(SimulationError, match="unanimity_settles"):
            CountEnsembleEngine(protocol).run_ensemble(
                initial, num_trials=2)

    def test_rejects_tiny_population(self):
        with pytest.raises(InvalidParameterError, match="at least 2"):
            run_batch(count_a=1, count_b=0)

    def test_rejects_adversarial_schedulers(self):
        with pytest.raises(InvalidParameterError, match="scheduler"):
            run_batch(faults=FaultSpec(scheduler="stubborn"))

    def test_spec_blockers_reject_bulk_engine(self):
        spec = RunSpec(PROTOCOL, count_a=36, count_b=25, num_trials=4,
                       seed=7, engine="count-ensemble",
                       recorder=TrajectoryRecorder(interval_steps=10))
        with pytest.raises(InvalidParameterError,
                           match="advances all trials in bulk"):
            run_trials(spec)


class TestBatchLoop:
    def test_settles_and_conserves_population(self):
        results = run_batch(trials=40)
        assert all(r.settled for r in results)
        for r in results:
            assert sum(r.final_counts.values()) == 61
            assert 0 < r.productive_steps <= r.steps

    def test_settled_rows_are_unanimous(self):
        for r in run_batch(trials=20, seed=3):
            votes = {PROTOCOL.output(state) for state in r.final_counts}
            assert votes == {r.decision}

    def test_budget_exhaustion_reports_exact_cap(self):
        results = run_batch(trials=10, max_steps=50)
        assert all(not r.settled and r.steps == 50 for r in results)
        assert all(r.decision is None for r in results)

    def test_already_settled_shortcut(self):
        initial = PROTOCOL.initial_counts(61, 0)
        results = CountEnsembleEngine(PROTOCOL).run_ensemble(
            initial, num_trials=5, rng=np.random.default_rng(1))
        assert all(r.settled and r.steps == 0 and r.decision == 1
                   for r in results)

    def test_same_seed_is_bit_identical(self):
        first = run_batch(trials=25, seed=11)
        second = run_batch(trials=25, seed=11)
        assert [(r.steps, r.decision, r.final_counts) for r in first] \
            == [(r.steps, r.decision, r.final_counts) for r in second]


class TestMemoryBound:
    def test_no_per_agent_allocation_at_paper_scale(self):
        """Persistent state is ``(T, s)`` and transient buffers are
        ``O(T*sqrt(n))``: at ``n = 10^6`` the run must stay far below
        the ``T*n`` token matrix (64 MB for 16 int32 rows)."""
        protocol = AVCProtocol(m=63, d=1)
        n = 1_000_001
        initial = protocol.initial_counts((n + 101) // 2,
                                          (n - 101) // 2)
        engine = CountEnsembleEngine(protocol)
        tracemalloc.start()
        results = engine.run_ensemble(initial, num_trials=16,
                                      rng=np.random.default_rng(5),
                                      max_steps=20_000)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(results) == 16
        assert peak < 16 * n  # well under one (T, n) int8 matrix even


class TestRouting:
    def test_auto_routes_small_populations_to_token_ensemble(self):
        protocol = AVCProtocol(m=63, d=1)
        spec = RunSpec(protocol, count_a=36, count_b=25, num_trials=8,
                       seed=7)
        engine, fallback = resolve_trial_engine(spec)
        assert type(engine) is EnsembleEngine and fallback is None

    def test_auto_routes_large_populations_to_count_ensemble(self):
        protocol = AVCProtocol(m=63, d=1)
        half = COUNT_ENSEMBLE_MIN_N // 2
        spec = RunSpec(protocol, count_a=half + 51, count_b=half - 50,
                       seed=7, num_trials=8)
        engine, fallback = resolve_trial_engine(spec)
        # The auto policy upgrades to the JIT twin when a kernel
        # backend is usable; the twin draws the identical stream.
        expected = (JitCountEnsembleEngine if kernels.default_backend()
                    else CountEnsembleEngine)
        assert type(engine) is expected and fallback is None

    def test_registry_policy_uses_population_size(self):
        protocol = AVCProtocol(m=63, d=1)
        assert engines.resolve_name("auto", protocol, num_trials=8,
                                    n=COUNT_ENSEMBLE_MIN_N) \
            == kernels.jit_engine_name("count-ensemble")
        assert engines.resolve_name("auto", protocol, num_trials=8,
                                    n=COUNT_ENSEMBLE_MIN_N - 1) \
            == "ensemble"
        assert engines.resolve_name("auto", protocol, num_trials=8,
                                    n=None) == "ensemble"

    def test_explicit_name_creates_the_engine(self):
        engine = engines.create(PROTOCOL, "count-ensemble")
        assert isinstance(engine, CountEnsembleEngine)
        assert engine.name == "count-ensemble"

    def test_run_trials_explicit_engine(self):
        spec = RunSpec(PROTOCOL, count_a=36, count_b=25, num_trials=6,
                       seed=7, engine="count-ensemble")
        results = run_trials(spec)
        assert len(results) == 6
        assert all(r.engine_name == "count-ensemble" for r in results)


class TestSeed7Baseline:
    """Pinned baseline: the collision-bounded batch loop must not move
    a single sample without a deliberate fixture update."""

    def test_seed_7_regression(self):
        spec = RunSpec(AVCProtocol(m=15, d=1), n=101, epsilon=5 / 101,
                       num_trials=4, seed=7, engine="count-ensemble")
        assert [(r.steps, r.decision, r.settled, r.productive_steps)
                for r in run_trials(spec)] == [
            (1024, 1, True, 433), (1080, 1, True, 440),
            (1356, 1, True, 468), (1303, 1, True, 435)]
