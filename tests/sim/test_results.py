"""Tests for RunResult / TrialStats."""

import math

from repro.sim.results import RunResult, TrialStats


def make_result(steps=100, n=10, settled=True, decision=1, expected=1,
                continuous_time=None):
    return RunResult(
        protocol_name="p", engine_name="e", n=n, steps=steps,
        settled=settled, decision=decision, expected=expected,
        final_counts={}, continuous_time=continuous_time)


class TestRunResult:
    def test_parallel_time_discrete(self):
        assert make_result(steps=250, n=50).parallel_time == 5.0

    def test_parallel_time_continuous(self):
        result = make_result(continuous_time=3.5)
        assert result.parallel_time == 3.5

    def test_correct_true_false_none(self):
        assert make_result(decision=1, expected=1).correct is True
        assert make_result(decision=0, expected=1).correct is False
        assert make_result(settled=False, decision=None).correct is None
        assert make_result(expected=None).correct is None


class TestTrialStats:
    def test_aggregates(self):
        results = [make_result(steps=100), make_result(steps=300)]
        stats = TrialStats.from_results(results)
        assert stats.num_trials == 2
        assert stats.num_settled == 2
        assert stats.mean_parallel_time == 20.0
        assert stats.min_parallel_time == 10.0
        assert stats.max_parallel_time == 30.0
        assert stats.mean_steps == 200.0
        assert stats.error_fraction == 0.0
        assert stats.settled_fraction == 1.0

    def test_error_fraction_counts_wrong_decisions(self):
        results = [make_result(decision=1), make_result(decision=0),
                   make_result(decision=0), make_result(decision=0)]
        stats = TrialStats.from_results(results)
        assert stats.error_fraction == 0.75

    def test_unsettled_runs_excluded_from_timing(self):
        results = [make_result(steps=100),
                   make_result(steps=999_999, settled=False, decision=None)]
        stats = TrialStats.from_results(results)
        assert stats.num_settled == 1
        assert stats.mean_parallel_time == 10.0
        assert stats.settled_fraction == 0.5

    def test_empty_and_all_unsettled(self):
        stats = TrialStats.from_results([])
        assert math.isnan(stats.settled_fraction)
        assert math.isnan(stats.error_fraction)
        stats = TrialStats.from_results(
            [make_result(settled=False, decision=None)])
        assert math.isnan(stats.mean_parallel_time)
        assert stats.settled_fraction == 0.0

    def test_std_zero_for_identical_runs(self):
        results = [make_result(steps=100)] * 3
        stats = TrialStats.from_results(results)
        assert stats.std_parallel_time == 0.0
