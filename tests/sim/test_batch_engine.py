"""Tests for the batched numpy engine."""

import pytest

from repro import AVCProtocol, BatchEngine, FourStateProtocol
from repro.errors import InvalidParameterError


class TestBatchEngine:
    def test_converges_correctly(self, rng):
        protocol = AVCProtocol(m=9, d=1)
        engine = BatchEngine(protocol)
        initial = protocol.initial_counts_for_margin(200, 0.1)
        result = engine.run(initial, rng=rng, expected=1)
        assert result.settled and result.decision == 1

    def test_works_with_table_kernel(self, rng):
        protocol = FourStateProtocol()
        engine = BatchEngine(protocol)
        result = engine.run(protocol.initial_counts(70, 30), rng=rng,
                            expected=1)
        assert result.settled and result.decision == 1

    def test_population_and_value_conserved(self, rng):
        protocol = AVCProtocol(m=5, d=2)
        engine = BatchEngine(protocol)
        initial = protocol.initial_counts_for_margin(101, 11 / 101)
        initial_sum = protocol.total_value(initial)
        result = engine.run(initial, rng=rng)
        assert sum(result.final_counts.values()) == 101
        assert protocol.total_value(result.final_counts) == initial_sum

    def test_batch_fraction_validation(self):
        with pytest.raises(InvalidParameterError):
            BatchEngine(AVCProtocol(m=3), batch_fraction=0.0)
        with pytest.raises(InvalidParameterError):
            BatchEngine(AVCProtocol(m=3), batch_fraction=1.5)

    def test_exactness_preserved_despite_batching(self):
        """Batching approximates timing, never correctness: AVC must
        still never decide for the minority."""
        protocol = AVCProtocol(m=5, d=1)
        engine = BatchEngine(protocol, batch_fraction=0.3)
        for seed in range(20):
            result = engine.run(protocol.initial_counts(30, 21),
                                rng=seed, expected=1)
            assert result.settled and result.decision == 1

    def test_budget_censoring(self, rng):
        protocol = FourStateProtocol()
        engine = BatchEngine(protocol)
        result = engine.run(protocol.initial_counts(500, 499), rng=rng,
                            max_steps=200)
        assert not result.settled
        assert result.steps <= 200

    def test_large_population_fast_path(self, rng):
        protocol = AVCProtocol.with_num_states(66)
        engine = BatchEngine(protocol, batch_fraction=0.2)
        initial = protocol.initial_counts_for_margin(5001, 101 / 5001)
        result = engine.run(initial, rng=rng, expected=1)
        assert result.settled and result.decision == 1
