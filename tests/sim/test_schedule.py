"""Tests for pair samplers (complete graph and graph-based)."""

import networkx as nx
import numpy as np
import pytest

from repro import InvalidParameterError
from repro.sim.schedule import CompletePairSampler, GraphPairSampler


class TestCompletePairSampler:
    def test_pairs_are_distinct(self, rng):
        sampler = CompletePairSampler(5)
        first, second = sampler.sample_block(rng, 1000)
        assert all(a != b for a, b in zip(first, second))

    def test_indices_in_range(self, rng):
        sampler = CompletePairSampler(3)
        first, second = sampler.sample_block(rng, 500)
        assert set(first) <= {0, 1, 2}
        assert set(second) <= {0, 1, 2}

    def test_uniform_over_ordered_pairs(self, rng):
        n = 4
        sampler = CompletePairSampler(n)
        first, second = sampler.sample_block(rng, 60_000)
        counts = np.zeros((n, n))
        for a, b in zip(first, second):
            counts[a, b] += 1
        frequencies = counts / 60_000
        expected = 1.0 / (n * (n - 1))
        for a in range(n):
            for b in range(n):
                if a == b:
                    assert frequencies[a, b] == 0
                else:
                    assert frequencies[a, b] == pytest.approx(expected,
                                                              rel=0.15)

    def test_rejects_tiny_population(self):
        with pytest.raises(InvalidParameterError):
            CompletePairSampler(1)


class TestGraphPairSampler:
    def test_cycle_graph_edges_only(self, rng):
        graph = nx.cycle_graph(6)
        sampler = GraphPairSampler(graph)
        assert sampler.num_directed_edges == 12
        first, second = sampler.sample_block(rng, 2000)
        for a, b in zip(first, second):
            assert abs(a - b) == 1 or abs(a - b) == 5

    def test_rejects_disconnected_graph(self):
        graph = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(InvalidParameterError):
            GraphPairSampler(graph)

    def test_rejects_weakly_connected_digraph(self):
        graph = nx.DiGraph([(0, 1), (0, 2), (1, 2)])
        with pytest.raises(InvalidParameterError):
            GraphPairSampler(graph)

    def test_directed_graph_keeps_orientation(self, rng):
        graph = nx.DiGraph([(0, 1), (1, 2), (2, 0)])
        sampler = GraphPairSampler(graph)
        assert sampler.num_directed_edges == 3
        first, second = sampler.sample_block(rng, 300)
        allowed = {(0, 1), (1, 2), (2, 0)}
        assert set(zip(first, second)) <= allowed

    def test_self_loops_skipped(self, rng):
        graph = nx.Graph([(0, 1), (1, 1)])
        sampler = GraphPairSampler(graph)
        assert sampler.num_directed_edges == 2

    def test_relabels_arbitrary_nodes(self, rng):
        graph = nx.Graph([("x", "y"), ("y", "z")])
        sampler = GraphPairSampler(graph)
        first, second = sampler.sample_block(rng, 100)
        assert set(first) | set(second) <= {0, 1, 2}
