"""Tests for trajectory recorders."""

import numpy as np
import pytest

from repro.sim.record import EventRecorder, TrajectoryRecorder


class TestTrajectoryRecorder:
    def test_records_at_interval(self):
        recorder = TrajectoryRecorder(interval_steps=10)
        recorder.maybe_record(0, [1, 2])
        recorder.maybe_record(5, [1, 2])   # skipped, before next tick
        recorder.maybe_record(12, [3, 0])  # due
        recorder.maybe_record(15, [4, 0])  # skipped
        assert recorder.steps == [0, 12]

    def test_snapshots_are_copies(self):
        recorder = TrajectoryRecorder(interval_steps=1)
        counts = [1, 2]
        recorder.maybe_record(0, counts)
        counts[0] = 99
        assert recorder.snapshots[0].tolist() == [1, 2]

    def test_force_record_deduplicates_step(self):
        recorder = TrajectoryRecorder(interval_steps=5)
        recorder.maybe_record(0, [1])
        recorder.force_record(0, [1])
        assert recorder.steps == [0]
        recorder.force_record(3, [2])
        assert recorder.steps == [0, 3]

    def test_as_matrix(self):
        recorder = TrajectoryRecorder(interval_steps=1)
        recorder.maybe_record(0, [1, 2])
        recorder.maybe_record(1, [2, 1])
        steps, matrix = recorder.as_matrix()
        np.testing.assert_array_equal(steps, [0, 1])
        np.testing.assert_array_equal(matrix, [[1, 2], [2, 1]])

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            TrajectoryRecorder(interval_steps=0)


class TestEventRecorder:
    def test_records_every_event(self):
        recorder = EventRecorder()
        for step in range(5):
            recorder.maybe_record(step, [step])
        assert recorder.steps == list(range(5))
        assert not recorder.truncated

    def test_truncates_at_cap(self):
        recorder = EventRecorder(max_events=3)
        for step in range(10):
            recorder.maybe_record(step, [step])
        assert len(recorder.steps) == 3
        assert recorder.truncated

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            EventRecorder(max_events=0)
