"""Tests for the count-vector engine."""

import pytest

from repro import AVCProtocol, CountEngine, FourStateProtocol
from repro.core.states import strong_state


class TestCountEngine:
    def test_avc_converges_and_conserves_value(self, rng):
        protocol = AVCProtocol(m=9, d=1)
        engine = CountEngine(protocol)
        initial = protocol.initial_counts_for_margin(101, 5 / 101)
        initial_sum = protocol.total_value(initial)
        result = engine.run(initial, rng=rng, expected=1)
        assert result.settled and result.decision == 1
        assert protocol.total_value(result.final_counts) == initial_sum

    def test_population_conserved(self, rng):
        protocol = FourStateProtocol()
        engine = CountEngine(protocol)
        result = engine.run(protocol.initial_counts(40, 25), rng=rng)
        assert sum(result.final_counts.values()) == 65

    def test_exactness_never_wrong_for_avc(self):
        """AVC is exact: no seed may produce a minority decision."""
        protocol = AVCProtocol(m=5, d=1)
        engine = CountEngine(protocol)
        for seed in range(30):
            result = engine.run(protocol.initial_counts(6, 5),
                                rng=seed, expected=1)
            assert result.settled
            assert result.decision == 1, f"wrong decision at seed {seed}"

    def test_large_state_space(self, rng):
        protocol = AVCProtocol.with_num_states(258)
        engine = CountEngine(protocol)
        initial = protocol.initial_counts_for_margin(501, 1 / 501)
        result = engine.run(initial, rng=rng, expected=1)
        assert result.settled and result.decision == 1

    def test_productive_steps_bounded_by_steps(self, rng):
        protocol = FourStateProtocol()
        engine = CountEngine(protocol)
        result = engine.run(protocol.initial_counts(20, 10), rng=rng)
        assert 0 < result.productive_steps <= result.steps

    def test_budget_censoring(self, rng):
        protocol = FourStateProtocol()
        engine = CountEngine(protocol)
        result = engine.run(protocol.initial_counts(300, 299), rng=rng,
                            max_steps=100)
        assert not result.settled
        assert result.steps == 100

    def test_minority_b_wins_when_b_majority(self, rng):
        protocol = AVCProtocol(m=5, d=1)
        engine = CountEngine(protocol)
        initial = protocol.initial_counts(10, 15)
        result = engine.run(initial, rng=rng, expected=0)
        assert result.settled and result.decision == 0
        assert all(state.sign < 0 for state in result.final_counts)

    def test_reproducible(self):
        protocol = AVCProtocol(m=5, d=1)
        engine = CountEngine(protocol)
        initial = protocol.initial_counts(30, 21)
        first = engine.run(initial, rng=9)
        second = engine.run(initial, rng=9)
        assert first.steps == second.steps
        assert first.final_counts == second.final_counts
