"""The compiled-kernel backends: probing, fallback, bit-identity.

Statistical agreement of the JIT engines lives in
``test_engine_agreement.py``; this module covers the backend registry
itself — probe/reporting, the ``REPRO_JIT=off`` fallback contract
(numpy resolution, ``engine.fallback`` telemetry, pinned baselines
unmoved), the packed transition table, the kernel-contract guards,
and byte-identity between every JIT engine and its numpy twin.
"""

import numpy as np
import pytest

from repro import AVCProtocol, FaultSpec, RunSpec, run_trials
from repro.sim import (
    BatchEngine,
    CountEngine,
    CountEnsembleEngine,
    engines,
    kernels,
)
from repro.sim.engines import COUNT_ENSEMBLE_MIN_N
from repro.sim.ensemble_common import class_tables, flat_transition_tables
from repro.telemetry import InMemorySink, Telemetry

needs_backend = pytest.mark.skipif(
    kernels.default_backend() is None,
    reason="no usable kernel backend on this host")

#: The count-ensemble seed-7 fixture pinned in
#: ``test_count_ensemble_engine.py`` — the JIT twin must reproduce it
#: byte for byte, with and without a backend.
SEED7_SPEC = dict(n=101, epsilon=5 / 101, num_trials=4, seed=7)
SEED7_BASELINE = [
    (1024, 1, True, 433), (1080, 1, True, 440),
    (1356, 1, True, 468), (1303, 1, True, 435)]


def seed7_tuples(engine, **extra):
    spec = RunSpec(AVCProtocol(m=15, d=1), engine=engine,
                   **SEED7_SPEC, **extra)
    return [(r.steps, r.decision, r.settled, r.productive_steps)
            for r in run_trials(spec)]


def result_tuples(engine, *, faults=None, num_trials=6, seed=3):
    spec = RunSpec(AVCProtocol(m=9, d=1), count_a=36, count_b=25,
                   num_trials=num_trials, seed=seed, engine=engine,
                   faults=faults)
    return [(r.steps, r.decision, r.settled, r.productive_steps)
            for r in run_trials(spec)]


@pytest.fixture
def jit_off(monkeypatch):
    """Disable every backend via ``REPRO_JIT=off`` for one test."""
    monkeypatch.setenv("REPRO_JIT", "off")
    kernels.reset_backend_cache()
    yield
    monkeypatch.undo()
    kernels.reset_backend_cache()


class TestBackendReporting:
    def test_available_reports_every_backend(self):
        report = kernels.available()
        assert set(report) == set(kernels.BACKENDS)
        assert all(isinstance(v, bool) for v in report.values())

    def test_default_backend_consistent_with_report(self):
        backend = kernels.default_backend()
        assert backend in (None,) + kernels.BACKENDS
        if backend is not None:
            assert kernels.available()[backend]
            assert kernels.load(backend).backend == backend

    def test_fallback_reason_is_a_string(self):
        assert isinstance(kernels.fallback_reason(), str)

    def test_jit_engine_name_maps_only_upgradable_names(self):
        # Names without a compiled twin never upgrade.
        assert kernels.jit_engine_name("ensemble") == "ensemble"
        assert kernels.jit_engine_name("agent") == "agent"
        upgraded = kernels.jit_engine_name("count-ensemble")
        if kernels.default_backend() is None:
            assert upgraded == "count-ensemble"
        else:
            assert upgraded == "count-ensemble-jit"


class TestDisabledFallback:
    def test_env_off_disables_probing(self, jit_off):
        assert kernels.default_backend() is None
        assert "REPRO_JIT" in kernels.fallback_reason()
        assert kernels.jit_engine_name("count") == "count"
        assert kernels.warm_up() is None
        with pytest.raises(ImportError, match="REPRO_JIT"):
            kernels.load()

    def test_auto_policy_resolves_to_numpy_names(self, jit_off):
        protocol = AVCProtocol(m=63, d=1)
        assert engines.resolve_name("auto", protocol, num_trials=8,
                                    n=COUNT_ENSEMBLE_MIN_N) \
            == "count-ensemble"
        assert engines.resolve_name("auto", protocol, num_trials=1) \
            == "count"

    def test_registry_returns_numpy_twin(self, jit_off):
        protocol = AVCProtocol(m=9, d=1)
        assert type(engines.create(protocol, "count-jit")) \
            is CountEngine
        assert type(engines.create(protocol, "count-ensemble-jit")) \
            is CountEnsembleEngine
        assert type(engines.create(protocol, "batch-jit")) \
            is BatchEngine

    def test_explicit_jit_request_emits_fallback_event(self, jit_off):
        sink = InMemorySink()
        tuples = seed7_tuples("count-ensemble-jit",
                              telemetry=Telemetry([sink]))
        # The request is honored exactly (numpy twin, same stream)...
        assert tuples == SEED7_BASELINE
        # ...and the downgrade is recorded, never silent.
        events = sink.events("engine.fallback")
        assert len(events) == 1
        labels = events[0]["labels"]
        assert labels["requested"] == "count-ensemble-jit"
        assert "REPRO_JIT" in labels["reason"]

    def test_unusable_backends_report_why(self, monkeypatch):
        # Both backends failing to load (import failure, no compiler)
        # is the same contract as REPRO_JIT=off, with the per-backend
        # errors surfaced in the reason.
        monkeypatch.setattr(
            kernels, "_try_load",
            lambda backend: (None, f"{backend}: boom"))
        kernels.reset_backend_cache()
        try:
            assert kernels.default_backend() is None
            assert "numba: boom" in kernels.fallback_reason()
            assert kernels.available() == {"numba": False,
                                           "cext": False}
            assert kernels.jit_engine_name("count-ensemble") \
                == "count-ensemble"
        finally:
            monkeypatch.undo()
            kernels.reset_backend_cache()

    def test_auto_downgrade_is_silent(self, jit_off):
        # "auto" never promised a JIT engine, so resolving to the
        # numpy implementation emits no fallback event.
        sink = InMemorySink()
        half = COUNT_ENSEMBLE_MIN_N // 2
        spec = RunSpec(AVCProtocol(m=9, d=1), count_a=half + 51,
                       count_b=half - 50, num_trials=2, seed=0,
                       max_steps=5_000, engine="auto",
                       telemetry=Telemetry([sink]))
        run_trials(spec)
        assert sink.events("engine.fallback") == []


class TestPackTransitionTable:
    def test_null_protocol_packs_identity(self):
        tx = np.array([0, 0, 1, 1], dtype=np.int64)
        ty = np.array([0, 1, 0, 1], dtype=np.int64)
        cls = np.array([1, 2], dtype=np.int64)
        packed = kernels.pack_transition_table(tx, ty, cls)
        assert packed.dtype == np.int64 and packed.shape == (4,)
        assert list(packed & 0xFFFF) == [0, 0, 1, 1]
        assert list((packed >> 16) & 0xFFFF) == [0, 1, 0, 1]
        # Identity transitions: never productive, all deltas biased 2.
        assert not np.any((packed >> 32) & 1)
        for bit in (33, 36, 39):
            assert list((packed >> bit) & 0x7) == [2, 2, 2, 2]

    def test_productive_entry_and_class_deltas(self):
        # Pair (0, 0) -> (1, 0): productive, moves one agent from
        # class 1 to class 2.
        tx = np.array([1, 0, 1, 1], dtype=np.int64)
        ty = np.array([0, 1, 0, 1], dtype=np.int64)
        cls = np.array([1, 2], dtype=np.int64)
        entry = int(kernels.pack_transition_table(tx, ty, cls)[0])
        assert (entry >> 32) & 1
        assert (entry >> 33) & 0x7 == 2      # class 0: unchanged
        assert (entry >> 36) & 0x7 == 2 - 1  # class 1: -1
        assert (entry >> 39) & 0x7 == 2 + 1  # class 2: +1

    def test_matches_protocol_tables(self):
        protocol = AVCProtocol(m=9, d=1)
        tx, ty, _, _ = flat_transition_tables(protocol)
        cls, _ = class_tables(protocol)
        packed = kernels.pack_transition_table(tx, ty, cls)
        s = protocol.num_states
        assert np.array_equal(packed & 0xFFFF, tx)
        assert np.array_equal((packed >> 16) & 0xFFFF, ty)
        i = np.repeat(np.arange(s), s)
        j = np.tile(np.arange(s), s)
        assert np.array_equal(((packed >> 32) & 1).astype(bool),
                              (tx != i) | (ty != j))


@needs_backend
class TestBitIdentity:
    """Every JIT engine must return byte-identical results to its
    numpy twin — the kernels consume pre-drawn numpy streams only."""

    def test_count_ensemble_seed7_baseline(self):
        assert seed7_tuples("count-ensemble-jit") == SEED7_BASELINE
        assert seed7_tuples("count-ensemble-jit") \
            == seed7_tuples("count-ensemble")

    def test_count_engine_identity(self):
        assert result_tuples("count-jit") == result_tuples("count")

    def test_batch_engine_identity(self):
        assert result_tuples("batch-jit") == result_tuples("batch")

    def test_contract_guard_inherits_numpy_round(self, monkeypatch):
        # Past the kernel contracts the ensemble engine must hand the
        # round back to the inherited numpy loop — same stream, same
        # results, no error.
        from repro.sim.kernels import jit_engines
        with_kernel = seed7_tuples("count-ensemble-jit")
        monkeypatch.setattr(jit_engines, "MAX_KERNEL_TRIALS", 2)
        assert seed7_tuples("count-ensemble-jit") == with_kernel

    def test_faulted_path_identity(self):
        # Faults route through the inherited numpy fault loop; the
        # JIT name must change nothing.
        faults = FaultSpec(flip_prob=0.02, horizon=400)
        assert result_tuples("count-ensemble-jit", faults=faults,
                             num_trials=8) \
            == result_tuples("count-ensemble", faults=faults,
                             num_trials=8)
        assert result_tuples("count-jit", faults=faults) \
            == result_tuples("count", faults=faults)

    def test_scheduler_faults_rejected_like_the_twin(self):
        # Capability errors are inherited code: an adversarial
        # scheduler is rejected with the same error as the twin.
        faults = FaultSpec(scheduler="stubborn")
        for name in ("count-jit", "count-ensemble-jit"):
            with pytest.raises(Exception) as jit_err:
                result_tuples(name, faults=faults, num_trials=2)
            with pytest.raises(Exception) as numpy_err:
                result_tuples(name.removesuffix("-jit"), faults=faults,
                              num_trials=2)
            assert type(jit_err.value) is type(numpy_err.value)
            # Identical wording, each naming the engine it rejects.
            assert str(jit_err.value).replace(name,
                                              name.removesuffix("-jit")) \
                == str(numpy_err.value)
