"""Single-step distributional validation of the engines.

The strongest kind of engine test: from a fixed configuration, the
probability of each possible successor configuration after exactly one
interaction is known in closed form (``c_i (c_j - [i=j]) / (n(n-1))``
per ordered state pair).  We run one step many times and compare the
empirical successor distribution — this pins the sampling-without-
replacement logic of the count engine and the weight computation of
the null-skipping engine far more sharply than end-to-end timing
comparisons.
"""

import numpy as np
import pytest

from repro import ThreeStateProtocol
from repro.analysis.markov import ConfigurationChain
from repro.rng import spawn_many
from repro.sim import (
    AgentEngine,
    CountEngine,
    EnsembleEngine,
    NullSkippingEngine,
)


PROTOCOL = ThreeStateProtocol()
START = {"A": 3, "B": 2, "_": 1}


def exact_one_step_distribution():
    """Successor distribution from START, via the markov machinery."""
    chain = ConfigurationChain(PROTOCOL, START)
    return chain._neighbors(chain.initial)


def empirical_one_step_distribution(engine, trials, seed):
    outcomes = {}
    for child in spawn_many(seed, trials):
        result = engine.run(START, rng=child, max_steps=1)
        key = tuple(PROTOCOL.counts_to_vector(result.final_counts))
        outcomes[key] = outcomes.get(key, 0) + 1
    return {key: count / trials for key, count in outcomes.items()}


@pytest.mark.parametrize("engine_class",
                         [AgentEngine, CountEngine, EnsembleEngine],
                         ids=lambda c: c.name)
def test_one_step_distribution_matches_exact(engine_class):
    exact = exact_one_step_distribution()
    empirical = empirical_one_step_distribution(engine_class(PROTOCOL),
                                                trials=4000, seed=77)
    for config, probability in exact.items():
        observed = empirical.get(config, 0.0)
        assert observed == pytest.approx(probability, abs=0.035), (
            f"config {config}: exact {probability:.3f}, "
            f"observed {observed:.3f}")
    # No successor outside the exact support.
    assert set(empirical) <= set(exact)


def test_ensemble_vectorized_one_step_distribution():
    """The vectorized path (each trial a matrix row) must sample the
    same one-step successor distribution as the scalar engines."""
    exact = exact_one_step_distribution()
    trials = 4000
    results = EnsembleEngine(PROTOCOL).run_ensemble(
        START, num_trials=trials, rng=np.random.default_rng(55),
        max_steps=1)
    outcomes = {}
    for result in results:
        key = tuple(PROTOCOL.counts_to_vector(result.final_counts))
        outcomes[key] = outcomes.get(key, 0) + 1
    empirical = {key: count / trials for key, count in outcomes.items()}
    for config, probability in exact.items():
        observed = empirical.get(config, 0.0)
        assert observed == pytest.approx(probability, abs=0.035), (
            f"config {config}: exact {probability:.3f}, "
            f"observed {observed:.3f}")
    assert set(empirical) <= set(exact)


def test_null_skipping_one_productive_step_distribution():
    """Conditioned on being productive, the null-skipping engine's
    first event must follow the exact conditional distribution."""
    exact = exact_one_step_distribution()
    start_key = tuple(PROTOCOL.counts_to_vector(START))
    productive = {config: probability
                  for config, probability in exact.items()
                  if config != start_key}
    total = sum(productive.values())
    conditional = {config: probability / total
                   for config, probability in productive.items()}

    engine = NullSkippingEngine(PROTOCOL)
    outcomes = {}
    trials = 4000
    # Sample the first productive event of each run via an observer.
    for child in spawn_many(99, trials):
        first_event = []

        def observer(i, j, new_i, new_j, _sink=first_event):
            if not _sink:
                _sink.append((i, j, new_i, new_j))

        engine.run(START, rng=child, max_steps=200_000,
                   event_observer=observer)
        i, j, new_i, new_j = first_event[0]
        vector = list(PROTOCOL.counts_to_vector(START))
        vector[i] -= 1
        vector[j] -= 1
        vector[new_i] += 1
        vector[new_j] += 1
        key = tuple(vector)
        outcomes[key] = outcomes.get(key, 0) + 1

    for config, probability in conditional.items():
        observed = outcomes.get(config, 0) / trials
        assert observed == pytest.approx(probability, abs=0.04), (
            f"config {config}: exact {probability:.3f}, "
            f"observed {observed:.3f}")


def test_null_skip_length_is_geometric():
    """The number of steps charged for the first productive event must
    average 1/p with p the productive-pair probability."""
    exact = exact_one_step_distribution()
    start_key = tuple(PROTOCOL.counts_to_vector(START))
    productive_probability = 1.0 - exact.get(start_key, 0.0)

    engine = NullSkippingEngine(PROTOCOL)
    steps = []
    for child in spawn_many(101, 3000):
        first_steps = []

        class Recorder:
            def maybe_record(self, step, counts):
                if step and not first_steps:
                    first_steps.append(step)

            def force_record(self, step, counts):
                pass

        engine.run(START, rng=child, max_steps=200_000,
                   recorder=Recorder())
        steps.append(first_steps[0])
    assert np.mean(steps) == pytest.approx(1.0 / productive_probability,
                                           rel=0.1)
