"""Tests for the on_timeout engine option."""

import pytest

from repro import (
    ConvergenceTimeout,
    FourStateProtocol,
    InvalidParameterError,
)
from repro.sim import AgentEngine, CountEngine, NullSkippingEngine


@pytest.mark.parametrize("engine_class",
                         [AgentEngine, CountEngine, NullSkippingEngine])
def test_raise_mode_raises_with_partial_result(engine_class):
    protocol = FourStateProtocol()
    engine = engine_class(protocol)
    with pytest.raises(ConvergenceTimeout) as exc_info:
        engine.run(protocol.initial_counts(500, 499), rng=0,
                   max_steps=50, on_timeout="raise")
    partial = exc_info.value.result
    assert partial is not None
    assert not partial.settled
    assert partial.steps == 50
    assert sum(partial.final_counts.values()) == 999


def test_return_mode_is_default():
    protocol = FourStateProtocol()
    result = CountEngine(protocol).run(protocol.initial_counts(500, 499),
                                       rng=0, max_steps=50)
    assert not result.settled


def test_settled_runs_never_raise():
    protocol = FourStateProtocol()
    result = NullSkippingEngine(protocol).run(
        protocol.initial_counts(30, 10), rng=0, on_timeout="raise")
    assert result.settled


def test_frozen_runs_do_not_raise():
    """A four-state tie freezes (provably never settles): that is an
    answer, not a timeout."""
    protocol = FourStateProtocol()
    result = NullSkippingEngine(protocol).run(
        protocol.initial_counts(5, 5), rng=0, on_timeout="raise")
    assert result.frozen and not result.settled


def test_bad_mode_rejected():
    protocol = FourStateProtocol()
    with pytest.raises(InvalidParameterError):
        CountEngine(protocol).run(protocol.initial_counts(3, 2),
                                  rng=0, on_timeout="explode")
