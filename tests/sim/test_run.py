"""Tests for the high-level run API (RunSpec front door)."""

import networkx as nx
import pytest

from repro import (
    AVCProtocol,
    FourStateProtocol,
    InvalidParameterError,
    RunSpec,
    ThreeStateProtocol,
    run,
    run_majority,
    run_trials,
    simulate,
)
from repro.sim import TrialStats
from repro.sim.agent_engine import AgentEngine
from repro.sim.count_engine import CountEngine
from repro.sim.gillespie import NullSkippingEngine
from repro.sim.run import make_engine


class TestMakeEngine:
    def test_auto_small_state_space(self):
        engine = make_engine(FourStateProtocol(), "auto")
        assert isinstance(engine, NullSkippingEngine)

    def test_auto_large_state_space(self):
        engine = make_engine(AVCProtocol.with_num_states(66), "auto")
        assert isinstance(engine, CountEngine)

    def test_auto_with_graph(self):
        engine = make_engine(ThreeStateProtocol(), "auto",
                             graph=nx.path_graph(5))
        assert isinstance(engine, AgentEngine)

    def test_graph_incompatible_with_count_engine(self):
        with pytest.raises(InvalidParameterError):
            make_engine(ThreeStateProtocol(), "count",
                        graph=nx.path_graph(5))

    def test_engine_instance_passthrough(self):
        engine = CountEngine(ThreeStateProtocol())
        assert make_engine(ThreeStateProtocol(), engine) is engine

    def test_unknown_engine_name(self):
        with pytest.raises(InvalidParameterError):
            make_engine(ThreeStateProtocol(), "warp-drive")

    @pytest.mark.parametrize("name", ["agent", "count", "null-skipping",
                                      "continuous-time", "batch"])
    def test_every_name_constructs(self, name):
        assert make_engine(FourStateProtocol(), name) is not None


class TestRunSpecValidation:
    def test_mutually_exclusive_input_forms(self):
        with pytest.raises(InvalidParameterError):
            RunSpec(FourStateProtocol(), n=10, epsilon=0.2,
                    count_a=5, count_b=5)
        with pytest.raises(InvalidParameterError):
            RunSpec(FourStateProtocol())

    def test_partial_margin_form_rejected(self):
        with pytest.raises(InvalidParameterError):
            RunSpec(FourStateProtocol(), n=10)

    def test_partial_counts_form_rejected(self):
        with pytest.raises(InvalidParameterError):
            RunSpec(FourStateProtocol(), count_a=10)

    def test_non_majority_protocol_rejected(self):
        with pytest.raises(InvalidParameterError):
            RunSpec(object(), n=10, epsilon=0.2)

    def test_zero_trials_rejected(self):
        with pytest.raises(InvalidParameterError):
            RunSpec(FourStateProtocol(), num_trials=0, n=11,
                    epsilon=1 / 11)

    def test_expected_requires_explicit_initial(self):
        with pytest.raises(InvalidParameterError):
            RunSpec(FourStateProtocol(), n=11, epsilon=1 / 11, expected=1)

    def test_bad_timeout_policy_rejected(self):
        with pytest.raises(InvalidParameterError):
            RunSpec(FourStateProtocol(), n=11, epsilon=1 / 11,
                    on_timeout="explode")

    def test_replace_revalidates(self):
        spec = RunSpec(FourStateProtocol(), n=11, epsilon=1 / 11)
        with pytest.raises(InvalidParameterError):
            spec.replace(num_trials=0)

    def test_replace_builds_new_spec(self):
        spec = RunSpec(FourStateProtocol(), n=11, epsilon=1 / 11, seed=0)
        other = spec.replace(seed=1)
        assert other.seed == 1 and spec.seed == 0
        assert other.n == spec.n

    def test_resolved_input_is_cached(self):
        spec = RunSpec(FourStateProtocol(), n=51, epsilon=3 / 51)
        initial, expected = spec.resolve_input()
        again, _ = spec.resolve_input()
        assert again is initial
        assert sum(initial.values()) == 51
        assert expected == 1


class TestRunMajority:
    def test_margin_form(self):
        result = run_majority(RunSpec(FourStateProtocol(), n=51,
                                      epsilon=3 / 51, seed=0))
        assert result.settled and result.correct

    def test_counts_form(self):
        result = run_majority(RunSpec(FourStateProtocol(), count_a=10,
                                      count_b=20, seed=0))
        assert result.expected == 0
        assert result.settled and result.decision == 0

    def test_tie_has_no_expected_output(self):
        result = run_majority(RunSpec(ThreeStateProtocol(), count_a=10,
                                      count_b=10, seed=0))
        assert result.expected is None
        assert result.correct is None

    def test_majority_b(self):
        result = run_majority(RunSpec(FourStateProtocol(), n=51,
                                      epsilon=3 / 51, majority="B",
                                      seed=0))
        assert result.expected == 0
        assert result.decision == 0

    def test_spec_with_extra_kwargs_rejected(self):
        spec = RunSpec(FourStateProtocol(), n=11, epsilon=1 / 11)
        with pytest.raises(InvalidParameterError):
            run_majority(spec, seed=1)

    def test_multi_trial_spec_rejected(self):
        spec = RunSpec(FourStateProtocol(), n=11, epsilon=1 / 11,
                       num_trials=3)
        with pytest.raises(InvalidParameterError):
            run_majority(spec)


class TestRunGeneric:
    def test_run_with_explicit_counts(self):
        protocol = ThreeStateProtocol()
        result = run(RunSpec(protocol, initial={"A": 5, "B": 2, "_": 3},
                             seed=1))
        assert result.settled
        assert result.n == 10

    def test_run_on_graph(self):
        protocol = ThreeStateProtocol()
        result = run(RunSpec(protocol, initial={"A": 8, "B": 2},
                             graph=nx.cycle_graph(10), seed=1))
        assert result.settled


class TestRunTrials:
    def test_returns_result_list(self):
        results = run_trials(RunSpec(FourStateProtocol(), num_trials=5,
                                     seed=0, n=21, epsilon=1 / 21))
        assert len(results) == 5
        assert all(r.settled and r.correct for r in results)

    def test_stats_aggregation(self):
        stats = run_trials(RunSpec(FourStateProtocol(), num_trials=5,
                                   seed=0, n=21, epsilon=1 / 21),
                           stats=True)
        assert isinstance(stats, TrialStats)
        assert stats.num_trials == 5
        assert stats.num_settled == 5
        assert stats.error_fraction == 0.0
        assert stats.mean_parallel_time > 0

    def test_trials_are_independent_but_reproducible(self):
        spec = RunSpec(ThreeStateProtocol(), num_trials=4, seed=3,
                       n=31, epsilon=1 / 31)
        first = run_trials(spec)
        second = run_trials(spec)
        assert [r.steps for r in first] == [r.steps for r in second]
        # Different trials should not all behave identically.
        assert len({r.steps for r in first}) > 1

    def test_simulate_is_the_same_door(self):
        spec = RunSpec(ThreeStateProtocol(), num_trials=4, seed=3,
                       n=31, epsilon=1 / 31)
        assert [r.steps for r in simulate(spec)] \
            == [r.steps for r in run_trials(spec)]
