"""Tests for the high-level run API."""

import networkx as nx
import pytest

from repro import (
    AVCProtocol,
    FourStateProtocol,
    InvalidParameterError,
    ThreeStateProtocol,
    run,
    run_majority,
    run_trials,
)
from repro.sim import TrialStats
from repro.sim.agent_engine import AgentEngine
from repro.sim.count_engine import CountEngine
from repro.sim.gillespie import NullSkippingEngine
from repro.sim.run import make_engine


class TestMakeEngine:
    def test_auto_small_state_space(self):
        engine = make_engine(FourStateProtocol(), "auto")
        assert isinstance(engine, NullSkippingEngine)

    def test_auto_large_state_space(self):
        engine = make_engine(AVCProtocol.with_num_states(66), "auto")
        assert isinstance(engine, CountEngine)

    def test_auto_with_graph(self):
        engine = make_engine(ThreeStateProtocol(), "auto",
                             graph=nx.path_graph(5))
        assert isinstance(engine, AgentEngine)

    def test_graph_incompatible_with_count_engine(self):
        with pytest.raises(InvalidParameterError):
            make_engine(ThreeStateProtocol(), "count",
                        graph=nx.path_graph(5))

    def test_engine_instance_passthrough(self):
        engine = CountEngine(ThreeStateProtocol())
        assert make_engine(ThreeStateProtocol(), engine) is engine

    def test_unknown_engine_name(self):
        with pytest.raises(InvalidParameterError):
            make_engine(ThreeStateProtocol(), "warp-drive")

    @pytest.mark.parametrize("name", ["agent", "count", "null-skipping",
                                      "continuous-time", "batch"])
    def test_every_name_constructs(self, name):
        assert make_engine(FourStateProtocol(), name) is not None


class TestRunMajority:
    def test_margin_form(self):
        result = run_majority(FourStateProtocol(), n=51, epsilon=3 / 51,
                              seed=0)
        assert result.settled and result.correct

    def test_counts_form(self):
        result = run_majority(FourStateProtocol(), count_a=10, count_b=20,
                              seed=0)
        assert result.expected == 0
        assert result.settled and result.decision == 0

    def test_tie_has_no_expected_output(self):
        result = run_majority(ThreeStateProtocol(), count_a=10, count_b=10,
                              seed=0)
        assert result.expected is None
        assert result.correct is None

    def test_mutually_exclusive_input_forms(self):
        with pytest.raises(InvalidParameterError):
            run_majority(FourStateProtocol(), n=10, epsilon=0.2,
                         count_a=5, count_b=5)
        with pytest.raises(InvalidParameterError):
            run_majority(FourStateProtocol())

    def test_partial_margin_form_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_majority(FourStateProtocol(), n=10)

    def test_majority_b(self):
        result = run_majority(FourStateProtocol(), n=51, epsilon=3 / 51,
                              majority="B", seed=0)
        assert result.expected == 0
        assert result.decision == 0

    def test_non_majority_protocol_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_majority(object(), n=10, epsilon=0.2)

    def test_seed_and_rng_exclusive(self, rng):
        with pytest.raises(InvalidParameterError):
            run_majority(FourStateProtocol(), n=11, epsilon=1 / 11,
                         seed=1, rng=rng)


class TestRunGeneric:
    def test_run_with_explicit_counts(self):
        protocol = ThreeStateProtocol()
        result = run(protocol, {"A": 5, "B": 2, "_": 3}, seed=1)
        assert result.settled
        assert result.n == 10

    def test_run_on_graph(self):
        protocol = ThreeStateProtocol()
        result = run(protocol, {"A": 8, "B": 2}, graph=nx.cycle_graph(10),
                     seed=1)
        assert result.settled


class TestRunTrials:
    def test_returns_result_list(self):
        results = run_trials(FourStateProtocol(), num_trials=5, seed=0,
                             n=21, epsilon=1 / 21)
        assert len(results) == 5
        assert all(r.settled and r.correct for r in results)

    def test_stats_aggregation(self):
        stats = run_trials(FourStateProtocol(), num_trials=5, seed=0,
                           stats=True, n=21, epsilon=1 / 21)
        assert isinstance(stats, TrialStats)
        assert stats.num_trials == 5
        assert stats.num_settled == 5
        assert stats.error_fraction == 0.0
        assert stats.mean_parallel_time > 0

    def test_trials_are_independent_but_reproducible(self):
        first = run_trials(ThreeStateProtocol(), num_trials=4, seed=3,
                           n=31, epsilon=1 / 31)
        second = run_trials(ThreeStateProtocol(), num_trials=4, seed=3,
                           n=31, epsilon=1 / 31)
        assert [r.steps for r in first] == [r.steps for r in second]
        # Different trials should not all behave identically.
        assert len({r.steps for r in first}) > 1

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            run_trials(FourStateProtocol(), num_trials=0, n=11,
                       epsilon=1 / 11)
