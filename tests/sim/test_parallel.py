"""Tests for the parallel trial runner."""

import pytest

from repro import (
    FourStateProtocol,
    InvalidParameterError,
    RunSpec,
    ThreeStateProtocol,
)
from repro.sim import TrialStats
from repro.sim.parallel import run_trials_parallel
from repro.sim.run import run_trials


class TestRunTrialsParallel:
    def test_matches_sequential_results_exactly(self):
        spec = RunSpec(ThreeStateProtocol(), num_trials=6, seed=13,
                       n=51, epsilon=5 / 51)
        sequential = run_trials(spec)
        parallel = run_trials_parallel(spec, processes=2)
        assert [r.steps for r in parallel] \
            == [r.steps for r in sequential]
        assert [r.decision for r in parallel] \
            == [r.decision for r in sequential]

    def test_stats_mode(self):
        stats = run_trials_parallel(
            RunSpec(FourStateProtocol(), num_trials=4, seed=1,
                    n=21, epsilon=1 / 21),
            processes=2, stats=True)
        assert isinstance(stats, TrialStats)
        assert stats.num_settled == 4
        assert stats.error_fraction == 0.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            run_trials_parallel(RunSpec(FourStateProtocol(), num_trials=2,
                                        n=11, epsilon=1 / 11),
                                processes=0)

    def test_seed_7_regression(self):
        """run_trials_parallel(seed=7) must equal run_trials(seed=7)."""
        spec = RunSpec(FourStateProtocol(), num_trials=5, seed=7,
                       n=31, epsilon=3 / 31)
        sequential = run_trials(spec)
        parallel = run_trials_parallel(spec, processes=2)
        assert [(r.steps, r.decision) for r in parallel] \
            == [(r.steps, r.decision) for r in sequential]

    def test_ensemble_chunks_match_sequential_ensemble(self):
        """The ensemble path partitions trials into fixed-size chunks
        seeded per chunk, so parallel and sequential ensemble runs are
        bit-identical — including across a chunk boundary."""
        from repro import AVCProtocol

        from repro.sim.run import ENSEMBLE_CHUNK_TRIALS

        protocol = AVCProtocol.with_num_states(18)
        trials = ENSEMBLE_CHUNK_TRIALS + 22  # force >1 chunk
        spec = RunSpec(protocol, num_trials=trials, seed=7,
                       n=41, epsilon=5 / 41, engine="ensemble")
        sequential = run_trials(spec)
        parallel = run_trials_parallel(spec, processes=2)
        assert [(r.steps, r.decision) for r in parallel] \
            == [(r.steps, r.decision) for r in sequential]

    def test_count_ensemble_chunks_match_sequential(self):
        """The count-ensemble path ships sub-ensembles through the same
        chunked fan-out, so parallel equals sequential bit for bit."""
        from repro import AVCProtocol

        from repro.sim.run import ENSEMBLE_CHUNK_TRIALS

        protocol = AVCProtocol.with_num_states(18)
        trials = ENSEMBLE_CHUNK_TRIALS + 22  # force >1 chunk
        spec = RunSpec(protocol, num_trials=trials, seed=7,
                       n=41, epsilon=5 / 41, engine="count-ensemble")
        sequential = run_trials(spec)
        parallel = run_trials_parallel(spec, processes=2)
        assert [(r.steps, r.decision, r.final_counts) for r in parallel] \
            == [(r.steps, r.decision, r.final_counts) for r in sequential]

    def test_avc_protocol_is_picklable_across_processes(self):
        from repro import AVCProtocol

        protocol = AVCProtocol(m=5, d=2)
        results = run_trials_parallel(
            RunSpec(protocol, num_trials=3, seed=2, n=41,
                    epsilon=5 / 41),
            processes=2)
        assert all(r.settled and r.correct for r in results)
