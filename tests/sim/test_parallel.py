"""Tests for the parallel trial runner."""

import pytest

from repro import FourStateProtocol, InvalidParameterError, ThreeStateProtocol
from repro.sim import TrialStats
from repro.sim.parallel import run_trials_parallel
from repro.sim.run import run_trials


class TestRunTrialsParallel:
    def test_matches_sequential_results_exactly(self):
        protocol = ThreeStateProtocol()
        kwargs = dict(n=51, epsilon=5 / 51)
        sequential = run_trials(protocol, num_trials=6, seed=13, **kwargs)
        parallel = run_trials_parallel(protocol, num_trials=6, seed=13,
                                       processes=2, **kwargs)
        assert [r.steps for r in parallel] \
            == [r.steps for r in sequential]
        assert [r.decision for r in parallel] \
            == [r.decision for r in sequential]

    def test_stats_mode(self):
        stats = run_trials_parallel(FourStateProtocol(), num_trials=4,
                                    seed=1, processes=2, stats=True,
                                    n=21, epsilon=1 / 21)
        assert isinstance(stats, TrialStats)
        assert stats.num_settled == 4
        assert stats.error_fraction == 0.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            run_trials_parallel(FourStateProtocol(), num_trials=0,
                                n=11, epsilon=1 / 11)
        with pytest.raises(InvalidParameterError):
            run_trials_parallel(FourStateProtocol(), num_trials=2,
                                processes=0, n=11, epsilon=1 / 11)

    def test_seed_7_regression(self):
        """run_trials_parallel(seed=7) must equal run_trials(seed=7)."""
        protocol = FourStateProtocol()
        kwargs = dict(n=31, epsilon=3 / 31)
        sequential = run_trials(protocol, num_trials=5, seed=7, **kwargs)
        parallel = run_trials_parallel(protocol, num_trials=5, seed=7,
                                       processes=2, **kwargs)
        assert [(r.steps, r.decision) for r in parallel] \
            == [(r.steps, r.decision) for r in sequential]

    def test_ensemble_chunks_match_sequential_ensemble(self):
        """The ensemble path partitions trials into fixed-size chunks
        seeded per chunk, so parallel and sequential ensemble runs are
        bit-identical — including across a chunk boundary."""
        from repro import AVCProtocol

        from repro.sim.run import ENSEMBLE_CHUNK_TRIALS

        protocol = AVCProtocol.with_num_states(18)
        trials = ENSEMBLE_CHUNK_TRIALS + 22  # force >1 chunk
        kwargs = dict(n=41, epsilon=5 / 41, engine="ensemble")
        sequential = run_trials(protocol, num_trials=trials, seed=7,
                                **kwargs)
        parallel = run_trials_parallel(protocol, num_trials=trials, seed=7,
                                       processes=2, **kwargs)
        assert [(r.steps, r.decision) for r in parallel] \
            == [(r.steps, r.decision) for r in sequential]

    def test_avc_protocol_is_picklable_across_processes(self):
        from repro import AVCProtocol

        protocol = AVCProtocol(m=5, d=2)
        results = run_trials_parallel(protocol, num_trials=3, seed=2,
                                      processes=2, n=41, epsilon=5 / 41)
        assert all(r.settled and r.correct for r in results)
