"""Pinned fingerprints and RNG streams across the protocol refactor.

The lazy structured-state protocol layer must not move a single bit:

* run-store **fingerprints** of pre-existing protocols are pinned as
  hex digests — a changed wire form or key layout would silently
  orphan every cached sweep result;
* seed-7 **trial trajectories** (steps, productive steps, decision)
  are pinned per engine — the state enumeration order defines the
  dense indices that every engine's RNG stream consumes, so any
  reordering shows up here immediately;
* the JIT engines must stay bit-identical to their numpy twins when
  the transition table is materialized lazily from a structured
  protocol.

If one of these pins breaks, the refactor changed observable
behavior: fix the code, do not re-pin.
"""

import pytest

from repro import (
    AVCProtocol,
    FourStateProtocol,
    IntervalConsensusProtocol,
    PhaseDoublingProtocol,
    LogStateMajorityProtocol,
    RunSpec,
    ThreeStateProtocol,
    VoterProtocol,
    simulate,
)
from repro.runstore import fingerprint
from repro.sim import kernels

needs_backend = pytest.mark.skipif(
    kernels.default_backend() is None,
    reason="no usable kernel backend on this host")


PINNED_FINGERPRINTS = [
    (lambda: AVCProtocol(m=63, d=1), dict(n=1001, epsilon=1 / 1001,
                                          num_trials=5, seed=7),
     "8eb4e337849a849cd81d9dbcd02667462723cc10603ecb406df0fe4e4266bdcc"),
    (ThreeStateProtocol, dict(n=101, epsilon=0.2, num_trials=5, seed=7),
     "22cb965e322369f1c055f3fd42f4af425e362633ca10d1ae8d4d0136fc0d9b7c"),
    (FourStateProtocol, dict(n=101, epsilon=0.2, num_trials=5, seed=7),
     "a2960775a3c79f5cca3bb72411a80bead7ca336f3cab61de0fdd8370c9274a95"),
    (VoterProtocol, dict(n=100, epsilon=0.2, num_trials=3, seed=7),
     "22264c9b1a9087abe1bf1dc145960341cce0a11287f8ef796100f1ebde7eaa68"),
    (IntervalConsensusProtocol, dict(n=101, epsilon=0.2, num_trials=3,
                                     seed=7),
     "d655c2dc0d8dd19e272dde7a5a3f135bb1b99c3b9635e0de69bbb16fb5e4fa28"),
]


@pytest.mark.parametrize(
    "factory,spec_kwargs,expected", PINNED_FINGERPRINTS,
    ids=["avc", "three-state", "four-state", "voter",
         "interval-consensus"])
def test_fingerprints_are_byte_identical(factory, spec_kwargs,
                                         expected):
    spec = RunSpec(factory(), **spec_kwargs)
    assert fingerprint(spec.key()) == expected


PINNED_TRAJECTORIES = [
    ("count", lambda: AVCProtocol(m=15, d=1),
     dict(n=200, epsilon=0.1, num_trials=3, seed=7),
     [(1810, 858, 1), (1767, 754, 1), (1839, 826, 1)]),
    ("count", ThreeStateProtocol,
     dict(n=100, epsilon=0.2, num_trials=3, seed=7),
     [(1464, 602, 0), (812, 290, 1), (556, 202, 1)]),
    ("count", FourStateProtocol,
     dict(n=100, epsilon=0.2, num_trials=3, seed=7),
     [(1560, 154, 1), (821, 118, 1), (1839, 164, 1)]),
    ("ensemble", lambda: AVCProtocol(m=15, d=1),
     dict(n=200, epsilon=0.1, num_trials=4, seed=7),
     [(2456, 852, 1), (1655, 810, 1), (1637, 767, 1),
      (2495, 899, 1)]),
    ("agent", lambda: AVCProtocol(m=15, d=1),
     dict(n=100, epsilon=0.2, num_trials=2, seed=7),
     [(764, 389, 1), (711, 359, 1)]),
]


@pytest.mark.parametrize(
    "engine,factory,spec_kwargs,expected", PINNED_TRAJECTORIES,
    ids=["count-avc", "count-three-state", "count-four-state",
         "ensemble-avc", "agent-avc"])
def test_seed7_streams_are_pinned(engine, factory, spec_kwargs,
                                  expected):
    results = simulate(RunSpec(factory(), engine=engine,
                               **spec_kwargs))
    observed = [(r.steps, r.productive_steps, r.decision)
                for r in results]
    assert observed == expected


@needs_backend
@pytest.mark.parametrize("factory", [
    lambda: PhaseDoublingProtocol(levels=5, theta=2),
    lambda: LogStateMajorityProtocol(levels=5, phase_len=2),
    lambda: AVCProtocol(m=15, d=1),
], ids=["phase-doubling", "log-state", "avc"])
def test_jit_engine_identical_on_lazy_tables(factory):
    """The compiled kernels consume the same lazily-materialized
    transition table as the numpy engines, so results match bit for
    bit — structured protocols included."""
    kwargs = dict(n=100, epsilon=0.2, num_trials=3, seed=7)
    numpy_results = simulate(RunSpec(factory(), engine="count",
                                     **kwargs))
    jit_results = simulate(RunSpec(factory(), engine="count-jit",
                                   **kwargs))
    assert ([(r.steps, r.productive_steps, r.decision)
             for r in jit_results]
            == [(r.steps, r.productive_steps, r.decision)
                for r in numpy_results])
