"""Tests for engine guard rails and budget resolution."""

import pytest

from repro import FourStateProtocol, InvalidParameterError
from repro.errors import SimulationError
from repro.sim.count_engine import CountEngine
from repro.sim.engine import (
    DEFAULT_MAX_PARALLEL_TIME,
    Engine,
    check_budget_sanity,
)


class TestBudgetResolution:
    def test_default_budget(self):
        assert Engine._resolve_budget(100, None, None) \
            == int(DEFAULT_MAX_PARALLEL_TIME * 100)

    def test_max_steps_passthrough(self):
        assert Engine._resolve_budget(100, 500, None) == 500

    def test_parallel_time_conversion(self):
        assert Engine._resolve_budget(100, None, 2.5) == 250

    def test_mutually_exclusive(self):
        with pytest.raises(InvalidParameterError):
            Engine._resolve_budget(100, 500, 2.5)

    @pytest.mark.parametrize("steps,parallel", [(0, None), (-5, None),
                                                (None, 0.0),
                                                (None, -1.0)])
    def test_nonpositive_budgets_rejected(self, steps, parallel):
        with pytest.raises(InvalidParameterError):
            Engine._resolve_budget(100, steps, parallel)


class TestSanityGuard:
    def test_absurd_budget_rejected(self):
        with pytest.raises(SimulationError):
            check_budget_sanity(10**16)

    def test_normal_budget_passes(self):
        check_budget_sanity(10**12)

    def test_engine_surfaces_the_guard(self):
        protocol = FourStateProtocol()
        engine = CountEngine(protocol)
        with pytest.raises(SimulationError):
            engine.run(protocol.initial_counts(3, 2), rng=0,
                       max_steps=10**16)


class TestRunValidation:
    def test_too_few_agents(self):
        protocol = FourStateProtocol()
        with pytest.raises(InvalidParameterError):
            CountEngine(protocol).run({"+1": 1}, rng=0)

    def test_repr(self):
        engine = CountEngine(FourStateProtocol())
        assert "four-state" in repr(engine)
