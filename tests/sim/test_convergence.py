"""Tests for the incremental settledness trackers."""

import pytest

from repro import AVCProtocol, FourStateProtocol, ThreeStateProtocol
from repro.protocols.table import MajorityTableProtocol
from repro.sim.convergence import (
    GenericSettleTracker,
    UnanimitySettleTracker,
    decision_of_counts,
    make_settle_tracker,
)


def as_vector(protocol, sparse):
    return [int(c) for c in protocol.counts_to_vector(sparse)]


class TestFactory:
    def test_unanimity_protocols_get_fast_tracker(self):
        protocol = ThreeStateProtocol()
        counts = as_vector(protocol, {"A": 2, "B": 1})
        assert isinstance(make_settle_tracker(protocol, counts),
                          UnanimitySettleTracker)

    def test_table_protocols_get_generic_tracker(self):
        protocol = MajorityTableProtocol(
            ("a", "b"), {}, {"a": 1, "b": 0}, input_a="a", input_b="b")
        counts = [1, 1]
        assert isinstance(make_settle_tracker(protocol, counts),
                          GenericSettleTracker)


class TestUnanimityTracker:
    def test_initially_unsettled(self):
        protocol = FourStateProtocol()
        counts = as_vector(protocol, {"+1": 2, "-1": 1})
        tracker = UnanimitySettleTracker(protocol, counts)
        assert not tracker.settled()
        assert tracker.decision() is None

    def test_detects_settlement_through_updates(self):
        protocol = FourStateProtocol()
        # +1, -1, +0, -0 indices: 0, 1, 2, 3
        counts = [1, 1, 0, 0]
        tracker = UnanimitySettleTracker(protocol, counts)
        # (+1, -1) -> (+0, -0): still mixed.
        counts[:] = [0, 0, 1, 1]
        tracker.update(0, 1, 2, 3)
        assert not tracker.settled()
        # (-0 meets +? impossible now) pretend -0 flips: (+0,-0)->(+0,+0)
        counts[:] = [0, 0, 2, 0]
        tracker.update(2, 3, 2, 2)
        assert tracker.settled()
        assert tracker.decision() == 1

    def test_undecided_states_block_settlement(self):
        protocol = ThreeStateProtocol()
        counts = as_vector(protocol, {"A": 2, "_": 1})
        tracker = UnanimitySettleTracker(protocol, counts)
        assert not tracker.settled()

    def test_reset_resynchronizes(self):
        protocol = ThreeStateProtocol()
        counts = as_vector(protocol, {"A": 1, "B": 1})
        tracker = UnanimitySettleTracker(protocol, counts)
        tracker.reset([3, 0, 0])
        assert tracker.settled()
        assert tracker.decision() == 1


class TestGenericTracker:
    def _table_protocol(self):
        return MajorityTableProtocol(
            ("a", "b", "u"),
            {("a", "b"): ("u", "u"), ("a", "u"): ("a", "a"),
             ("b", "u"): ("b", "b")},
            {"a": 1, "b": 0},
            input_a="a", input_b="b")

    def test_settles_when_closure_unanimous(self):
        protocol = self._table_protocol()
        counts = [2, 0, 0]
        tracker = GenericSettleTracker(protocol, counts)
        assert tracker.settled()
        assert tracker.decision() == 1

    def test_undecided_closure_blocks(self):
        protocol = self._table_protocol()
        counts = [1, 1, 0]
        tracker = GenericSettleTracker(protocol, counts)
        assert not tracker.settled()

    def test_update_marks_dirty_on_support_change(self):
        protocol = self._table_protocol()
        counts = [1, 1, 0]
        tracker = GenericSettleTracker(protocol, counts)
        assert not tracker.settled()
        # Interaction (a, b) -> (u, u): a and b vanish.
        counts[:] = [0, 0, 2]
        tracker.update(0, 1, 2, 2)
        assert not tracker.settled()  # u has no output
        # u's recruited: pretend final (a, a): support change again.
        counts[:] = [2, 0, 0]
        tracker.update(2, 2, 0, 0)
        assert tracker.settled()


def test_decision_of_counts():
    protocol = ThreeStateProtocol()
    assert decision_of_counts(protocol,
                              protocol.counts_to_vector({"A": 3})) == 1
    assert decision_of_counts(protocol,
                              protocol.counts_to_vector({"B": 3})) == 0
    mixed = protocol.counts_to_vector({"A": 1, "B": 1})
    assert decision_of_counts(protocol, mixed) is None
    blank = protocol.counts_to_vector({"A": 1, "_": 1})
    assert decision_of_counts(protocol, blank) is None
