"""Tests for the Fenwick tree, including a property-based check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.fenwick import FenwickTree


class TestBasics:
    def test_build_and_total(self):
        tree = FenwickTree([1, 2, 3, 4])
        assert tree.total == 10
        assert len(tree) == 4

    def test_get_individual_weights(self):
        weights = [5, 0, 3, 7, 1]
        tree = FenwickTree(weights)
        assert tree.to_list() == weights

    def test_prefix_sums(self):
        tree = FenwickTree([1, 2, 3, 4])
        assert [tree.prefix_sum(i) for i in range(4)] == [1, 3, 6, 10]

    def test_add(self):
        tree = FenwickTree([1, 2, 3])
        tree.add(1, 5)
        assert tree.total == 11
        assert tree.to_list() == [1, 7, 3]
        tree.add(1, -7)
        assert tree.to_list() == [1, 0, 3]

    def test_negative_weight_rejected_at_build(self):
        with pytest.raises(ValueError):
            FenwickTree([1, -1])

    def test_find_boundaries(self):
        tree = FenwickTree([2, 0, 3])
        assert tree.find(0) == 0
        assert tree.find(1) == 0
        assert tree.find(2) == 2
        assert tree.find(4) == 2

    def test_find_out_of_range(self):
        tree = FenwickTree([2, 3])
        with pytest.raises(ValueError):
            tree.find(5)
        with pytest.raises(ValueError):
            tree.find(-1)

    def test_find_skips_zero_slots(self):
        tree = FenwickTree([0, 0, 1, 0, 2])
        assert tree.find(0) == 2
        assert tree.find(1) == 4
        assert tree.find(2) == 4

    def test_single_slot(self):
        tree = FenwickTree([7])
        assert tree.find(3) == 0
        tree.add(0, -7)
        assert tree.total == 0


@settings(max_examples=100, deadline=None)
@given(weights=st.lists(st.integers(0, 50), min_size=1, max_size=64),
       updates=st.lists(
           st.tuples(st.integers(0, 63), st.integers(0, 20)), max_size=20))
def test_matches_naive_reference(weights, updates):
    """Property: tree behaviour equals a plain list implementation."""
    tree = FenwickTree(weights)
    reference = list(weights)
    for index, delta in updates:
        index %= len(reference)
        tree.add(index, delta)
        reference[index] += delta
    assert tree.total == sum(reference)
    assert tree.to_list() == reference
    # Every valid target maps to the slot the naive scan would find.
    for target in range(sum(reference)):
        acc = 0
        for i, w in enumerate(reference):
            acc += w
            if target < acc:
                assert tree.find(target) == i
                break


def test_sampling_distribution_is_proportional():
    """Drawing uniform targets samples slots proportionally to weight."""
    weights = [1, 0, 3, 6]
    tree = FenwickTree(weights)
    rng = np.random.default_rng(7)
    draws = rng.integers(0, tree.total, size=20_000)
    picks = np.array([tree.find(int(t)) for t in draws])
    observed = np.bincount(picks, minlength=4) / len(picks)
    expected = np.array(weights) / sum(weights)
    np.testing.assert_allclose(observed, expected, atol=0.02)
