"""Tests for the null-skipping and continuous-time engines."""

import pytest

from repro import (
    AVCProtocol,
    ContinuousTimeEngine,
    FourStateProtocol,
    NullSkippingEngine,
    ThreeStateProtocol,
    VoterProtocol,
)
from repro.errors import ProtocolError
from repro.protocols.four_state import (
    STRONG_MINUS,
    STRONG_PLUS,
    WEAK_MINUS,
    WEAK_PLUS,
)


class TestNullSkipping:
    def test_converges_correctly(self, rng):
        protocol = FourStateProtocol()
        engine = NullSkippingEngine(protocol)
        result = engine.run(protocol.initial_counts(60, 41), rng=rng,
                            expected=1)
        assert result.settled and result.decision == 1

    def test_rejects_large_state_spaces(self):
        protocol = AVCProtocol.with_num_states(514)
        with pytest.raises(ProtocolError):
            NullSkippingEngine(protocol)

    def test_productive_pairs_enumeration(self):
        engine = NullSkippingEngine(FourStateProtocol())
        pairs = engine._productive_pairs()
        # (+1,-1), (-1,+1), and the four weak-meets-opposite-strong
        # orientations are the only state-changing ordered pairs.
        assert len(pairs) == 6

    def test_frozen_tie_detected(self, rng):
        """A tie depletes all strong agents and freezes unsettled."""
        protocol = FourStateProtocol()
        engine = NullSkippingEngine(protocol)
        result = engine.run(protocol.initial_counts(5, 5), rng=rng)
        assert result.frozen
        assert not result.settled
        final = result.final_counts
        assert final.get(STRONG_PLUS, 0) == 0
        assert final.get(STRONG_MINUS, 0) == 0
        assert final.get(WEAK_PLUS, 0) == 5
        assert final.get(WEAK_MINUS, 0) == 5

    def test_steps_include_skipped_nulls(self, rng):
        protocol = FourStateProtocol()
        engine = NullSkippingEngine(protocol)
        result = engine.run(protocol.initial_counts(52, 50), rng=rng)
        assert result.productive_steps < result.steps

    def test_budget_censoring(self, rng):
        protocol = FourStateProtocol()
        engine = NullSkippingEngine(protocol)
        result = engine.run(protocol.initial_counts(500, 499), rng=rng,
                            max_steps=1000)
        assert not result.settled
        assert result.steps == 1000

    def test_voter_always_reaches_consensus(self, rng):
        protocol = VoterProtocol()
        engine = NullSkippingEngine(protocol)
        result = engine.run(protocol.initial_counts(10, 10), rng=rng)
        assert result.settled  # ties still reach (random) consensus


class TestContinuousTime:
    def test_tracks_continuous_time(self, rng):
        protocol = ThreeStateProtocol()
        engine = ContinuousTimeEngine(protocol)
        result = engine.run(protocol.initial_counts(40, 20), rng=rng)
        assert result.settled
        assert result.continuous_time is not None
        assert result.continuous_time > 0
        assert result.parallel_time == result.continuous_time

    def test_clock_close_to_discrete_parallel_time(self, rng):
        """E[continuous time] = steps / n; check within tolerance."""
        protocol = ThreeStateProtocol()
        engine = ContinuousTimeEngine(protocol)
        ratios = []
        for seed in range(20):
            result = engine.run(protocol.initial_counts(60, 30), rng=seed)
            ratios.append(result.continuous_time / (result.steps / result.n))
        mean_ratio = sum(ratios) / len(ratios)
        assert 0.8 < mean_ratio < 1.2
