"""Round-trip tests for JSON serialization."""

import itertools
import json

import pytest

from repro import (
    AVCProtocol,
    FourStateProtocol,
    InvalidParameterError,
    IntervalConsensusProtocol,
    LeveledLeaderElection,
    PairwiseLeaderElection,
    RunSpec,
    ThreeStateProtocol,
    VoterProtocol,
    run_majority,
    run_trials,
)
from repro.lowerbounds import paper_four_state_candidate
from repro.serialize import (
    protocol_from_dict,
    protocol_to_dict,
    run_result_from_dict,
    run_result_to_dict,
    trial_stats_from_dict,
    trial_stats_to_dict,
)


def assert_same_dynamics(original, rebuilt):
    assert type(rebuilt).__name__ == type(original).__name__ \
        or rebuilt.num_states == original.num_states
    for x, y in itertools.product(original.states, repeat=2):
        assert rebuilt.transition(x, y) == original.transition(x, y)


class TestProtocolRoundTrip:
    @pytest.mark.parametrize("protocol", [
        ThreeStateProtocol(),
        FourStateProtocol(),
        IntervalConsensusProtocol(),
        VoterProtocol(),
        PairwiseLeaderElection(),
        LeveledLeaderElection(levels=3),
        AVCProtocol(m=7, d=2),
    ], ids=lambda p: p.name)
    def test_round_trip(self, protocol):
        payload = protocol_to_dict(protocol)
        json.dumps(payload)  # must be JSON-safe
        rebuilt = protocol_from_dict(payload)
        assert rebuilt.num_states == protocol.num_states
        if not isinstance(protocol, AVCProtocol):
            assert_same_dynamics(protocol, rebuilt)

    def test_avc_round_trip_dynamics(self):
        protocol = AVCProtocol(m=5, d=2)
        rebuilt = protocol_from_dict(protocol_to_dict(protocol))
        assert rebuilt.m == 5 and rebuilt.d == 2
        assert_same_dynamics(protocol, rebuilt)

    def test_census_candidate_round_trip(self):
        protocol = paper_four_state_candidate().to_protocol()
        rebuilt = protocol_from_dict(protocol_to_dict(protocol))
        assert_same_dynamics(protocol, rebuilt)
        assert rebuilt.initial_state("A") == protocol.initial_state("A")

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            protocol_from_dict({"kind": "quantum"})

    def test_unserializable_protocol_rejected(self):
        class Custom(ThreeStateProtocol):
            pass

        with pytest.raises(InvalidParameterError):
            protocol_to_dict(Custom())


class TestResultRoundTrip:
    def test_run_result_with_protocol(self):
        protocol = AVCProtocol(m=5, d=1)
        result = run_majority(RunSpec(protocol, n=41, epsilon=5 / 41,
                                      seed=0))
        payload = run_result_to_dict(result)
        json.dumps(payload)
        rebuilt = run_result_from_dict(payload, protocol)
        assert rebuilt == result

    def test_run_result_without_protocol_keeps_strings(self):
        protocol = ThreeStateProtocol()
        result = run_majority(RunSpec(protocol, n=21, epsilon=1 / 21,
                                      seed=0))
        rebuilt = run_result_from_dict(run_result_to_dict(result))
        assert rebuilt.steps == result.steps
        assert all(isinstance(k, str) for k in rebuilt.final_counts)

    def test_mismatched_protocol_rejected(self):
        protocol = ThreeStateProtocol()
        result = run_majority(RunSpec(protocol, n=21, epsilon=1 / 21,
                                      seed=0))
        payload = run_result_to_dict(result)
        with pytest.raises(InvalidParameterError):
            run_result_from_dict(payload, FourStateProtocol())

    def test_trial_stats_round_trip(self):
        stats = run_trials(RunSpec(FourStateProtocol(), num_trials=4,
                                   seed=0, n=21, epsilon=1 / 21),
                           stats=True)
        payload = trial_stats_to_dict(stats)
        json.dumps(payload)
        assert trial_stats_from_dict(payload) == stats
