"""Exhaustive and property-based tests of the AVC update rules.

Checks the transition function against the paper's Figure 1 semantics:
the worked examples from the text, the sum invariant (Invariant 4.3)
over every state pair, and structural properties used by the analysis.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AVCProtocol
from repro.core.states import (
    intermediate_state,
    strong_state,
    weak_state,
)


def all_pairs(protocol):
    return itertools.product(protocol.states, repeat=2)


class TestPaperExamples:
    """Worked examples quoted in the paper's prose and Figure 2."""

    def test_m_meets_minus_m(self):
        protocol = AVCProtocol(m=5, d=2)
        new_x, new_y = protocol.transition(strong_state(5), strong_state(-5))
        assert {new_x, new_y} == {intermediate_state(1, 1),
                                  intermediate_state(-1, 1)}

    def test_five_meets_minus_one(self):
        """'input states 5 and -1 will yield output states 1 and 3'."""
        protocol = AVCProtocol(m=5, d=2)
        new_x, new_y = protocol.transition(strong_state(5),
                                           intermediate_state(-1, 1))
        assert {new_x.value, new_y.value} == {1, 3}

    def test_three_meets_minus_zero(self):
        """'input states 3 and -0 will yield output states 3 and 0'."""
        protocol = AVCProtocol(m=5, d=2)
        new_x, new_y = protocol.transition(strong_state(3), weak_state(-1))
        assert new_x == strong_state(3)
        assert new_y == weak_state(1)  # the weak agent adopts + sign

    def test_averaging_odd_average(self):
        protocol = AVCProtocol(m=9, d=1)
        new_x, new_y = protocol.transition(strong_state(9), strong_state(5))
        assert new_x.value == 7 and new_y.value == 7

    def test_averaging_even_average(self):
        protocol = AVCProtocol(m=9, d=1)
        new_x, new_y = protocol.transition(strong_state(9), strong_state(-5))
        assert {new_x.value, new_y.value} == {1, 3}


class TestRuleBranches:
    def test_neutralization_requires_level_d(self):
        protocol = AVCProtocol(m=5, d=3)
        x = intermediate_state(1, 1)
        y = intermediate_state(-1, 1)
        new_x, new_y = protocol.transition(x, y)
        # Neither at level d: both drop one level, no neutralization.
        assert new_x == intermediate_state(1, 2)
        assert new_y == intermediate_state(-1, 2)

    def test_neutralization_at_level_d(self):
        protocol = AVCProtocol(m=5, d=3)
        x = intermediate_state(1, 3)
        y = intermediate_state(-1, 1)
        new_x, new_y = protocol.transition(x, y)
        assert {new_x, new_y} == {weak_state(1), weak_state(-1)}

    def test_same_sign_intermediates_also_shift(self):
        protocol = AVCProtocol(m=5, d=3)
        new_x, new_y = protocol.transition(intermediate_state(1, 1),
                                           intermediate_state(1, 2))
        assert new_x == intermediate_state(1, 2)
        assert new_y == intermediate_state(1, 3)

    def test_same_sign_intermediates_never_neutralize(self):
        protocol = AVCProtocol(m=5, d=2)
        x = intermediate_state(1, 2)
        new_x, new_y = protocol.transition(x, x)
        assert new_x == x and new_y == x

    def test_weak_meets_weak_is_noop(self):
        protocol = AVCProtocol(m=5, d=2)
        for sx, sy in itertools.product((1, -1), repeat=2):
            assert protocol.transition(weak_state(sx), weak_state(sy)) \
                == (weak_state(sx), weak_state(sy))

    def test_weak_adopts_sign_of_intermediate_and_shifts_it(self):
        protocol = AVCProtocol(m=5, d=2)
        new_x, new_y = protocol.transition(weak_state(1),
                                           intermediate_state(-1, 1))
        assert new_x == weak_state(-1)
        assert new_y == intermediate_state(-1, 2)

    def test_weak_does_not_shift_level_d_partner(self):
        protocol = AVCProtocol(m=5, d=2)
        new_x, new_y = protocol.transition(weak_state(1),
                                           intermediate_state(-1, 2))
        assert new_x == weak_state(-1)
        assert new_y == intermediate_state(-1, 2)

    def test_same_sign_weak_still_shifts_intermediate(self):
        # Rule 2 applies regardless of signs: interacting with any
        # weak agent costs an intermediate one level.
        protocol = AVCProtocol(m=5, d=2)
        new_x, new_y = protocol.transition(intermediate_state(1, 1),
                                           weak_state(1))
        assert new_x == intermediate_state(1, 2)
        assert new_y == weak_state(1)

    def test_strong_meets_intermediate_resets_level(self):
        # 3 meets -1_2: average 1 -> both become 1_1 (level resets).
        protocol = AVCProtocol(m=5, d=3)
        new_x, new_y = protocol.transition(strong_state(3),
                                           intermediate_state(-1, 2))
        assert new_x == intermediate_state(1, 1)
        assert new_y == intermediate_state(1, 1)


class TestGlobalProperties:
    def test_sum_invariant_all_pairs(self, avc_grid):
        """Invariant 4.3 over the full interaction table."""
        for x, y in all_pairs(avc_grid):
            new_x, new_y = avc_grid.transition(x, y)
            assert x.value + y.value == new_x.value + new_y.value, \
                f"{x} + {y} -> {new_x} + {new_y}"

    def test_transition_total_and_closed(self, avc_grid):
        state_set = set(avc_grid.states)
        for x, y in all_pairs(avc_grid):
            new_x, new_y = avc_grid.transition(x, y)
            assert new_x in state_set and new_y in state_set

    def test_sign_symmetry(self, avc_grid):
        """Negating both inputs negates both outputs (state mirror)."""
        def mirror(state):
            if state.is_intermediate:
                return intermediate_state(-state.sign, state.level)
            if state.is_weak:
                return weak_state(-state.sign)
            return strong_state(-state.value)

        for x, y in all_pairs(avc_grid):
            new_x, new_y = avc_grid.transition(x, y)
            mirrored_x, mirrored_y = avc_grid.transition(mirror(x), mirror(y))
            assert {mirrored_x, mirrored_y} == {mirror(new_x), mirror(new_y)}

    def test_weights_never_increase_above_max(self, avc_grid):
        """The maximum weight of the pair never grows."""
        for x, y in all_pairs(avc_grid):
            new_x, new_y = avc_grid.transition(x, y)
            assert max(new_x.weight, new_y.weight) <= max(x.weight, y.weight)

    def test_all_same_sign_absorbing(self, avc_grid):
        """Two same-sign agents never produce an opposite-sign agent
        (the basis of the is_settled predicate)."""
        for x, y in all_pairs(avc_grid):
            if x.sign != y.sign:
                continue
            new_x, new_y = avc_grid.transition(x, y)
            assert new_x.sign == x.sign and new_y.sign == x.sign

    def test_initiator_gets_rounded_down(self):
        """R_down applies to x, R_up to y (ordered semantics)."""
        protocol = AVCProtocol(m=9, d=1)
        new_x, new_y = protocol.transition(strong_state(9), strong_state(-5))
        assert new_x.value == 1 and new_y.value == 3


@settings(max_examples=200, deadline=None)
@given(data=st.data(), m=st.sampled_from([1, 3, 5, 9]),
       d=st.integers(min_value=1, max_value=4))
def test_random_interaction_sequences_preserve_sum(data, m, d):
    """Property: any interaction sequence preserves the total value."""
    protocol = AVCProtocol(m=m, d=d)
    states = list(protocol.states)
    population = data.draw(
        st.lists(st.sampled_from(states), min_size=2, max_size=8))
    total = sum(s.value for s in population)
    num_steps = data.draw(st.integers(min_value=1, max_value=30))
    for _ in range(num_steps):
        i = data.draw(st.integers(0, len(population) - 1))
        j = data.draw(st.integers(0, len(population) - 2))
        if j >= i:
            j += 1
        population[i], population[j] = protocol.transition(
            population[i], population[j])
    assert sum(s.value for s in population) == total
