"""Robustness of AVC beyond valid inputs (Lemma A.1 + fault injection).

Lemma A.1 is stated for *arbitrary* starting configurations: whatever
the initial mix of states, the system converges with probability 1 to
the sign of the conserved total value ``S`` (provided ``S != 0``).
That makes AVC self-stabilizing against state corruption: if an
adversary rewrites agents mid-run, the execution simply continues from
a new "arbitrary configuration" and converges to the sign of the *new*
total.  These tests exercise exactly that — including corruptions that
flip the winning side.
"""

import pytest

from repro import AVCProtocol, RunSpec, corrupt_counts, run
from repro.core.states import intermediate_state, strong_state, weak_state
from repro.rng import ensure_rng
from repro.sim import CountEngine


def random_configuration(protocol, n, rng):
    """A uniformly random assignment of n agents to protocol states."""
    picks = rng.integers(0, protocol.num_states, size=n)
    counts = {}
    for index in picks:
        state = protocol.states[int(index)]
        counts[state] = counts.get(state, 0) + 1
    return counts


class TestArbitraryStartingConfigurations:
    @pytest.mark.parametrize("seed", range(8))
    def test_converges_to_sign_of_total_value(self, seed):
        protocol = AVCProtocol(m=7, d=2)
        rng = ensure_rng(1000 + seed)
        counts = random_configuration(protocol, 60, rng)
        total = protocol.total_value(counts)
        if total == 0:
            counts[strong_state(3)] = counts.get(strong_state(3), 0) + 1
            total = 3
        result = run(RunSpec(protocol, initial=counts, seed=rng))
        assert result.settled
        assert result.decision == (1 if total > 0 else 0)

    def test_mixed_levels_and_weights_input(self):
        protocol = AVCProtocol(m=5, d=3)
        counts = {
            strong_state(5): 2,           # +10
            strong_state(-3): 5,          # -15
            intermediate_state(1, 2): 4,  # +4
            intermediate_state(-1, 3): 1, # -1
            weak_state(1): 7,             # 0
        }                                 # total -2: B must win
        result = run(RunSpec(protocol, initial=counts, seed=4))
        assert result.settled
        assert result.decision == 0

    def test_weak_only_plus_one_strong(self):
        """A single opinionated agent converts an all-weak population."""
        protocol = AVCProtocol(m=5, d=1)
        counts = {weak_state(1): 20, weak_state(-1): 20,
                  strong_state(-5): 1}
        result = run(RunSpec(protocol, initial=counts, seed=9))
        assert result.settled
        assert result.decision == 0


class TestMidRunCorruption:
    """Adversarial rewrites built with :func:`repro.corrupt_counts` —
    the fault subsystem's explicit corruption primitive."""

    def test_corruption_that_flips_the_majority(self):
        """Interrupt a run, rewrite enough agents to flip the sign of
        the conserved total, resume: AVC must now converge to the NEW
        majority (Lemma A.1 applied to the corrupted configuration)."""
        protocol = AVCProtocol(m=5, d=1)
        engine = CountEngine(protocol)
        initial = protocol.initial_counts(60, 41)  # total +95

        partial = engine.run(initial, rng=1, max_steps=150)
        assert not partial.settled

        # Adversary: rewrite thirty positive-value agents (whatever
        # states they occupy by now) into -5 agents.
        counts = partial.final_counts
        remove: dict = {}
        budget = 30
        for state, count in counts.items():
            if state.value > 0 and budget:
                take = min(count, budget)
                remove[state] = take
                budget -= take
        assert budget == 0, "test setup bug: not enough positives"
        corrupted = corrupt_counts(counts, remove=remove,
                                   inject={strong_state(-5): 30})
        new_total = protocol.total_value(corrupted)
        assert new_total < 0, "corruption should flip the sign"

        resumed = engine.run(corrupted, rng=2)
        assert resumed.settled
        assert resumed.decision == 0

    def test_corruption_that_preserves_the_majority(self):
        """Rewrites that keep the total positive cannot change the
        outcome, no matter which states they scramble."""
        protocol = AVCProtocol(m=9, d=2)
        engine = CountEngine(protocol)
        partial = engine.run(protocol.initial_counts(70, 31), rng=3,
                             max_steps=200)
        counts = corrupt_counts(
            partial.final_counts,
            inject={weak_state(-1): 25,
                    intermediate_state(-1, 1): 5,
                    intermediate_state(1, 2): 5})
        assert protocol.total_value(counts) > 0
        resumed = engine.run(counts, rng=4)
        assert resumed.settled
        assert resumed.decision == 1

    @pytest.mark.parametrize("round_seed", range(5))
    def test_repeated_corruption_rounds(self, round_seed):
        """Several corruption/resume cycles; the final decision always
        tracks the final conserved total."""
        protocol = AVCProtocol(m=5, d=1)
        engine = CountEngine(protocol)
        rng = ensure_rng(500 + round_seed)
        counts = protocol.initial_counts(30, 21)
        for _ in range(3):
            partial = engine.run(counts, rng=rng, max_steps=100)
            counts = random_configuration(protocol, 51, rng)
        if protocol.total_value(counts) == 0:
            counts[strong_state(5)] = counts.get(strong_state(5), 0) + 1
        final = engine.run(counts, rng=rng)
        assert final.settled
        expected = 1 if protocol.total_value(counts) > 0 else 0
        assert final.decision == expected
