"""Tests for the AVC state space and auxiliary procedures."""

import pytest

from repro import InvalidStateError
from repro.core.params import AVCParams
from repro.core.states import (
    AVCState,
    enumerate_states,
    intermediate_state,
    phi,
    round_down,
    round_up,
    shift_to_zero,
    sign_to_zero,
    strong_state,
    weak_state,
)


class TestAVCState:
    def test_strong_state_value(self):
        assert strong_state(5).value == 5
        assert strong_state(-7).value == -7

    def test_intermediate_weight_is_one(self):
        state = intermediate_state(-1, 3)
        assert state.weight == 1
        assert state.value == -1
        assert state.level == 3

    def test_weak_state_value_is_zero(self):
        assert weak_state(1).value == 0
        assert weak_state(-1).value == 0
        assert weak_state(1) != weak_state(-1)

    def test_kind_predicates_are_exclusive(self):
        for state in (strong_state(3), intermediate_state(1, 1),
                      weak_state(-1)):
            kinds = [state.is_strong, state.is_intermediate, state.is_weak]
            assert sum(kinds) == 1

    def test_rejects_even_strong_weight(self):
        with pytest.raises(InvalidStateError):
            AVCState(sign=1, weight=4)

    def test_rejects_weight_one_without_level(self):
        with pytest.raises(InvalidStateError):
            AVCState(sign=1, weight=1, level=0)

    def test_rejects_level_on_strong_state(self):
        with pytest.raises(InvalidStateError):
            AVCState(sign=1, weight=3, level=1)

    def test_rejects_bad_sign(self):
        with pytest.raises(InvalidStateError):
            AVCState(sign=0, weight=3)

    def test_strong_state_rejects_one(self):
        with pytest.raises(InvalidStateError):
            strong_state(1)

    def test_str_formats(self):
        assert str(strong_state(5)) == "+5"
        assert str(strong_state(-3)) == "-3"
        assert str(intermediate_state(1, 2)) == "+1_2"
        assert str(weak_state(-1)) == "-0"

    def test_hashable_and_equal(self):
        assert strong_state(3) == strong_state(3)
        assert hash(strong_state(3)) == hash(strong_state(3))
        assert intermediate_state(1, 1) != intermediate_state(1, 2)


class TestEnumeration:
    @pytest.mark.parametrize("m,d", [(1, 1), (3, 1), (5, 2), (31, 4)])
    def test_counts_match_formula(self, m, d):
        params = AVCParams(m=m, d=d)
        states = enumerate_states(params)
        assert len(states) == m + 2 * d + 1
        assert len(set(states)) == len(states)

    def test_value_symmetric(self):
        states = enumerate_states(AVCParams(m=5, d=2))
        values = [s.value for s in states]
        assert values == [-v for v in reversed(values)]

    def test_m1_is_four_states(self):
        states = enumerate_states(AVCParams(m=1, d=1))
        assert [str(s) for s in states] == ["-1_1", "-0", "+0", "+1_1"]

    def test_values_monotone(self):
        states = enumerate_states(AVCParams(m=9, d=3))
        values = [s.value for s in states]
        assert values == sorted(values)


class TestAuxiliaryProcedures:
    def test_phi_maps_unit_values(self):
        assert phi(1) == intermediate_state(1, 1)
        assert phi(-1) == intermediate_state(-1, 1)
        assert phi(5) == 5
        assert phi(-3) == -3

    @pytest.mark.parametrize("value,down,up", [
        (4, 3, 5),
        (-4, -5, -3),
        (5, 5, 5),
        (-3, -3, -3),
    ])
    def test_rounding_to_odd(self, value, down, up):
        assert round_down(value).value == down
        assert round_up(value).value == up

    def test_rounding_zero_splits_into_units(self):
        assert round_down(0) == intermediate_state(-1, 1)
        assert round_up(0) == intermediate_state(1, 1)

    def test_rounding_two_hits_levels(self):
        assert round_down(2) == intermediate_state(1, 1)
        assert round_up(2).value == 3

    def test_shift_to_zero_moves_one_level(self):
        assert shift_to_zero(intermediate_state(1, 1), d=3) \
            == intermediate_state(1, 2)
        assert shift_to_zero(intermediate_state(-1, 2), d=3) \
            == intermediate_state(-1, 3)

    def test_shift_to_zero_fixes_last_level(self):
        last = intermediate_state(1, 3)
        assert shift_to_zero(last, d=3) is last

    def test_shift_to_zero_ignores_strong_and_weak(self):
        assert shift_to_zero(strong_state(5), d=3) == strong_state(5)
        assert shift_to_zero(weak_state(-1), d=3) == weak_state(-1)

    def test_sign_to_zero(self):
        assert sign_to_zero(strong_state(7)) == weak_state(1)
        assert sign_to_zero(strong_state(-3)) == weak_state(-1)
        assert sign_to_zero(intermediate_state(-1, 2)) == weak_state(-1)
        assert sign_to_zero(weak_state(1)) == weak_state(1)
