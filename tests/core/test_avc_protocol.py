"""Tests for the AVCProtocol class-level behaviour (not the rules)."""

import pytest

from repro import AVCProtocol, InvalidParameterError, MAJORITY_A, MAJORITY_B
from repro.core.states import intermediate_state, strong_state, weak_state
from repro.errors import InvalidStateError


class TestConstruction:
    def test_default_is_four_state_equivalent(self):
        protocol = AVCProtocol()
        assert protocol.num_states == 4

    def test_with_num_states(self):
        protocol = AVCProtocol.with_num_states(66)
        assert protocol.num_states == 66
        assert protocol.m == 63

    def test_name_mentions_parameters(self):
        assert AVCProtocol(m=5, d=2).name == "avc(m=5,d=2)"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            AVCProtocol(m=4)


class TestInitialStates:
    def test_inputs_map_to_extremes(self):
        protocol = AVCProtocol(m=5, d=2)
        assert protocol.initial_state("A") == strong_state(5)
        assert protocol.initial_state("B") == strong_state(-5)

    def test_m1_inputs_are_intermediates(self):
        protocol = AVCProtocol(m=1, d=1)
        assert protocol.initial_state("A") == intermediate_state(1, 1)
        assert protocol.initial_state("B") == intermediate_state(-1, 1)

    def test_unknown_symbol_rejected(self):
        with pytest.raises(ValueError):
            AVCProtocol(m=3).initial_state("C")

    def test_initial_counts_for_margin(self):
        protocol = AVCProtocol(m=3)
        counts = protocol.initial_counts_for_margin(101, 1 / 101)
        assert counts[strong_state(3)] == 51
        assert counts[strong_state(-3)] == 50

    def test_margin_for_b(self):
        protocol = AVCProtocol(m=3)
        counts = protocol.initial_counts_for_margin(101, 1 / 101,
                                                    majority="B")
        assert counts[strong_state(-3)] == 51

    def test_margin_must_be_integral(self):
        protocol = AVCProtocol(m=3)
        with pytest.raises(InvalidParameterError):
            protocol.initial_counts_for_margin(100, 1 / 100)  # parity

    def test_margin_out_of_range(self):
        protocol = AVCProtocol(m=3)
        with pytest.raises(InvalidParameterError):
            protocol.initial_counts_for_margin(100, 1e-9)


class TestOutputsAndSettled:
    def test_output_follows_sign(self, avc_small):
        assert avc_small.output(strong_state(5)) == MAJORITY_A
        assert avc_small.output(strong_state(-3)) == MAJORITY_B
        assert avc_small.output(weak_state(1)) == MAJORITY_A
        assert avc_small.output(intermediate_state(-1, 1)) == MAJORITY_B

    def test_settled_all_positive(self, avc_small):
        counts = {strong_state(3): 2, weak_state(1): 5,
                  intermediate_state(1, 1): 1}
        assert avc_small.is_settled(counts)

    def test_not_settled_with_mixed_signs(self, avc_small):
        counts = {strong_state(3): 2, weak_state(-1): 1}
        assert not avc_small.is_settled(counts)

    def test_zero_counts_ignored(self, avc_small):
        counts = {strong_state(3): 2, weak_state(-1): 0}
        assert avc_small.is_settled(counts)

    def test_empty_configuration_not_settled(self, avc_small):
        assert not avc_small.is_settled({})


class TestInvariantHelpers:
    def test_total_value(self, avc_small):
        counts = {strong_state(5): 3, strong_state(-3): 2,
                  intermediate_state(-1, 2): 4, weak_state(1): 7}
        assert avc_small.total_value(counts) == 15 - 6 - 4

    def test_state_from_value(self, avc_small):
        assert avc_small.state_from_value(5) == strong_state(5)
        assert avc_small.state_from_value(-1) == intermediate_state(-1, 1)
        assert avc_small.state_from_value(1, level=2) \
            == intermediate_state(1, 2)

    def test_state_from_value_zero_rejected(self, avc_small):
        with pytest.raises(InvalidStateError):
            avc_small.state_from_value(0)


class TestIndexViews:
    def test_round_trip_indexing(self, avc_small):
        for index, state in enumerate(avc_small.states):
            assert avc_small.index_of(state) == index

    def test_transition_index_consistency(self, avc_small):
        s = avc_small.num_states
        for i in range(s):
            for j in range(s):
                new_i, new_j = avc_small.transition_index(i, j)
                expected = avc_small.transition(avc_small.states[i],
                                                avc_small.states[j])
                assert (avc_small.states[new_i],
                        avc_small.states[new_j]) == expected

    def test_transition_matrix_matches(self, avc_small):
        out_x, out_y = avc_small.transition_matrix()
        s = avc_small.num_states
        for i in range(s):
            for j in range(s):
                assert (out_x[i, j], out_y[i, j]) \
                    == avc_small.transition_index(i, j)
