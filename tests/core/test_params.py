"""Tests for AVC parameter validation."""

import pytest

from repro import InvalidParameterError
from repro.core.params import AVCParams


class TestAVCParams:
    def test_minimal_parameters(self):
        params = AVCParams(m=1, d=1)
        assert params.num_states == 4

    def test_state_count_formula(self):
        assert AVCParams(m=5, d=2).num_states == 5 + 2 * 2 + 1
        assert AVCParams(m=63, d=1).num_states == 66

    @pytest.mark.parametrize("m", [0, -1, 2, 4, 100])
    def test_rejects_even_or_nonpositive_m(self, m):
        with pytest.raises(InvalidParameterError):
            AVCParams(m=m, d=1)

    @pytest.mark.parametrize("d", [0, -3])
    def test_rejects_nonpositive_d(self, d):
        with pytest.raises(InvalidParameterError):
            AVCParams(m=3, d=d)

    def test_rejects_non_integer_types(self):
        with pytest.raises(InvalidParameterError):
            AVCParams(m=3.0, d=1)
        with pytest.raises(InvalidParameterError):
            AVCParams(m=3, d=True)

    def test_frozen(self):
        params = AVCParams(m=3, d=1)
        with pytest.raises(Exception):
            params.m = 5


class TestFromNumStates:
    def test_four_states_is_m1(self):
        params = AVCParams.from_num_states(4, d=1)
        assert params.m == 1

    @pytest.mark.parametrize("s", [6, 12, 24, 34, 66, 130, 258, 514,
                                   1026, 2050, 4098, 16340])
    def test_paper_sweep_values(self, s):
        """Every s value used in Figure 4 must be representable."""
        params = AVCParams.from_num_states(s, d=1)
        assert params.num_states == s
        assert params.m % 2 == 1

    def test_rejects_impossible_counts(self):
        with pytest.raises(InvalidParameterError):
            AVCParams.from_num_states(5, d=1)  # m = 2 would be even
        with pytest.raises(InvalidParameterError):
            AVCParams.from_num_states(3, d=1)  # m = 0


class TestTheorySetting:
    def test_d_matches_theorem(self):
        params = AVCParams.theory_setting(n=1000)
        assert params.m >= 1
        assert params.d >= 1000  # 1000 log m log n is large by design

    def test_m_respects_upper_bound(self):
        with pytest.raises(InvalidParameterError):
            AVCParams.theory_setting(n=10, m=101)

    def test_rejects_tiny_population(self):
        with pytest.raises(InvalidParameterError):
            AVCParams.theory_setting(n=2)
