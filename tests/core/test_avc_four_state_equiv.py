"""abl-m1: AVC with m = 1, d = 1 coincides with the 4-state protocol.

The paper notes that the m = 1 special case 'would be identical to the
four-state algorithm of [DV12, MNRS14]'.  We machine-check this: the
two protocols' transition tables are identical under the natural state
bijection, hence they induce the same Markov chain on configurations.
"""

import itertools

from repro import AVCProtocol, FourStateProtocol
from repro.core.states import intermediate_state, weak_state
from repro.protocols.four_state import (
    STRONG_MINUS,
    STRONG_PLUS,
    WEAK_MINUS,
    WEAK_PLUS,
)

#: The natural bijection between four-state names and m=1 AVC states.
BIJECTION = {
    STRONG_PLUS: intermediate_state(1, 1),
    STRONG_MINUS: intermediate_state(-1, 1),
    WEAK_PLUS: weak_state(1),
    WEAK_MINUS: weak_state(-1),
}


def test_transition_tables_identical():
    four = FourStateProtocol()
    avc = AVCProtocol(m=1, d=1)
    for x, y in itertools.product(four.states, repeat=2):
        four_result = four.transition(x, y)
        avc_result = avc.transition(BIJECTION[x], BIJECTION[y])
        assert avc_result == tuple(BIJECTION[s] for s in four_result), \
            f"divergence at ({x}, {y})"


def test_initial_states_correspond():
    four = FourStateProtocol()
    avc = AVCProtocol(m=1, d=1)
    assert BIJECTION[four.initial_state("A")] == avc.initial_state("A")
    assert BIJECTION[four.initial_state("B")] == avc.initial_state("B")


def test_outputs_correspond():
    four = FourStateProtocol()
    avc = AVCProtocol(m=1, d=1)
    for state in four.states:
        assert four.output(state) == avc.output(BIJECTION[state])


def test_settled_predicates_correspond():
    four = FourStateProtocol()
    avc = AVCProtocol(m=1, d=1)
    # All configurations of up to 6 agents over the 4 states.
    for counts in itertools.product(range(4), repeat=4):
        if sum(counts) == 0:
            continue
        four_counts = dict(zip(four.states, counts))
        avc_counts = {BIJECTION[s]: c for s, c in four_counts.items()}
        assert four.is_settled(four_counts) == avc.is_settled(avc_counts)
