"""The vectorized AVC kernel must agree with the reference transition."""

import numpy as np
import pytest

from repro import AVCProtocol
from repro.core.vectorized import AVCBatchKernel


@pytest.mark.parametrize("m,d", [(1, 1), (3, 1), (5, 2), (9, 4), (31, 1)])
def test_kernel_matches_reference_exhaustively(m, d):
    protocol = AVCProtocol(m=m, d=d)
    kernel = AVCBatchKernel(protocol)
    s = protocol.num_states
    grid_x, grid_y = np.meshgrid(np.arange(s), np.arange(s), indexing="ij")
    flat_x = grid_x.ravel()
    flat_y = grid_y.ravel()
    new_x, new_y = kernel(flat_x, flat_y)
    for k in range(s * s):
        expected = protocol.transition_index(int(flat_x[k]), int(flat_y[k]))
        assert (int(new_x[k]), int(new_y[k])) == expected, (
            f"mismatch at {protocol.states[flat_x[k]]} x "
            f"{protocol.states[flat_y[k]]}")


def test_kernel_preserves_dtype_and_shape():
    protocol = AVCProtocol(m=5, d=2)
    kernel = AVCBatchKernel(protocol)
    index_x = np.array([0, 1, 2], dtype=np.int64)
    index_y = np.array([3, 4, 5], dtype=np.int64)
    new_x, new_y = kernel(index_x, index_y)
    assert new_x.shape == index_x.shape
    assert new_y.shape == index_y.shape
    assert new_x.dtype == np.int64


def test_kernel_does_not_mutate_inputs():
    protocol = AVCProtocol(m=5, d=1)
    kernel = AVCBatchKernel(protocol)
    index_x = np.arange(protocol.num_states, dtype=np.int64)
    index_y = index_x[::-1].copy()
    backup_x, backup_y = index_x.copy(), index_y.copy()
    kernel(index_x, index_y)
    np.testing.assert_array_equal(index_x, backup_x)
    np.testing.assert_array_equal(index_y, backup_y)


def test_protocol_make_batch_kernel_is_vectorized():
    protocol = AVCProtocol(m=9, d=2)
    kernel = protocol.make_batch_kernel()
    assert isinstance(kernel, AVCBatchKernel)


def test_kernel_on_large_m_spot_checks():
    """For big m the exhaustive check is too slow; spot-check pairs."""
    protocol = AVCProtocol(m=1023, d=1)
    kernel = AVCBatchKernel(protocol)
    rng = np.random.default_rng(0)
    s = protocol.num_states
    index_x = rng.integers(0, s, size=2000)
    index_y = rng.integers(0, s, size=2000)
    new_x, new_y = kernel(index_x, index_y)
    for k in range(0, 2000, 37):
        expected = protocol.transition_index(int(index_x[k]),
                                             int(index_y[k]))
        assert (int(new_x[k]), int(new_y[k])) == expected
