"""AVC is a clique protocol: limits on sparse interaction graphs.

The paper analyzes AVC on the complete graph.  These tests document a
genuine limitation this library surfaced while sweeping topologies:
on sparse graphs AVC can *freeze* with mixed signs, because a
non-zero-weight agent can be walled off from distant weak agents by
weight-0 neighbours (weak-weak interactions are no-ops, so opinions
cannot travel through a weak region).  Exactness is unaffected — the
sum invariant holds on every graph, so AVC never settles on the
minority anywhere; it just may fail to settle at all off the clique.
"""

import networkx as nx
import pytest

from repro import AVCProtocol
from repro.core.states import strong_state, weak_state
from repro.sim import AgentEngine


class TestExplicitFrozenWitness:
    def test_ring_configuration_with_no_productive_edge(self):
        """[+0, -0, -3, -0, +0] on a 5-ring: every adjacent ordered
        pair is a null interaction, yet signs are mixed and the total
        value is -3 — a frozen, never-settling configuration that
        would be impossible on the clique (the -3 would eventually
        meet the +0s)."""
        protocol = AVCProtocol(m=5, d=1)
        agents = [weak_state(1), weak_state(-1), strong_state(-3),
                  weak_state(-1), weak_state(1)]
        ring = nx.cycle_graph(5)
        for u, v in ring.edges():
            for x, y in ((agents[u], agents[v]), (agents[v], agents[u])):
                assert protocol.transition(x, y) == (x, y), (
                    f"expected null interaction on edge ({u}, {v})")
        counts = {}
        for state in agents:
            counts[state] = counts.get(state, 0) + 1
        assert not protocol.is_settled(counts)
        assert protocol.total_value(counts) == -3

    def test_same_configuration_progresses_on_the_clique(self):
        """The witness is only frozen because of the topology: with
        clique interactions the -3 meets a +0 and progress resumes."""
        protocol = AVCProtocol(m=5, d=1)
        x, y = protocol.transition(strong_state(-3), weak_state(1))
        assert (x, y) != (strong_state(-3), weak_state(1))


class TestRingBehaviour:
    def test_avc_rarely_settles_on_a_ring(self):
        protocol = AVCProtocol(m=15, d=1)
        engine = AgentEngine(protocol, graph=nx.cycle_graph(60))
        unsettled = 0
        for seed in range(5):
            result = engine.run(protocol.initial_counts(33, 27),
                                rng=seed, expected=1,
                                max_parallel_time=5_000)
            if not result.settled:
                unsettled += 1
            else:
                assert result.decision == 1  # if it settles, correctly
        assert unsettled >= 3

    def test_avc_never_errs_even_where_it_freezes(self):
        """Exactness survives the topology: across budget-censored
        ring runs, no settled run ever decides for the minority."""
        protocol = AVCProtocol(m=5, d=1)
        engine = AgentEngine(protocol, graph=nx.cycle_graph(30))
        for seed in range(10):
            result = engine.run(protocol.initial_counts(18, 12),
                                rng=seed, expected=1,
                                max_parallel_time=2_000)
            assert result.correct in (True, None)
