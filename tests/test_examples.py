"""Every example script must run to completion (reduced sizes)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Script -> extra arguments keeping the run fast in CI.
EXAMPLES = {
    "quickstart.py": ["--n", "1001"],
    "state_time_tradeoff.py": ["--n", "101", "--trials", "4"],
    "epigenetic_switch.py": ["--nucleosomes", "400"],
    "chemical_majority.py": ["--molecules", "80"],
    "sensor_network_majority.py": ["--sensors", "36"],
    "self_stabilizing_majority.py": [],
    "lower_bound_tour.py": [],
    "composed_computation.py": ["--agents", "60"],
}


def test_every_example_is_covered():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES), (
        "examples/ and the test map diverged — add the new script here")


@pytest.mark.parametrize("script,args", sorted(EXAMPLES.items()))
def test_example_runs(script, args):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples should narrate their run"
