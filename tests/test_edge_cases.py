"""Edge-case tests consolidating thin spots across modules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro import (
    AVCProtocol,
    FourStateProtocol,
    ThreeStateProtocol,
    VoterProtocol,
)
from repro.analysis.markov import ConfigurationChain
from repro.core.vectorized import AVCBatchKernel
from repro.experiments.figure3 import avc_n_state
from repro.protocols.base import MajorityProtocol
from repro.errors import ProtocolError
from repro.sim import ContinuousTimeEngine


class TestAvcNState:
    @pytest.mark.parametrize("n", [11, 101, 1001, 12, 100])
    def test_smallest_admissible_at_least_n(self, n):
        protocol = avc_n_state(n)
        assert n <= protocol.num_states <= n + 3
        # Smallest: one fewer state must be inadmissible or below n.
        assert protocol.num_states - n < 2 or n % 2 == 0

    def test_deeper_levels(self):
        protocol = avc_n_state(20, d=3)
        assert protocol.d == 3
        assert protocol.num_states >= 20


class TestMajorityBaseGuards:
    def test_same_initial_state_for_both_inputs_rejected(self):
        class Degenerate(VoterProtocol):
            def initial_state(self, symbol):
                return "A"

        with pytest.raises(ProtocolError):
            Degenerate().initial_counts(2, 3)


class TestContinuousTimeCensoring:
    def test_budget_exhaustion_reports_partial_clock(self):
        protocol = FourStateProtocol()
        engine = ContinuousTimeEngine(protocol)
        result = engine.run(protocol.initial_counts(500, 499), rng=0,
                            max_steps=1000)
        assert not result.settled
        assert result.continuous_time is not None
        # ~1000 steps of mean 1/999 each: clock around 1.0.
        assert 0.2 < result.continuous_time < 5.0

    def test_frozen_run_keeps_clock(self):
        protocol = FourStateProtocol()
        engine = ContinuousTimeEngine(protocol)
        result = engine.run(protocol.initial_counts(4, 4), rng=1)
        assert result.frozen
        assert result.continuous_time is not None


class TestMarkovProbabilityMass:
    @pytest.mark.parametrize("protocol,counts", [
        (ThreeStateProtocol(), {"A": 3, "B": 2}),
        (ThreeStateProtocol(), {"A": 2, "B": 2}),
        (VoterProtocol(), {"A": 4, "B": 3}),
        (FourStateProtocol(), {"+1": 3, "-1": 3}),
        (AVCProtocol(m=3, d=1), None),
    ])
    def test_settlement_probabilities_sum_to_one(self, protocol, counts):
        if counts is None:
            counts = protocol.initial_counts(3, 2)
        chain = ConfigurationChain(protocol, counts)
        probabilities = chain.settlement_probabilities()
        assert sum(probabilities.values()) == pytest.approx(1.0, abs=1e-9)

    def test_tie_mass_goes_to_deadlock(self):
        chain = ConfigurationChain(FourStateProtocol(),
                                   {"+1": 3, "-1": 3})
        probabilities = chain.settlement_probabilities()
        assert probabilities[None] == pytest.approx(1.0)


@settings(max_examples=30, deadline=None)
@given(m=st.sampled_from([1, 3, 5, 7, 9, 15]),
       d=st.integers(1, 5), seed=st.integers(0, 2**20))
def test_kernel_agrees_with_reference_on_random_parameterizations(m, d,
                                                                  seed):
    """Property: for random (m, d) and random pairs, the vectorized
    kernel equals the reference transition."""
    protocol = AVCProtocol(m=m, d=d)
    kernel = AVCBatchKernel(protocol)
    rng = np.random.default_rng(seed)
    s = protocol.num_states
    index_x = rng.integers(0, s, size=64)
    index_y = rng.integers(0, s, size=64)
    new_x, new_y = kernel(index_x, index_y)
    for k in range(64):
        expected = protocol.transition_index(int(index_x[k]),
                                             int(index_y[k]))
        assert (int(new_x[k]), int(new_y[k])) == expected


@settings(max_examples=25, deadline=None)
@given(count_a=st.integers(1, 12), count_b=st.integers(1, 12),
       seed=st.integers(0, 2**20))
def test_avc_exactness_property(count_a, count_b, seed):
    """Property: AVC never decides for the minority, whatever the
    split and seed."""
    from repro import RunSpec, run_majority

    if count_a == count_b:
        return
    protocol = AVCProtocol(m=3, d=1)
    result = run_majority(RunSpec(protocol, count_a=count_a,
                                  count_b=count_b, seed=seed))
    assert result.settled
    assert result.decision == (1 if count_a > count_b else 0)
