"""Public API surface tests: imports, exports, error hierarchy."""

import pytest

import repro
from repro.errors import (
    AnalysisError,
    ConvergenceTimeout,
    ExperimentError,
    InvalidParameterError,
    InvalidStateError,
    ProtocolError,
    ReproError,
    SimulationError,
)


def test_version_string():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_from_module_docstring():
    """The package docstring's example must actually run."""
    from repro import AVCProtocol, RunSpec, run_majority

    protocol = AVCProtocol.with_num_states(s=64)
    result = run_majority(RunSpec(protocol, n=101, epsilon=1 / 101,
                                  seed=0))
    assert result.settled
    assert result.correct


class TestErrorHierarchy:
    @pytest.mark.parametrize("error", [
        ProtocolError, InvalidParameterError, InvalidStateError,
        SimulationError, ConvergenceTimeout, AnalysisError, ExperimentError,
    ])
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)

    def test_parameter_errors_are_value_errors(self):
        assert issubclass(InvalidParameterError, ValueError)
        assert issubclass(InvalidStateError, ValueError)

    def test_convergence_timeout_carries_result(self):
        timeout = ConvergenceTimeout("too slow", result="partial")
        assert timeout.result == "partial"
