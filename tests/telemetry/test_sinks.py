"""Sink behavior and the JSONL trace schema contract."""

import json

import pytest

from repro.telemetry import (
    JsonlTraceSink,
    SummarySink,
    TRACE_SCHEMA_VERSION,
    Telemetry,
    validate_trace_file,
    validate_trace_record,
)


def record(**overrides):
    base = {"ts": 1.0, "kind": "counter", "name": "x", "value": 1,
            "labels": {}}
    base.update(overrides)
    return base


class TestJsonlTraceSink:
    def test_writes_header_then_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry([JsonlTraceSink(path)])
        telemetry.count("a", 1)
        telemetry.event("b", why="because")
        telemetry.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {"kind": "trace-header",
                            "schema": TRACE_SCHEMA_VERSION}
        assert [r["name"] for r in lines[1:]] == ["a", "b"]

    def test_no_file_until_first_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        sink.close()
        assert not path.exists()

    def test_emitted_trace_validates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        telemetry = Telemetry([JsonlTraceSink(path)])
        telemetry.count("a", 2, engine="count")
        telemetry.record_span("s", 0.5, n=11)
        telemetry.observe("o", 3.0)
        telemetry.event("e")
        telemetry.close()
        counts = validate_trace_file(path)
        assert counts == {"counter": 1, "span": 1, "observation": 1,
                          "event": 1}


class TestSummarySink:
    def test_render_aggregates_every_kind(self):
        sink = SummarySink()
        telemetry = Telemetry([sink])
        telemetry.count("engine.interactions", 10)
        telemetry.count("engine.interactions", 5)
        telemetry.record_span("engine.run", 0.5)
        telemetry.observe("time", 2.0)
        telemetry.event("fallback")
        text = sink.render()
        assert "engine.interactions = 15" in text
        assert "engine.run" in text
        assert "fallback x1" in text

    def test_render_empty(self):
        assert "(no records)" in SummarySink().render()


class TestTraceValidation:
    def test_accepts_well_formed_records(self):
        validate_trace_record(record())
        validate_trace_record(record(kind="event", value=None))
        validate_trace_record(record(kind="span", value=0.5,
                                     labels={"engine": "count",
                                             "ok": True, "x": None}))

    @pytest.mark.parametrize("bad", [
        record(kind="mystery"),
        record(value="three"),
        record(value=float("nan")),
        record(kind="event", value=1),
        record(name=""),
        record(labels={"k": object()}),
        record(labels="not-a-dict"),
        {"kind": "counter"},
        "not a dict",
    ])
    def test_rejects_malformed_records(self, bad):
        with pytest.raises(ValueError):
            validate_trace_record(bad)

    def test_rejects_wrong_schema_version(self):
        with pytest.raises(ValueError, match="schema"):
            validate_trace_record({"kind": "trace-header", "schema": -1})

    def test_file_without_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(record()) + "\n")
        with pytest.raises(ValueError, match="header"):
            validate_trace_file(path)

    def test_file_with_bad_line_reports_lineno(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        header = {"kind": "trace-header", "schema": TRACE_SCHEMA_VERSION}
        path.write_text(json.dumps(header) + "\nnot json\n")
        with pytest.raises(ValueError, match=":2"):
            validate_trace_file(path)
