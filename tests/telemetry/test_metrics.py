"""Unit tests for the telemetry primitives (Telemetry, Histogram)."""

import math

import pytest

from repro.telemetry import (
    Histogram,
    InMemorySink,
    NULL_TELEMETRY,
    Telemetry,
)


class RaisingSink:
    """A sink that must never be touched (the zero-overhead probe)."""

    def emit(self, record):
        raise AssertionError("disabled telemetry reached a sink")


class TestTelemetryEmission:
    def test_counter_record_shape(self):
        sink = InMemorySink()
        Telemetry([sink]).count("x.y", 3, engine="count")
        (record,) = sink.records
        assert record["kind"] == "counter"
        assert record["name"] == "x.y"
        assert record["value"] == 3
        assert record["labels"] == {"engine": "count"}
        assert isinstance(record["ts"], float)

    def test_counter_defaults_to_one(self):
        sink = InMemorySink()
        telemetry = Telemetry([sink])
        telemetry.count("hits")
        telemetry.count("hits")
        assert sink.total("hits") == 2

    def test_observation_and_event(self):
        sink = InMemorySink()
        telemetry = Telemetry([sink])
        telemetry.observe("t", 1.5)
        telemetry.event("fallback", reason="too large")
        assert sink.values("t") == [1.5]
        (event,) = sink.events("fallback")
        assert event["value"] is None
        assert event["labels"]["reason"] == "too large"

    def test_span_context_manager_times_the_block(self):
        sink = InMemorySink()
        with Telemetry([sink]).span("region", n=5):
            pass
        (span,) = sink.spans("region")
        assert span["value"] >= 0.0
        assert span["labels"] == {"n": 5}

    def test_record_span_direct(self):
        sink = InMemorySink()
        Telemetry([sink]).record_span("region", 0.25)
        assert sink.spans("region")[0]["value"] == 0.25

    def test_fan_out_to_multiple_sinks(self):
        first, second = InMemorySink(), InMemorySink()
        Telemetry([first, second]).count("x")
        assert len(first.records) == len(second.records) == 1

    def test_ingest_replays_verbatim(self):
        source, target = InMemorySink(), InMemorySink()
        Telemetry([source]).count("x", 2, worker=1)
        Telemetry([target]).ingest(source.records)
        assert target.records == source.records


class TestDisabledTelemetry:
    """The overhead contract: disabled instances never touch a sink."""

    @pytest.mark.parametrize("call", [
        lambda t: t.count("x"),
        lambda t: t.observe("x", 1.0),
        lambda t: t.event("x"),
        lambda t: t.record_span("x", 0.1),
        lambda t: t.ingest([{"kind": "counter"}]),
    ])
    def test_no_sink_calls_when_disabled(self, call):
        call(Telemetry([RaisingSink()], enabled=False))

    def test_disabled_span_still_yields(self):
        telemetry = Telemetry([RaisingSink()], enabled=False)
        with telemetry.span("region") as inner:
            assert inner is telemetry

    def test_null_singleton_is_disabled(self):
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.sinks == ()


class TestHistogram:
    def test_streaming_stats(self):
        h = Histogram()
        for v in (3.0, 1.0, 2.0):
            h.add(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0

    def test_quantiles_nearest_rank(self):
        h = Histogram(range(1, 11))
        assert h.quantile(0.5) == 5
        assert h.quantile(0.0) == 1
        assert h.quantile(1.0) == 10

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram([1.0]).quantile(1.5)

    def test_empty_histogram(self):
        h = Histogram()
        assert h.count == 0
        assert math.isnan(h.mean)
        assert math.isnan(h.quantile(0.5))
