"""The ambient-telemetry stack: current/use/activate/deactivate."""

import pytest

from repro.telemetry import (
    InMemorySink,
    NULL_TELEMETRY,
    Telemetry,
    current,
    enabled,
)
from repro.telemetry.context import activate, deactivate, reset, use


@pytest.fixture(autouse=True)
def clean_stack():
    reset()
    yield
    reset()


class TestAmbientStack:
    def test_default_is_the_null_singleton(self):
        assert current() is NULL_TELEMETRY
        assert enabled() is False

    def test_activate_and_deactivate(self):
        telemetry = Telemetry([InMemorySink()])
        assert activate(telemetry) is telemetry
        assert current() is telemetry
        assert enabled() is True
        deactivate(telemetry)
        assert current() is NULL_TELEMETRY

    def test_deactivate_checks_identity(self):
        activate(Telemetry([]))
        with pytest.raises(RuntimeError):
            deactivate(Telemetry([]))
        deactivate()

    def test_deactivate_on_empty_stack(self):
        with pytest.raises(RuntimeError):
            deactivate()

    def test_nesting_restores_outer(self):
        outer, inner = Telemetry([]), Telemetry([])
        activate(outer)
        with use(inner):
            assert current() is inner
        assert current() is outer

    def test_use_none_passes_through_ambient(self):
        outer = Telemetry([])
        activate(outer)
        with use(None) as active:
            assert active is outer
            assert current() is outer

    def test_use_none_with_empty_stack_yields_null(self):
        with use(None) as active:
            assert active is NULL_TELEMETRY

    def test_use_pops_even_on_error(self):
        telemetry = Telemetry([])
        with pytest.raises(RuntimeError, match="boom"):
            with use(telemetry):
                raise RuntimeError("boom")
        assert current() is NULL_TELEMETRY

    def test_reset_clears_everything(self):
        activate(Telemetry([]))
        activate(Telemetry([]))
        reset()
        assert current() is NULL_TELEMETRY
