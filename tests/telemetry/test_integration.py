"""Telemetry threaded through engines, the trial fan-out, and sweeps.

The acceptance assertions of the telemetry PR live here: identical
interaction accounting across engines, the fallback event, the
zero-overhead contract on real simulations, cross-process record
merging, and the orchestrator's cache hit/miss counters across a
resume cycle.
"""

import pytest

from repro import (
    AVCProtocol,
    FourStateProtocol,
    RunSpec,
    run_majority,
    run_trials,
    simulate,
)
from repro.runstore import Orchestrator, RunStore
from repro.sim.count_engine import CountEngine
from repro.sim.ensemble_engine import EnsembleEngine
from repro.sim.parallel import run_trials_parallel
from repro.telemetry import InMemorySink, Telemetry
from repro.telemetry.context import reset, use


@pytest.fixture(autouse=True)
def clean_stack():
    reset()
    yield
    reset()


def wide():
    """A protocol the auto policy sends down the ensemble path."""
    return AVCProtocol.with_num_states(18)


class TestEngineAccounting:
    def test_ensemble_and_count_report_identical_totals(self):
        """Same seed, same protocol: the scalar ensemble path and the
        count engine draw identical interaction streams, so their
        telemetry totals must agree exactly."""
        protocol = wide()
        initial = protocol.initial_counts(36, 25)
        totals = {}
        for engine in (CountEngine(protocol), EnsembleEngine(protocol)):
            sink = InMemorySink()
            with use(Telemetry([sink])):
                engine.run(initial, rng=7)
            totals[engine.name] = (
                sink.total("engine.interactions", engine=engine.name),
                sink.total("engine.runs", engine=engine.name),
            )
        assert totals["count"] == totals["ensemble"]
        assert totals["count"][0] > 0

    def test_simulate_counts_every_trial_and_interaction(self):
        sink = InMemorySink()
        spec = RunSpec(FourStateProtocol(), n=21, epsilon=1 / 21,
                       num_trials=5, seed=0, telemetry=Telemetry([sink]))
        results = simulate(spec)
        assert sink.total("sim.trials") == 5
        assert sink.total("engine.runs") == 5
        assert sink.total("engine.interactions") \
            == sum(r.steps for r in results)
        assert len(sink.spans("engine.run")) == 5

    def test_ensemble_path_emits_chunk_aggregates(self):
        sink = InMemorySink()
        spec = RunSpec(wide(), n=41, epsilon=5 / 41, num_trials=12,
                       seed=3, engine="ensemble",
                       telemetry=Telemetry([sink]))
        results = simulate(spec)
        assert sink.total("engine.runs") == 12
        assert sink.total("engine.interactions") \
            == sum(r.steps for r in results)
        (span,) = sink.spans("engine.ensemble_chunk")
        assert span["labels"]["trials"] == 12
        assert sink.total("engine.ensemble.rounds") > 0
        # Speculative draws cover at least the executed interactions.
        assert sink.total("engine.ensemble.drawn") \
            >= sink.total("engine.interactions")

    def test_auto_fallback_emits_event(self):
        """Auto was eligible for the ensemble but an observer forces
        the per-trial path — the downgrade must be recorded."""
        sink = InMemorySink()
        spec = RunSpec(wide(), n=41, epsilon=5 / 41, num_trials=4,
                       seed=1, event_observer=lambda *e: None,
                       telemetry=Telemetry([sink]))
        simulate(spec)
        (event,) = sink.events("engine.fallback")
        assert "event_observer" in event["labels"]["reason"]

    def test_no_fallback_event_on_the_happy_path(self):
        sink = InMemorySink()
        simulate(RunSpec(wide(), n=41, epsilon=5 / 41, num_trials=4,
                         seed=1, telemetry=Telemetry([sink])))
        assert sink.events("engine.fallback") == []

    def test_run_majority_records_through_spec_telemetry(self):
        sink = InMemorySink()
        run_majority(RunSpec(FourStateProtocol(), n=21, epsilon=1 / 21,
                             seed=0, telemetry=Telemetry([sink])))
        assert sink.total("engine.runs") == 1

    def test_run_trials_telemetry_override(self):
        sink = InMemorySink()
        spec = RunSpec(FourStateProtocol(), n=21, epsilon=1 / 21,
                       num_trials=2, seed=0)
        run_trials(spec, telemetry=Telemetry([sink]))
        assert sink.total("engine.runs") == 2


class TestZeroOverhead:
    class RaisingSink:
        def emit(self, record):
            raise AssertionError("disabled telemetry reached a sink")

    def test_disabled_telemetry_never_reaches_a_sink(self):
        disabled = Telemetry([self.RaisingSink()], enabled=False)
        with use(disabled):
            results = simulate(RunSpec(wide(), n=41, epsilon=5 / 41,
                                       num_trials=3, seed=2))
        assert all(r.settled for r in results)

    def test_results_identical_with_and_without_telemetry(self):
        spec = RunSpec(FourStateProtocol(), n=31, epsilon=3 / 31,
                       num_trials=4, seed=9)
        plain = simulate(spec)
        observed = simulate(
            spec.replace(telemetry=Telemetry([InMemorySink()])))
        assert plain == observed


class TestCrossProcessMerge:
    def test_parallel_workers_ship_records_to_the_parent(self):
        sink = InMemorySink()
        spec = RunSpec(FourStateProtocol(), n=21, epsilon=1 / 21,
                       num_trials=4, seed=0)
        results = run_trials_parallel(spec, processes=2,
                                      telemetry=Telemetry([sink]))
        assert sink.total("sim.trials") == 4
        assert sink.total("engine.runs") == 4
        assert sink.total("engine.interactions") \
            == sum(r.steps for r in results)


class TestInputValidationHoisting:
    def test_margin_input_resolved_once_per_batch(self, monkeypatch):
        """The per-trial loop must not re-validate the input: the
        margin resolution runs exactly once for the whole batch."""
        calls = {"n": 0}
        original = FourStateProtocol.initial_counts_for_margin

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(FourStateProtocol,
                            "initial_counts_for_margin", counting)
        simulate(RunSpec(FourStateProtocol(), n=21, epsilon=1 / 21,
                         num_trials=8, seed=0))
        assert calls["n"] == 1


class TestOrchestratorCounters:
    def test_cache_hit_and_miss_across_a_resume_cycle(self, tmp_path):
        store = RunStore(tmp_path / ".runstore")
        protocol = AVCProtocol(m=5, d=1)
        point = dict(n=31, epsilon=5 / 31, trials=4, seed=2)

        cold_sink = InMemorySink()
        with use(Telemetry([cold_sink])):
            cold = Orchestrator(store, sweep="t")
            first = cold.majority_point(protocol, **point)
            cold.finish()
        assert cold_sink.total("runstore.cache.miss") == 1
        assert cold_sink.total("runstore.cache.hit") == 0
        (span,) = cold_sink.spans("runstore.point")
        assert span["labels"]["interactions"] > 0

        warm_sink = InMemorySink()
        with use(Telemetry([warm_sink])):
            warm = Orchestrator(store, sweep="t", resume=True)
            second = warm.majority_point(protocol, **point)
        assert warm_sink.total("runstore.cache.hit") == 1
        assert warm_sink.total("runstore.cache.miss") == 0
        assert warm_sink.spans("runstore.point") == []
        assert first == second
