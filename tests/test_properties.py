"""Cross-cutting property-based tests (hypothesis).

These generate *random population protocols* (as rule tables over
small state spaces) and random workloads, then assert the structural
guarantees the library promises for every protocol, not just the
built-ins: engines conserve the population, never leave the state
space, stay inside the support closure, and honor seeds.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RunSpec, TableProtocol, run
from repro.protocols.table import MajorityTableProtocol
from repro.sim import AgentEngine, BatchEngine, CountEngine, \
    NullSkippingEngine


def random_table_protocol(draw, max_states=4):
    """Draw a random symmetric table protocol over 2..max_states states."""
    num_states = draw(st.integers(2, max_states))
    states = tuple(f"q{k}" for k in range(num_states))
    state_strategy = st.sampled_from(states)
    transitions = {}
    for i in range(num_states):
        for j in range(i, num_states):
            if draw(st.booleans()):
                transitions[(states[i], states[j])] = (
                    draw(state_strategy), draw(state_strategy))
    outputs = {state: draw(st.sampled_from([0, 1, None]))
               for state in states}
    outputs = {s: v for s, v in outputs.items() if v is not None}
    return TableProtocol(states, transitions, outputs, name="random")


def random_counts(draw, protocol, max_total=12):
    """A random initial configuration with at least 2 agents."""
    counts = {}
    total = 0
    for state in protocol.states:
        c = draw(st.integers(0, 4))
        if c:
            counts[state] = c
            total += c
    if total < 2:
        counts[protocol.states[0]] = counts.get(protocol.states[0], 0) + 2
    return counts


@settings(max_examples=40, deadline=None)
@given(data=st.data(), seed=st.integers(0, 2**20))
def test_engines_conserve_population_on_random_protocols(data, seed):
    protocol = random_table_protocol(data.draw)
    counts = random_counts(data.draw, protocol)
    total = sum(counts.values())
    for engine in (AgentEngine(protocol), CountEngine(protocol),
                   NullSkippingEngine(protocol)):
        result = engine.run(counts, rng=seed, max_steps=300)
        assert sum(result.final_counts.values()) == total
        assert all(state in protocol.states
                   for state in result.final_counts)


@settings(max_examples=40, deadline=None)
@given(data=st.data(), seed=st.integers(0, 2**20))
def test_final_states_lie_in_support_closure(data, seed):
    """Everything that ever appears is in the support closure of the
    initial support — the soundness fact TableProtocol.is_settled
    rests on."""
    protocol = random_table_protocol(data.draw)
    counts = random_counts(data.draw, protocol)
    closure = protocol.support_closure(frozenset(counts))
    result = run(RunSpec(protocol, initial=counts, engine="count",
                         seed=seed, max_steps=400))
    assert set(result.final_counts) <= set(closure)


@settings(max_examples=25, deadline=None)
@given(data=st.data(), seed=st.integers(0, 2**20))
def test_settled_runs_really_are_settled(data, seed):
    """When an engine reports settled on a random protocol, resuming
    from the final configuration must change no output, ever (checked
    by resuming with a different seed)."""
    protocol = random_table_protocol(data.draw)
    counts = random_counts(data.draw, protocol)
    result = run(RunSpec(protocol, initial=counts, engine="agent",
                         seed=seed, max_steps=400))
    if not result.settled:
        return
    resumed = run(RunSpec(protocol, initial=result.final_counts,
                          engine="agent", seed=seed + 1,
                          max_steps=200))
    assert resumed.settled
    assert resumed.decision == result.decision


@settings(max_examples=30, deadline=None)
@given(data=st.data(), seed=st.integers(0, 2**20))
def test_engines_deterministic_per_seed(data, seed):
    protocol = random_table_protocol(data.draw)
    counts = random_counts(data.draw, protocol)
    spec = RunSpec(protocol, initial=counts, engine="count",
                   seed=seed, max_steps=300)
    first = run(spec)
    second = run(spec)
    assert first.steps == second.steps
    assert first.final_counts == second.final_counts


@settings(max_examples=30, deadline=None)
@given(data=st.data(), seed=st.integers(0, 2**20),
       fraction=st.sampled_from([0.05, 0.2, 0.5]))
def test_batch_engine_conserves_population(data, seed, fraction):
    protocol = random_table_protocol(data.draw)
    counts = random_counts(data.draw, protocol)
    total = sum(counts.values())
    engine = BatchEngine(protocol, batch_fraction=fraction)
    result = engine.run(counts, rng=seed, max_steps=200)
    assert sum(result.final_counts.values()) == total
