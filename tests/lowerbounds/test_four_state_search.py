"""Tests for the four-state census (thm-b1)."""

import pytest

from repro import RunSpec, run_trials
from repro.lowerbounds.four_state_search import (
    Candidate,
    DISTINCT_PAIRS,
    OUTCOMES,
    check_candidate,
    enumerate_rule_sets,
    paper_four_state_candidate,
    run_census,
)
from repro.lowerbounds.invariants import (
    S0,
    S1,
    X,
    Y,
    conserved_potential,
    has_discrepancy_invariant,
)


def candidate_with(rules: dict, gamma_x=0, gamma_y=1) -> Candidate:
    full = tuple((pair, rules.get(pair, pair)) for pair in DISTINCT_PAIRS)
    return Candidate(rules=full, gamma_x=gamma_x, gamma_y=gamma_y)


class TestKnownProtocols:
    def test_paper_candidate_is_correct(self):
        candidate = paper_four_state_candidate()
        assert check_candidate(candidate, sizes=(3, 5, 7))

    def test_paper_candidate_carries_discrepancy_invariant(self):
        candidate = paper_four_state_candidate()
        assert has_discrepancy_invariant(candidate.rule_dict)
        assert conserved_potential(candidate.rule_dict) is None

    def test_case_1_4_1_variant_is_correct(self):
        """Case 1.4.1: [X,Y]->[S0,S1] with the Case-1.1 side rules."""
        candidate = candidate_with({
            (S0, S1): (X, Y),
            (X, Y): (S0, S1),
            (S0, Y): (S0, X),
            (S1, X): (S1, Y),
        })
        assert check_candidate(candidate, sizes=(3, 5, 7))
        assert has_discrepancy_invariant(candidate.rule_dict)

    def test_voter_like_candidate_rejected(self):
        """[S0,S1]->[S1,S1] can reach the wrong consensus."""
        candidate = candidate_with({(S0, S1): (S1, S1)})
        assert not check_candidate(candidate, sizes=(3,))

    def test_noop_everything_rejected(self):
        """The identity protocol can never converge (property 3)."""
        candidate = candidate_with({})
        assert not check_candidate(candidate, sizes=(3,))

    def test_case_1_4_4_rejected(self):
        """Case 1.4.4 carries a conserved potential (Claim B.9) and is
        eliminated by the reachability check too."""
        candidate = candidate_with({
            (S0, S1): (X, Y),
            (X, Y): (S0, S1),
            (S0, Y): (X, X),
            (S1, X): (Y, Y),
        })
        assert conserved_potential(candidate.rule_dict) is not None
        assert not check_candidate(candidate, sizes=(3, 5, 7))

    def test_three_state_impossibility_embedded(self):
        """[MNRS14]: no 3-state protocol is exact.  Embed X = Y (make
        every rule avoid Y) with gamma(X) = gamma(Y): all such
        candidates must fail."""
        # The classic 3-state approximate majority embedded in 4 states.
        candidate = candidate_with({
            (S0, S1): (S0, X),
            (S0, X): (S0, S0),
            (S1, X): (S1, S1),
        }, gamma_x=0, gamma_y=0)
        assert not check_candidate(candidate, sizes=(3, 5))


class TestInvariantHelpers:
    def test_discrepancy_holds_for_noops(self):
        assert has_discrepancy_invariant({})

    def test_discrepancy_violated_by_production(self):
        assert not has_discrepancy_invariant({(S0, S1): (S0, S0)})

    def test_discrepancy_holds_for_annihilation(self):
        assert has_discrepancy_invariant({(S0, S1): (X, Y)})

    def test_conserved_potential_found(self):
        # Case 2.1.2 of the paper: S0=1, X=3, S1=-3, Y=-1 conserves
        # these rules.
        rules = {(S0, S1): (Y, Y), (S0, Y): (S1, X), (X, Y): (S0, S0)}
        potential = conserved_potential(rules)
        assert potential is not None
        for (a, b), (c, d) in rules.items():
            assert potential[a] + potential[b] == potential[c] + potential[d]


class TestCensusSweep:
    def test_enumeration_size(self):
        generator = enumerate_rule_sets()
        first = next(generator)
        assert len(first) == 6
        assert all(outcome in OUTCOMES for _, outcome in first)

    def test_limited_census_runs(self):
        result = run_census(sizes=(3,), limit=2000)
        assert result.num_checked == 2000
        assert result.all_survivors_slow  # vacuous or real, must hold

    def test_census_finds_paper_protocol(self):
        """A census over a pencil of rule sets containing the paper's
        protocol must keep it and satisfy Theorem B.1's conclusion."""
        paper = paper_four_state_candidate()
        # Vary only the [X, Y] rule across all 10 outcomes.
        rule_sets = []
        for outcome in OUTCOMES:
            rules = dict(paper.rules)
            rules[(X, Y)] = outcome
            rule_sets.append(tuple(rules.items()))
        result = run_census(sizes=(3, 5), gammas=((0, 1),),
                            rule_sets=rule_sets)
        descriptions = {c.describe() for c in result.survivors}
        assert paper.describe() in descriptions
        assert result.num_survivors >= 1
        assert result.all_survivors_slow
        assert result.no_survivor_has_conserved_potential


class TestEmpiricalSlowness:
    def test_surviving_protocol_scales_inversely_with_margin(self):
        """Claim B.8 empirically: halving eps doubles convergence time."""
        protocol = paper_four_state_candidate().to_protocol()
        times = []
        for n, margin in ((25, 5), (125, 5)):
            epsilon = margin / n
            stats = run_trials(RunSpec(protocol, num_trials=30, seed=1,
                                       n=n, epsilon=epsilon),
                               stats=True)
            assert stats.error_fraction == 0.0
            times.append(stats.mean_parallel_time)
        # eps drops 5x between the scenarios; expect clearly
        # superlinear growth in 1/eps (allowing log n slack).
        assert times[1] > 3.0 * times[0]
