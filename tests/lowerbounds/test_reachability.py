"""Tests for adversarial-schedule reachability, including validation of
every protocol's is_settled predicate against the brute-force oracle."""

import itertools

import pytest

from repro import (
    AVCProtocol,
    FourStateProtocol,
    InvalidParameterError,
    ThreeStateProtocol,
    VoterProtocol,
)
from repro.lowerbounds.reachability import (
    brute_force_is_settled,
    is_absorbing_for_output,
    reachable_configurations,
    successors,
)


class TestSuccessors:
    def test_three_state_conflict(self):
        protocol = ThreeStateProtocol()
        # (A=1, B=1, _=0): only conflict interactions are possible.
        result = successors(protocol, (1, 1, 0))
        assert result == {(1, 0, 1), (0, 1, 1)}

    def test_same_state_needs_two_agents(self):
        protocol = VoterProtocol()
        assert successors(protocol, (1, 0)) == set()

    def test_null_interactions_excluded(self):
        protocol = FourStateProtocol()
        # All same sign: no state-changing interaction.
        assert successors(protocol, (2, 0, 3, 0)) == set()


class TestReachableSet:
    def test_contains_initial(self):
        protocol = ThreeStateProtocol()
        reachable = reachable_configurations(protocol, {"A": 2, "B": 1})
        assert (2, 1, 0) in reachable

    def test_both_consensus_reachable_for_three_state(self):
        protocol = ThreeStateProtocol()
        reachable = reachable_configurations(protocol, {"A": 2, "B": 1})
        assert (3, 0, 0) in reachable  # correct consensus
        assert (0, 3, 0) in reachable  # wrong consensus is reachable too!

    def test_four_state_wrong_consensus_unreachable(self):
        protocol = FourStateProtocol()
        reachable = reachable_configurations(protocol, {"+1": 3, "-1": 2})
        for config in reachable:
            positive = config[0] + config[2]
            assert positive > 0, "exactness violated: all-negative reached"

    def test_limit_guard(self):
        protocol = AVCProtocol(m=9, d=2)
        with pytest.raises(InvalidParameterError):
            reachable_configurations(
                protocol, protocol.initial_counts(12, 10), limit=50)

    def test_tuple_input_accepted(self):
        protocol = VoterProtocol()
        reachable = reachable_configurations(protocol, (2, 1))
        assert (3, 0) in reachable and (0, 3) in reachable


class TestAbsorbing:
    def test_consensus_absorbing(self):
        protocol = ThreeStateProtocol()
        assert is_absorbing_for_output(protocol, (3, 0, 0), 1)
        assert is_absorbing_for_output(protocol, (0, 3, 0), 0)

    def test_mixed_not_absorbing(self):
        protocol = ThreeStateProtocol()
        assert not is_absorbing_for_output(protocol, (2, 1, 0), 1)


class TestIsSettledAgainstBruteForce:
    """The fast is_settled predicates must equal the reachability
    oracle on every small configuration (the documented contract)."""

    @pytest.mark.parametrize("protocol", [
        ThreeStateProtocol(),
        FourStateProtocol(),
        VoterProtocol(),
        AVCProtocol(m=3, d=1),
    ], ids=lambda p: p.name)
    def test_predicate_matches_oracle(self, protocol):
        s = protocol.num_states
        checked = 0
        for config in itertools.product(range(3), repeat=s):
            if not 2 <= sum(config) <= 4:
                continue
            sparse = {protocol.states[i]: c
                      for i, c in enumerate(config) if c}
            fast = protocol.is_settled(sparse)
            exact = brute_force_is_settled(protocol, sparse)
            assert fast == exact, f"{protocol.name}: {sparse}"
            checked += 1
        assert checked > 0
