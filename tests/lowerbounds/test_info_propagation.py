"""Tests for the information-propagation experiment (thm-c1)."""

import math

import numpy as np
import pytest

from repro import InvalidParameterError
from repro.lowerbounds.info_propagation import (
    expected_propagation_steps,
    propagation_probability,
    simulate_propagation,
)
from repro.rng import spawn_many


class TestProbability:
    def test_formula(self):
        # n=4, k=2: ordered pairs with exactly one endpoint known:
        # 2*2*2 = 8 of 12.
        assert propagation_probability(4, 2) == pytest.approx(8 / 12)

    def test_full_coverage_has_zero_growth(self):
        assert propagation_probability(10, 10) == 0.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            propagation_probability(10, 0)
        with pytest.raises(InvalidParameterError):
            propagation_probability(10, 11)


class TestExpectation:
    def test_two_agents(self):
        # From k=1 of n=2: p = 1, expect exactly 1 step.
        assert expected_propagation_steps(2, seed_size=1) == 1.0

    def test_theta_n_log_n(self):
        """E[steps]/(n ln n) approaches a constant (Claim C.2)."""
        ratios = [expected_propagation_steps(n) / (n * math.log(n))
                  for n in (100, 1000, 10_000)]
        assert ratios[0] == pytest.approx(ratios[2], rel=0.2)
        # The constant is ~1 for the 2k(n-k) growth rate.
        assert 0.5 < ratios[2] < 1.5

    def test_parallel_time_omega_log_n(self):
        """Parallel propagation time grows like log n — the lower
        bound's engine."""
        small = expected_propagation_steps(100) / 100
        large = expected_propagation_steps(10_000) / 10_000
        assert large > small + math.log(10_000 / 100) * 0.5

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            expected_propagation_steps(1)
        with pytest.raises(InvalidParameterError):
            expected_propagation_steps(10, seed_size=0)


class TestSimulation:
    def test_trial_fields(self):
        trial = simulate_propagation(50, rng=0)
        assert trial.n == 50
        assert trial.seed_size == 3
        assert trial.steps >= 47  # at least one step per new agent
        assert trial.parallel_time == trial.steps / 50

    def test_mean_matches_expectation(self):
        n = 300
        exact = expected_propagation_steps(n)
        samples = [simulate_propagation(n, rng=child).steps
                   for child in spawn_many(4, 200)]
        assert np.mean(samples) == pytest.approx(exact, rel=0.1)

    def test_reproducible(self):
        assert simulate_propagation(100, rng=9).steps \
            == simulate_propagation(100, rng=9).steps
