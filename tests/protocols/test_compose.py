"""Tests for parallel protocol composition."""

import pytest

from repro import (
    InvalidParameterError,
    PairwiseLeaderElection,
    RunSpec,
    ThreeStateProtocol,
    VoterProtocol,
    run,
)
from repro.protocols.compose import ProductProtocol


@pytest.fixture
def product():
    return ProductProtocol(ThreeStateProtocol(), PairwiseLeaderElection())


class TestStructure:
    def test_state_space_is_product(self, product):
        assert product.num_states == 3 * 2
        assert ("A", "L") in product.states

    def test_componentwise_transition(self, product):
        new_x, new_y = product.transition(("A", "L"), ("B", "L"))
        # Majority component: (A, B) -> (A, _); leader: (L, L) -> (L, F)
        assert new_x == ("A", "L")
        assert new_y == ("_", "F")

    def test_output_from_first(self, product):
        assert product.output(("A", "L")) == 1
        assert product.output(("B", "F")) == 0
        assert product.output(("_", "L")) is None

    def test_output_from_second(self):
        product = ProductProtocol(ThreeStateProtocol(),
                                  PairwiseLeaderElection(),
                                  output_from=1)
        assert product.output(("A", "L")) == 1
        assert product.output(("A", "F")) == 0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ProductProtocol(VoterProtocol(), VoterProtocol(),
                            output_from=2)


class TestSettled:
    def test_output_component_only(self, product):
        counts = {("A", "L"): 2, ("A", "F"): 3}
        assert product.is_settled(counts)  # majority settled (all A)
        counts = {("A", "L"): 2, ("B", "F"): 3}
        assert not product.is_settled(counts)

    def test_require_both(self):
        product = ProductProtocol(ThreeStateProtocol(),
                                  PairwiseLeaderElection(),
                                  require_both=True)
        # Majority settled, but two leaders remain.
        assert not product.is_settled({("A", "L"): 2, ("A", "F"): 1})
        assert product.is_settled({("A", "L"): 1, ("A", "F"): 2})


class TestEndToEnd:
    def test_simultaneous_majority_and_leader_election(self):
        """One run of the product computes both answers."""
        majority = ThreeStateProtocol()
        leader = PairwiseLeaderElection()
        product = ProductProtocol(majority, leader, require_both=True)
        n = 30
        counts = product.pair_counts(
            majority.initial_counts(20, 10),
            leader.initial_counts(n), rng=0)
        assert sum(counts.values()) == n

        result = run(RunSpec(product, initial=counts, seed=5))
        assert result.settled
        majority_marginal = product._marginal(result.final_counts, 0)
        leader_marginal = product._marginal(result.final_counts, 1)
        assert majority.is_settled(majority_marginal)
        assert leader.num_leaders(leader_marginal) == 1

    def test_pair_counts_population_mismatch(self, product):
        with pytest.raises(InvalidParameterError):
            product.pair_counts({"A": 2}, {"L": 3}, rng=0)

    def test_marginal_dynamics_match_solo_runs(self):
        """Statistically, the majority component inside a product
        behaves like the protocol running alone (same chain on the
        marginal)."""
        from repro.rng import spawn_many
        from repro.sim import CountEngine

        majority = ThreeStateProtocol()
        product = ProductProtocol(majority, VoterProtocol())
        solo_engine = CountEngine(majority)
        product_engine = CountEngine(product)

        def mean_time(engine, protocol, build, trials, seed):
            times = []
            for child in spawn_many(seed, trials):
                result = engine.run(build(child), rng=child)
                assert result.settled
                times.append(result.parallel_time)
            return sum(times) / len(times)

        solo = mean_time(solo_engine, majority,
                         lambda _: majority.initial_counts(20, 8),
                         40, seed=1)
        paired = mean_time(
            product_engine, product,
            lambda child: product.pair_counts(
                majority.initial_counts(20, 8),
                VoterProtocol().initial_counts(14, 14), rng=child),
            40, seed=2)
        assert paired == pytest.approx(solo, rel=0.4)
