"""Tests for the PopulationProtocol / MajorityProtocol base machinery."""

import numpy as np
import pytest

from repro import (
    FourStateProtocol,
    InvalidParameterError,
    InvalidStateError,
    MAJORITY_A,
    MAJORITY_B,
    ThreeStateProtocol,
    UNDECIDED,
)
from repro.errors import ProtocolError


class TestIndexing:
    def test_state_index_round_trip(self, three_state):
        for index, state in enumerate(three_state.states):
            assert three_state.state_index[state] == index
            assert three_state.index_of(state) == index

    def test_index_of_unknown_state(self, three_state):
        with pytest.raises(InvalidStateError):
            three_state.index_of("Z")

    def test_transition_index_memoized(self, three_state):
        first = three_state.transition_index(0, 1)
        second = three_state.transition_index(0, 1)
        assert first == second
        assert three_state._transition_cache[(0, 1)] == first

    def test_transition_matrix_round_trip(self, four_state):
        out_x, out_y = four_state.transition_matrix()
        states = four_state.states
        for i in range(4):
            for j in range(4):
                expected = four_state.transition(states[i], states[j])
                assert (states[out_x[i, j]], states[out_y[i, j]]) == expected

    def test_transition_matrix_guard_for_large_spaces(self):
        from repro import AVCProtocol

        protocol = AVCProtocol.with_num_states(8196, d=1)
        with pytest.raises(ProtocolError):
            protocol.transition_matrix()

    def test_output_array_encoding(self, three_state):
        outputs = three_state.output_array()
        assert outputs.tolist() == [1, 0, -1]  # A, B, blank


class TestCountVectors:
    def test_counts_to_vector(self, three_state):
        vector = three_state.counts_to_vector({"A": 2, "B": 1})
        assert vector.tolist() == [2, 1, 0]

    def test_negative_count_rejected(self, three_state):
        with pytest.raises(InvalidParameterError):
            three_state.counts_to_vector({"A": -1})

    def test_vector_to_counts_drops_zeros(self, three_state):
        counts = three_state.vector_to_counts(np.array([2, 0, 1]))
        assert counts == {"A": 2, "_": 1}

    def test_vector_length_checked(self, three_state):
        with pytest.raises(InvalidParameterError):
            three_state.vector_to_counts([1, 2])

    def test_is_settled_vector(self, three_state):
        assert three_state.is_settled_vector([5, 0, 0])
        assert not three_state.is_settled_vector([5, 0, 1])


class TestMajorityHelpers:
    def test_initial_counts_validation(self, four_state):
        with pytest.raises(InvalidParameterError):
            four_state.initial_counts(-1, 2)

    def test_margin_validation(self, four_state):
        with pytest.raises(InvalidParameterError):
            four_state.initial_counts_for_margin(0, 0.5)
        with pytest.raises(InvalidParameterError):
            four_state.initial_counts_for_margin(10, 0.5, majority="C")

    def test_decision(self, three_state):
        assert three_state.decision({"A": 3}) == MAJORITY_A
        assert three_state.decision({"B": 3}) == MAJORITY_B
        assert three_state.decision({"A": 1, "B": 1}) is UNDECIDED
        assert three_state.decision({"_": 1}) is UNDECIDED
        assert three_state.decision({"A": 3, "B": 0}) == MAJORITY_A

    def test_repr(self, three_state):
        assert "three-state" in repr(three_state)
