"""Tests for the four-state exact majority protocol."""

import itertools

import pytest

from repro import FourStateProtocol, MAJORITY_A, MAJORITY_B
from repro.protocols.four_state import (
    STRONG_MINUS,
    STRONG_PLUS,
    WEAK_MINUS,
    WEAK_PLUS,
)


@pytest.fixture
def protocol():
    return FourStateProtocol()


class TestTransitions:
    def test_opposite_strong_annihilate(self, protocol):
        assert protocol.transition(STRONG_PLUS, STRONG_MINUS) \
            == (WEAK_PLUS, WEAK_MINUS)
        assert protocol.transition(STRONG_MINUS, STRONG_PLUS) \
            == (WEAK_MINUS, WEAK_PLUS)

    def test_weak_adopts_strong_sign(self, protocol):
        assert protocol.transition(WEAK_MINUS, STRONG_PLUS) \
            == (WEAK_PLUS, STRONG_PLUS)
        assert protocol.transition(STRONG_MINUS, WEAK_PLUS) \
            == (STRONG_MINUS, WEAK_MINUS)

    def test_same_sign_pairs_are_noops(self, protocol):
        for x, y in [(STRONG_PLUS, STRONG_PLUS), (STRONG_PLUS, WEAK_PLUS),
                     (WEAK_PLUS, WEAK_PLUS), (STRONG_MINUS, WEAK_MINUS),
                     (WEAK_MINUS, WEAK_MINUS)]:
            assert protocol.transition(x, y) == (x, y)

    def test_weak_weak_opposite_is_noop(self, protocol):
        assert protocol.transition(WEAK_PLUS, WEAK_MINUS) \
            == (WEAK_PLUS, WEAK_MINUS)

    def test_value_sum_invariant(self, protocol):
        for x, y in itertools.product(protocol.states, repeat=2):
            new_x, new_y = protocol.transition(x, y)
            assert protocol.value(x) + protocol.value(y) \
                == protocol.value(new_x) + protocol.value(new_y)

    def test_sign_difference_invariant(self, protocol):
        """#plus - #minus among strong agents is conserved.

        This is the discrepancy invariant that forces Omega(1/eps)
        convergence (Claim B.8 applied to this protocol).
        """
        def strong_balance(*states):
            return (states.count(STRONG_PLUS) - states.count(STRONG_MINUS))

        for x, y in itertools.product(protocol.states, repeat=2):
            new_x, new_y = protocol.transition(x, y)
            assert strong_balance(x, y) == strong_balance(new_x, new_y)


class TestOutputsAndSettled:
    def test_outputs_follow_sign(self, protocol):
        assert protocol.output(STRONG_PLUS) == MAJORITY_A
        assert protocol.output(WEAK_PLUS) == MAJORITY_A
        assert protocol.output(STRONG_MINUS) == MAJORITY_B
        assert protocol.output(WEAK_MINUS) == MAJORITY_B

    def test_settled_unanimous_positive(self, protocol):
        assert protocol.is_settled({STRONG_PLUS: 1, WEAK_PLUS: 5})

    def test_settled_unanimous_negative(self, protocol):
        assert protocol.is_settled({WEAK_MINUS: 5})

    def test_not_settled_mixed(self, protocol):
        assert not protocol.is_settled({WEAK_PLUS: 1, WEAK_MINUS: 1})

    def test_empty_not_settled(self, protocol):
        assert not protocol.is_settled({})


class TestInitial:
    def test_initial_states(self, protocol):
        assert protocol.initial_state("A") == STRONG_PLUS
        assert protocol.initial_state("B") == STRONG_MINUS

    def test_margin_builder(self, protocol):
        counts = protocol.initial_counts_for_margin(7, 3 / 7)
        assert counts == {STRONG_PLUS: 5, STRONG_MINUS: 2}
