"""Tests for the leader election protocols (extension feature)."""

import pytest

from repro import (
    InvalidParameterError,
    LeveledLeaderElection,
    PairwiseLeaderElection,
    RunSpec,
    run,
)
from repro.protocols.leader_election import FOLLOWER
from repro.rng import spawn_many
from repro.sim import AgentEngine, CountEngine, NullSkippingEngine


class TestPairwise:
    def test_transitions(self):
        protocol = PairwiseLeaderElection()
        assert protocol.transition("L", "L") == ("L", "F")
        assert protocol.transition("L", "F") == ("L", "F")
        assert protocol.transition("F", "F") == ("F", "F")

    def test_settled_exactly_one_leader(self):
        protocol = PairwiseLeaderElection()
        assert protocol.is_settled({"L": 1, "F": 9})
        assert not protocol.is_settled({"L": 2, "F": 8})
        assert not protocol.is_settled({"F": 10})

    def test_initial_counts(self):
        protocol = PairwiseLeaderElection()
        assert protocol.initial_counts(5) == {"L": 5}
        with pytest.raises(InvalidParameterError):
            protocol.initial_counts(0)

    def test_flags_for_trackers(self):
        protocol = PairwiseLeaderElection()
        assert not protocol.unanimity_settles
        assert not protocol.settled_support_only

    @pytest.mark.parametrize("engine_class",
                             [AgentEngine, CountEngine, NullSkippingEngine])
    def test_elects_exactly_one_leader(self, engine_class):
        protocol = PairwiseLeaderElection()
        engine = engine_class(protocol)
        result = engine.run(protocol.initial_counts(40), rng=3)
        assert result.settled
        assert result.final_counts["L"] == 1
        assert result.final_counts[FOLLOWER] == 39

    def test_expected_time_theta_n(self):
        """Mean election time grows ~linearly with n (coupon endgame)."""
        protocol = PairwiseLeaderElection()
        engine = NullSkippingEngine(protocol)

        def mean_time(n, seed):
            times = [engine.run(protocol.initial_counts(n),
                                rng=child).parallel_time
                     for child in spawn_many(seed, 30)]
            return sum(times) / len(times)

        small = mean_time(20, seed=1)
        large = mean_time(80, seed=2)
        assert 2.0 < large / small < 8.0  # ~4x for 4x the population


class TestLeveled:
    def test_levels_validation(self):
        with pytest.raises(InvalidParameterError):
            LeveledLeaderElection(levels=0)

    def test_single_level_matches_pairwise(self):
        leveled = LeveledLeaderElection(levels=1)
        assert leveled.transition("L0", "L0") == ("L0", "F")
        assert leveled.transition("L0", "F") == ("L0", "F")

    def test_higher_level_wins(self):
        protocol = LeveledLeaderElection(levels=4)
        assert protocol.transition("L2", "L1") == ("L2", "F")
        assert protocol.transition("L0", "L3") == ("F", "L3")

    def test_tie_promotes_initiator(self):
        protocol = LeveledLeaderElection(levels=4)
        assert protocol.transition("L1", "L1") == ("L2", "F")
        assert protocol.transition("L3", "L3") == ("L3", "F")  # capped

    def test_elects_exactly_one_leader(self):
        protocol = LeveledLeaderElection(levels=4)
        result = run(RunSpec(protocol,
                             initial=protocol.initial_counts(50),
                             seed=5))
        assert result.settled
        assert protocol.num_leaders(result.final_counts) == 1

    def test_leader_count_monotone_under_all_rules(self):
        """No interaction may ever create a leader."""
        protocol = LeveledLeaderElection(levels=3)
        for x in protocol.states:
            for y in protocol.states:
                before = protocol.num_leaders({x: 1, y: 1}) \
                    if x != y else protocol.num_leaders({x: 2})
                new_x, new_y = protocol.transition(x, y)
                counts = {}
                for state in (new_x, new_y):
                    counts[state] = counts.get(state, 0) + 1
                assert protocol.num_leaders(counts) <= before
