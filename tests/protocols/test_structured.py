"""Tests for the structured-state protocol API (lazy enumeration,
FieldSpec, the deprecation shim, and the dense-table guard)."""

import pytest

from repro import (
    AVCProtocol,
    FieldSpec,
    FourStateProtocol,
    InvalidParameterError,
    PhaseDoublingProtocol,
    LogStateMajorityProtocol,
    RunSpec,
    StructuredProtocol,
    ThreeStateProtocol,
    simulate,
)
from repro.errors import ProtocolError
from repro.protocols.base import (
    MAX_DENSE_STATES,
    MAJORITY_A,
    PopulationProtocol,
    UNDECIDED,
)
from repro.telemetry import InMemorySink, Telemetry
from repro.telemetry.context import use as use_telemetry


class TestFieldSpec:
    def test_basic(self):
        spec = FieldSpec("level", (0, 1, 2))
        assert spec.name == "level"
        assert spec.values == (0, 1, 2)
        assert len(spec) == 3

    def test_rejects_empty_name(self):
        with pytest.raises(InvalidParameterError):
            FieldSpec("", (0, 1))

    def test_rejects_empty_domain(self):
        with pytest.raises(InvalidParameterError):
            FieldSpec("x", ())

    def test_rejects_duplicate_values(self):
        with pytest.raises(InvalidParameterError):
            FieldSpec("x", (0, 1, 0))


class _Grid(StructuredProtocol):
    """A tiny concrete structured protocol for direct unit tests."""

    name = "grid"

    def __init__(self, prune=False):
        self.prune = prune
        super().__init__((
            FieldSpec("row", (0, 1)),
            FieldSpec("col", ("a", "b", "c")),
        ))

    def is_valid_state(self, state):
        if not self.prune:
            return True
        return not (state[0] == 1 and state[1] == "c")

    def transition(self, x, y):
        return x, y

    def output(self, state):
        return MAJORITY_A

    def is_settled(self, counts):
        return True


class TestStructuredProtocol:
    def test_enumeration_order_is_product_order(self):
        grid = _Grid()
        assert grid.states == (
            (0, "a"), (0, "b"), (0, "c"),
            (1, "a"), (1, "b"), (1, "c"),
        )

    def test_round_trip_indexing(self):
        grid = _Grid()
        for index, state in enumerate(grid.states):
            assert grid.state_index[state] == index
            assert grid.index_of(state) == index

    def test_pruning_removes_invalid_states(self):
        pruned = _Grid(prune=True)
        assert (1, "c") not in pruned.states
        assert pruned.num_states == 5
        assert not pruned.is_state((1, "c"))

    def test_product_size_is_closed_form(self):
        grid = _Grid(prune=True)
        # product_size counts the raw product, before pruning.
        assert grid.product_size == 6

    def test_field_helpers(self):
        grid = _Grid()
        assert grid.field_index("col") == 1
        assert grid.field_value((1, "b"), "col") == "b"
        assert grid.make_state(row=1, col="b") == (1, "b")

    def test_make_state_rejects_out_of_domain(self):
        from repro import InvalidStateError

        with pytest.raises(InvalidStateError):
            _Grid().make_state(row=2, col="a")

    def test_make_state_rejects_unknown_field(self):
        with pytest.raises(InvalidParameterError, match="unknown"):
            _Grid().make_state(row=0, col="a", depth=1)

    def test_marginal_counts(self):
        grid = _Grid()
        counts = {(0, "a"): 3, (1, "a"): 2, (1, "b"): 1}
        assert grid.marginal_counts(counts, "row") == {0: 3, 1: 3}
        assert grid.marginal_counts(counts, "col") == {"a": 5, "b": 1}

    def test_is_state_checks_domains_without_materializing(self):
        protocol = PhaseDoublingProtocol(levels=30)
        assert protocol.is_state((0, 1, 0))
        assert not protocol.is_state((0, 0, 0))  # opinion 0 not in domain
        assert not protocol.is_state("A")
        assert getattr(protocol, "_states_cache", None) is None

    def test_structured_protocols_pickle_without_caches(self):
        import pickle

        protocol = PhaseDoublingProtocol(levels=2, theta=2)
        protocol.states  # populate caches
        clone = pickle.loads(pickle.dumps(protocol))
        assert getattr(clone, "_states_cache", None) is None
        assert clone.states == protocol.states


class TestLazyMaterialization:
    def test_states_materialized_counter_fires_once(self):
        sink = InMemorySink()
        with use_telemetry(Telemetry([sink])):
            protocol = PhaseDoublingProtocol(levels=2, theta=2)
            first = protocol.states
            second = protocol.states
        assert first is second
        assert sink.total("protocol.states_materialized") == len(first)
        (record,) = [r for r in sink.records
                     if r["name"] == "protocol.states_materialized"]
        assert record["labels"]["protocol"] == protocol.name

    def test_construction_does_not_materialize(self):
        sink = InMemorySink()
        with use_telemetry(Telemetry([sink])):
            PhaseDoublingProtocol(levels=25)
        assert sink.total("protocol.states_materialized") == 0


class TestLazyTables:
    @pytest.mark.parametrize("factory", [
        ThreeStateProtocol,
        FourStateProtocol,
        lambda: AVCProtocol(m=5, d=2),
        lambda: PhaseDoublingProtocol(levels=2, theta=2),
        lambda: LogStateMajorityProtocol(levels=2, phase_len=2),
    ], ids=["three-state", "four-state", "avc", "phase-doubling",
            "log-state"])
    def test_chunked_rows_match_dense_table(self, factory):
        protocol = factory()
        out_x, out_y = protocol.transition_matrix()
        covered = 0
        for rows, chunk_x, chunk_y in protocol.iter_transition_rows(
                block=3):
            assert (out_x[rows] == chunk_x).all()
            assert (out_y[rows] == chunk_y).all()
            covered += chunk_x.shape[0]
        assert covered == protocol.num_states

    def test_table_matches_transition_index(self):
        protocol = PhaseDoublingProtocol(levels=2, theta=2)
        out_x, out_y = protocol.transition_matrix()
        s = protocol.num_states
        for i in range(0, s, 7):
            for j in range(0, s, 5):
                assert protocol.transition_index(i, j) == (
                    out_x[i, j], out_y[i, j])


class TestDenseTableGuard:
    def test_supports_dense_tables_thresholds(self):
        assert PhaseDoublingProtocol(levels=2).supports_dense_tables
        big = PhaseDoublingProtocol(levels=300)
        assert big.num_states > MAX_DENSE_STATES
        assert not big.supports_dense_tables

    def test_transition_matrix_guard(self):
        big = PhaseDoublingProtocol(levels=300)
        with pytest.raises(ProtocolError, match="iter_transition_rows"):
            big.transition_matrix()

    def test_dense_engines_reject_oversized_protocols(self):
        from repro.sim import engines

        big = PhaseDoublingProtocol(levels=300)
        for name in ("ensemble", "count-ensemble"):
            with pytest.raises(InvalidParameterError,
                               match="dense"):
                engines.create(big, name)

    def test_simulate_rejects_oversized_explicit_ensemble(self):
        # The guard must fire on the simulate() fast path too, not
        # only on registry construction — the explicit-engine branch
        # of resolve_trial_engine used to bypass it and fail deep in
        # table materialization.
        big = PhaseDoublingProtocol(levels=300)
        for engine in ("ensemble", "count-ensemble"):
            with pytest.raises(InvalidParameterError, match="dense"):
                simulate(RunSpec(big, n=50, epsilon=0.2, num_trials=2,
                                 seed=0, engine=engine))

    def test_auto_policy_routes_oversized_to_sparse(self):
        from repro.sim import engines

        big = PhaseDoublingProtocol(levels=300)
        resolved = engines.resolve_name("auto", big, num_trials=8,
                                        n=1000)
        assert resolved.startswith("count")
        assert "ensemble" not in resolved


class TestDeprecationShim:
    def test_states_override_warns(self):
        with pytest.warns(DeprecationWarning,
                          match="implement enumerate_states"):
            class _Legacy(ThreeStateProtocol):
                name = "legacy-three-state"

                @property
                def states(self):
                    return ("A", "B", "_")

        self._legacy_cls = _Legacy

    def test_enumerate_states_override_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")

            class _Modern(ThreeStateProtocol):
                def enumerate_states(self):
                    return ("A", "B", "_")

    def test_shimmed_protocol_is_bit_identical(self):
        """The deprecated eager pattern keeps working, bit for bit:
        same states, same index order, same RNG streams."""
        with pytest.warns(DeprecationWarning):
            class _Legacy(ThreeStateProtocol):
                @property
                def states(self):
                    return ("A", "B", "_")

        legacy = _Legacy()
        modern = ThreeStateProtocol()
        assert legacy.states == modern.states
        baseline = simulate(RunSpec(modern, n=100, epsilon=0.2,
                                    num_trials=3, seed=7,
                                    engine="count"))
        shimmed = simulate(RunSpec(legacy, n=100, epsilon=0.2,
                                   num_trials=3, seed=7,
                                   engine="count"))
        assert ([(r.steps, r.decision) for r in shimmed]
                == [(r.steps, r.decision) for r in baseline])

    def test_base_default_requires_enumerate_states(self):
        class _Empty(PopulationProtocol):
            def transition(self, x, y):
                return x, y

            def output(self, state):
                return UNDECIDED

            def is_settled(self, counts):
                return False

        with pytest.raises(NotImplementedError,
                           match="enumerate_states"):
            _Empty().states
