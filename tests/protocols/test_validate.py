"""Tests for the protocol validator."""

import pytest

from repro import (
    AVCProtocol,
    FourStateProtocol,
    IntervalConsensusProtocol,
    PairwiseLeaderElection,
    ThreeStateProtocol,
    VoterProtocol,
)
from repro.errors import ProtocolError
from repro.protocols.base import MAJORITY_A, PopulationProtocol
from repro.protocols.validate import validate_protocol


@pytest.mark.parametrize("protocol", [
    ThreeStateProtocol(),
    FourStateProtocol(),
    IntervalConsensusProtocol(),
    VoterProtocol(),
    AVCProtocol(m=3, d=1),
    PairwiseLeaderElection(),
], ids=lambda p: p.name)
def test_library_protocols_validate(protocol):
    validate_protocol(protocol, max_agents=4)


class _Broken(PopulationProtocol):
    """Configurable pathological protocol for negative tests."""

    name = "broken"

    def __init__(self, *, escape=False, nondeterministic=False,
                 bad_output=False, eager_settled=False,
                 lies_about_unanimity=False,
                 count_sensitive_but_undeclared=False):
        self._escape = escape
        self._bad_output = bad_output
        self._eager_settled = eager_settled
        self._nondeterministic = nondeterministic
        self._flip = False
        self.unanimity_settles = lies_about_unanimity
        self._count_sensitive = count_sensitive_but_undeclared

    def enumerate_states(self):
        return ("a", "b")

    def transition(self, x, y):
        if self._escape and (x, y) == ("a", "b"):
            return "z", "b"
        if self._nondeterministic and (x, y) == ("a", "b"):
            self._flip = not self._flip
            return ("a", "a") if self._flip else ("b", "b")
        if self._eager_settled and (x, y) == ("a", "b"):
            return "a", "a"  # changes b's output: nothing is settled
        return x, y

    def output(self, state):
        if self._bad_output:
            return "yes"
        return MAJORITY_A if state == "a" else 0

    def is_settled(self, counts):
        if self._eager_settled:
            return True
        if self._count_sensitive:
            return counts.get("a", 0) == 2
        a = counts.get("a", 0)
        b = counts.get("b", 0)
        return (a == 0) != (b == 0)


def test_detects_state_space_escape():
    with pytest.raises(ProtocolError, match="left the state space"):
        validate_protocol(_Broken(escape=True))


def test_detects_nondeterminism():
    with pytest.raises(ProtocolError, match="non-deterministic"):
        validate_protocol(_Broken(nondeterministic=True))


def test_detects_bad_outputs():
    with pytest.raises(ProtocolError, match="output"):
        validate_protocol(_Broken(bad_output=True))


def test_detects_unsound_is_settled():
    with pytest.raises(ProtocolError, match="is_settled claims"):
        validate_protocol(_Broken(eager_settled=True))


def test_detects_false_unanimity_declaration():
    # For this protocol the identity dynamics makes a mixed {a, b}
    # configuration genuinely frozen-but-not-unanimous... is_settled
    # returns False there, while unanimity_settles would also say
    # False. The inconsistency shows up for counts like {a: 2}:
    # unanimity says settled; here is_settled agrees. So instead lie
    # the other way: count-sensitive predicate under the unanimity
    # flag.
    broken = _Broken(lies_about_unanimity=True,
                     count_sensitive_but_undeclared=True)
    with pytest.raises(ProtocolError):
        validate_protocol(broken)


def test_detects_count_sensitive_predicate_without_declaration():
    with pytest.raises(ProtocolError, match="support"):
        validate_protocol(_Broken(count_sensitive_but_undeclared=True))


def test_max_agents_validation():
    with pytest.raises(ProtocolError):
        validate_protocol(ThreeStateProtocol(), max_agents=1)
