"""Tests for the protocol DSL parser."""

import itertools

import pytest

from repro import RunSpec, ThreeStateProtocol, run_majority
from repro.errors import ProtocolError
from repro.protocols.dsl import parse_protocol
from repro.protocols.table import MajorityTableProtocol, TableProtocol

THREE_STATE_SPEC = """
# [AAE08, PVV09] approximate majority
states:  A B _
inputs:  A B
outputs: A=1 B=0

A + B -> A + _
B + A -> B + _
A + _ <-> A + A
B + _ <-> B + B
"""


class TestParsing:
    def test_three_state_round_trip(self):
        parsed = parse_protocol(THREE_STATE_SPEC, name="three-dsl")
        reference = ThreeStateProtocol()
        for x, y in itertools.product(reference.states, repeat=2):
            assert parsed.transition(x, y) == reference.transition(x, y), \
                (x, y)
        for state in reference.states:
            assert parsed.output(state) == reference.output(state)
        assert parsed.initial_state("A") == "A"

    def test_parsed_protocol_runs(self):
        parsed = parse_protocol(THREE_STATE_SPEC)
        result = run_majority(RunSpec(parsed, n=51, epsilon=5 / 51,
                                      seed=0))
        assert result.settled

    def test_plain_table_without_inputs(self):
        protocol = parse_protocol("""
        states: L F
        outputs: L=1 F=0
        L + L -> L + F
        """)
        assert isinstance(protocol, TableProtocol)
        assert not isinstance(protocol, MajorityTableProtocol)
        assert protocol.transition("L", "L") == ("L", "F")

    def test_bidirectional_shorthand(self):
        protocol = parse_protocol("""
        states: a b c
        a + b <-> c + c
        """)
        assert protocol.transition("a", "b") == ("c", "c")
        assert protocol.transition("b", "a") == ("c", "c")

    def test_ordered_rules_stay_ordered(self):
        protocol = parse_protocol("""
        states: a b
        a + b -> a + a
        """)
        assert protocol.transition("a", "b") == ("a", "a")
        assert protocol.transition("b", "a") == ("b", "a")  # no-op

    def test_comments_and_blank_lines_ignored(self):
        protocol = parse_protocol("""
        # leading comment
        states: a b   # trailing comment

        a + b -> b + b  # another
        """)
        assert protocol.transition("a", "b") == ("b", "b")


class TestErrors:
    @pytest.mark.parametrize("spec,fragment", [
        ("a + b -> a + a", "states: must come"),
        ("states: a\nstates: a", "duplicate states"),
        ("states:", "at least one"),
        ("states: a b\ninputs: a", "exactly two"),
        ("states: a b\noutputs: a=2", "bad output"),
        ("states: a b\na + z -> a + a", "unknown state"),
        ("states: a b\na + b => a + a", "expected"),
        ("states: a b\na + b -> a + a\na + b -> b + b", "conflicting"),
        ("", "missing states"),
    ])
    def test_syntax_errors(self, spec, fragment):
        with pytest.raises(ProtocolError, match=fragment):
            parse_protocol(spec)

    def test_conflicting_mirror(self):
        with pytest.raises(ProtocolError, match="conflicting mirrored"):
            parse_protocol("""
            states: a b c
            b + a -> a + a
            a + b <-> c + c
            """)

    def test_inputs_must_satisfy_output_convention(self):
        with pytest.raises(Exception):
            parse_protocol("""
            states: a b
            inputs: a b
            outputs: a=0 b=1
            """)
