"""Tests for the protocol registry and its RunSpec / wire-form hooks."""

import pytest

from repro import (
    AVCProtocol,
    InvalidParameterError,
    PhaseDoublingProtocol,
    RunSpec,
    ThreeStateProtocol,
)
from repro.protocols import registry
from repro.protocols.base import PopulationProtocol


class TestRegistry:
    def test_builtins_available(self):
        names = registry.available()
        for expected in ("avc", "three-state", "four-state", "voter",
                         "phase-doubling", "log-state",
                         "leader-election"):
            assert expected in names
        assert names == tuple(sorted(names))

    def test_create_with_params(self):
        protocol = registry.create("avc", {"m": 15, "d": 2})
        assert isinstance(protocol, AVCProtocol)
        assert protocol.params.m == 15
        assert protocol.params.d == 2

    def test_create_without_params(self):
        assert isinstance(registry.create("three-state"),
                          ThreeStateProtocol)

    def test_unknown_name_lists_available(self):
        with pytest.raises(InvalidParameterError,
                           match="unknown protocol.*three-state"):
            registry.create("majority-deluxe")

    def test_bad_param_name_is_invalid_parameter(self):
        # A typo'd keyword must surface as the 422-mapped error type,
        # not a bare TypeError.
        with pytest.raises(InvalidParameterError,
                           match="phase-doubling.*rejected"):
            registry.create("phase-doubling", {"levls": 3})

    def test_bad_param_value_propagates(self):
        with pytest.raises(InvalidParameterError):
            registry.create("phase-doubling", {"levels": 0})

    def test_non_string_param_key_rejected(self):
        with pytest.raises(InvalidParameterError, match="strings"):
            registry.create("avc", {3: 1})

    def test_register_requires_replace_to_shadow(self):
        with pytest.raises(InvalidParameterError, match="replace"):
            registry.register("avc", lambda: None)

    def test_register_unregister_round_trip(self):
        registry.register("test-proto", ThreeStateProtocol,
                          description="for this test")
        try:
            assert "test-proto" in registry.available()
            assert registry.get("test-proto").description == \
                "for this test"
            assert isinstance(registry.create("test-proto"),
                              ThreeStateProtocol)
        finally:
            registry.unregister("test-proto")
        assert "test-proto" not in registry.available()
        with pytest.raises(InvalidParameterError):
            registry.unregister("test-proto")

    def test_factory_must_return_protocol(self):
        registry.register("test-broken", lambda: object())
        try:
            with pytest.raises(InvalidParameterError,
                               match="not a PopulationProtocol"):
                registry.create("test-broken")
        finally:
            registry.unregister("test-broken")

    def test_rejects_bad_names(self):
        with pytest.raises(InvalidParameterError):
            registry.register("", ThreeStateProtocol)
        with pytest.raises(InvalidParameterError):
            registry.register(None, ThreeStateProtocol)


class TestRunSpecByName:
    def test_string_protocol_resolves(self):
        spec = RunSpec("three-state", n=100, epsilon=0.2, seed=0)
        assert isinstance(spec.protocol, ThreeStateProtocol)

    def test_tuple_protocol_resolves(self):
        spec = RunSpec(("phase-doubling", {"levels": 3, "theta": 2}),
                       n=100, epsilon=0.2, seed=0)
        assert isinstance(spec.protocol, PhaseDoublingProtocol)
        assert spec.protocol.levels == 3

    def test_by_name_key_matches_direct_construction(self):
        # The run-store fingerprint is computed from the resolved
        # instance, so by-name specs share cache entries with
        # directly-constructed ones.
        by_name = RunSpec(("avc", {"m": 15, "d": 1}), n=200,
                          epsilon=0.1, num_trials=3, seed=7)
        direct = RunSpec(AVCProtocol(m=15, d=1), n=200, epsilon=0.1,
                         num_trials=3, seed=7)
        assert by_name.key() == direct.key()
        assert (RunSpec("three-state", n=100, epsilon=0.2, seed=0).key()
                == RunSpec(ThreeStateProtocol(), n=100, epsilon=0.2,
                           seed=0).key())

    def test_unknown_name_raises(self):
        with pytest.raises(InvalidParameterError, match="unknown"):
            RunSpec("majority-deluxe", n=100, epsilon=0.2)

    def test_malformed_tuple_raises(self):
        with pytest.raises(InvalidParameterError, match="name, params"):
            RunSpec(("avc", {"m": 15}, "extra"), n=100, epsilon=0.2)


class TestWireForm:
    def _payload(self, protocol):
        return {"schema": 1, "protocol": protocol, "n": 100,
                "epsilon": 0.2, "seed": 0}

    def test_registry_form_round_trips(self):
        spec = RunSpec.from_json(self._payload(
            {"name": "phase-doubling",
             "params": {"levels": 3, "theta": 2}}))
        assert isinstance(spec.protocol, PhaseDoublingProtocol)
        direct = RunSpec(PhaseDoublingProtocol(levels=3, theta=2),
                         n=100, epsilon=0.2, seed=0)
        assert spec.key() == direct.key()

    def test_registry_form_params_optional(self):
        spec = RunSpec.from_json(self._payload({"name": "three-state"}))
        assert isinstance(spec.protocol, ThreeStateProtocol)

    def test_unknown_registry_name_is_422_error(self):
        with pytest.raises(InvalidParameterError, match="unknown"):
            RunSpec.from_json(self._payload(
                {"name": "majority-deluxe"}))

    def test_bad_registry_params_is_422_error(self):
        with pytest.raises(InvalidParameterError, match="rejected"):
            RunSpec.from_json(self._payload(
                {"name": "phase-doubling", "params": {"levls": 3}}))

    def test_registry_form_rejects_extra_fields(self):
        with pytest.raises(InvalidParameterError):
            RunSpec.from_json(self._payload(
                {"name": "three-state", "turbo": True}))
