"""Tests for the phase-clocked successor protocols.

Covers the exactness invariant (conserved signed token mass), full
validation on small instances, lazy reachable-closure regressions on
paper-sized instances, correctness across engines/margins/majorities,
and the wire forms.
"""

import math

import numpy as np
import pytest

from repro import (
    InvalidParameterError,
    LogStateMajorityProtocol,
    MAJORITY_A,
    MAJORITY_B,
    PhaseDoublingProtocol,
    RunSpec,
    protocol_from_dict,
    protocol_to_dict,
    simulate,
    validate_protocol,
)
from repro.protocols.successors import (
    FOLLOWER_LEVEL,
    OPINION_A,
    OPINION_B,
    ROLE_CLOCK,
    ROLE_TOKEN,
    _circular_clock,
)
from repro.protocols.validate import reachable_closure

ALL = (PhaseDoublingProtocol, LogStateMajorityProtocol)


def small(cls):
    """A fully-validatable instance (tiny clock and level budget)."""
    if cls is PhaseDoublingProtocol:
        return cls(levels=2, theta=2)
    return cls(levels=2, phase_len=2)


def _initial_support(protocol):
    return [protocol.initial_state("A"), protocol.initial_state("B")]


class TestCircularClock:
    def test_equal_clocks_tick(self):
        assert _circular_clock(3, 3, 8) == 4
        assert _circular_clock(7, 7, 8) == 0  # wraps

    def test_leader_wins_within_half_circle(self):
        assert _circular_clock(1, 4, 8) == 4
        assert _circular_clock(4, 1, 8) == 4  # symmetric

    def test_far_ahead_reads_as_behind(self):
        assert _circular_clock(0, 7, 8) == 0


class TestConstruction:
    @pytest.mark.parametrize("cls", ALL)
    def test_rejects_bad_levels(self, cls):
        with pytest.raises(InvalidParameterError):
            cls(levels=0)

    def test_rejects_bad_clock_params(self):
        with pytest.raises(InvalidParameterError):
            PhaseDoublingProtocol(levels=2, theta=0)
        with pytest.raises(InvalidParameterError):
            LogStateMajorityProtocol(levels=2, phase_len=0)

    @pytest.mark.parametrize("cls", ALL)
    def test_for_population_sizes_levels_log2(self, cls):
        for n in (2, 100, 1000, 100_000):
            protocol = cls.for_population(n)
            assert protocol.levels == max(1, math.ceil(math.log2(n)))
        with pytest.raises(InvalidParameterError):
            cls.for_population(1)

    def test_state_count_formulas(self):
        # phase-doubling: full product 2*theta x 2 x (levels + 2).
        p = PhaseDoublingProtocol(levels=9, theta=4)
        assert p.num_states == 8 * 2 * 11 == 176
        # log-state: additive union of roles, far below the product.
        q = LogStateMajorityProtocol(levels=9, phase_len=4)
        assert q.num_states == 4 * 10 + 2 + 4 * 4 == 58
        assert q.num_states < q.product_size == 3 * 2 * 10 * 8

    @pytest.mark.parametrize("cls", ALL)
    def test_initial_state_rejects_unknown_symbol(self, cls):
        with pytest.raises(ValueError):
            small(cls).initial_state("C")


class TestValidation:
    @pytest.mark.parametrize("cls", ALL)
    def test_full_validation_on_small_instances(self, cls):
        validate_protocol(small(cls), max_agents=3)

    @pytest.mark.parametrize("cls", ALL)
    def test_reachable_slice_validation(self, cls):
        protocol = cls(levels=3, theta=2) \
            if cls is PhaseDoublingProtocol else cls(levels=3, phase_len=2)
        validate_protocol(protocol, max_agents=2,
                          initial=protocol.initial_counts(2, 1))


class TestReachableClosure:
    """Paper-sized instances: the closure stays tiny relative to the
    declared space and is reached without materializing it."""

    def test_phase_doubling_closure_size(self):
        protocol = PhaseDoublingProtocol(levels=20, theta=8)
        closure = reachable_closure(protocol,
                                    _initial_support(protocol))
        # The full product is reachable (every clock value, opinion,
        # level combination) — pinned so rule changes that grow or
        # shrink the dynamics are caught.
        assert len(closure) == 704 == 16 * 2 * 22
        assert getattr(protocol, "_states_cache", None) is None

    def test_log_state_closure_size(self):
        protocol = LogStateMajorityProtocol(levels=20, phase_len=8)
        closure = reachable_closure(protocol,
                                    _initial_support(protocol))
        # The pruned additive space (118 states) is fully reachable,
        # and sits far below the raw 4-field product the pruning
        # carves it from.
        assert len(closure) == 118
        assert protocol.product_size == 3 * 2 * 21 * 16
        assert len(closure) < protocol.product_size
        # The walk (and product_size) never forced the state tuple...
        assert getattr(protocol, "_states_cache", None) is None
        # ...which, once materialized, matches the closure exactly.
        assert len(closure) == protocol.num_states

    @pytest.mark.parametrize("cls", ALL)
    def test_closure_scales_with_levels(self, cls):
        sizes = []
        for levels in (2, 4, 8):
            protocol = (cls(levels=levels, theta=2)
                        if cls is PhaseDoublingProtocol
                        else cls(levels=levels, phase_len=2))
            sizes.append(len(reachable_closure(
                protocol, _initial_support(protocol))))
        assert sizes == sorted(sizes)


class TestInvariant:
    """Every rule preserves the signed token mass — checked along a
    simulated trajectory, not just rule-by-rule."""

    @pytest.mark.parametrize("cls", ALL)
    def test_signed_weight_conserved_along_trajectory(self, cls):
        protocol = (cls(levels=4, theta=2)
                    if cls is PhaseDoublingProtocol
                    else cls(levels=4, phase_len=2))
        count_a, count_b = 11, 5
        agents = ([protocol.initial_state("A")] * count_a
                  + [protocol.initial_state("B")] * count_b)
        expected = (count_a - count_b) * (1 << protocol.levels)

        def mass():
            counts = {}
            for state in agents:
                counts[state] = counts.get(state, 0) + 1
            return protocol.total_signed_weight(counts)

        assert mass() == expected
        rng = np.random.default_rng(42)
        for _ in range(2000):
            i, j = rng.choice(len(agents), size=2, replace=False)
            agents[i], agents[j] = protocol.transition(agents[i],
                                                       agents[j])
            assert mass() == expected

    @pytest.mark.parametrize("cls", ALL)
    def test_unanimity_is_absorbing(self, cls):
        protocol = small(cls)
        agents = [protocol.initial_state("A")] * 8
        rng = np.random.default_rng(3)
        for _ in range(500):
            i, j = rng.choice(len(agents), size=2, replace=False)
            agents[i], agents[j] = protocol.transition(agents[i],
                                                       agents[j])
        assert all(protocol.output(s) == MAJORITY_A for s in agents)

    def test_weight_accounting_roles(self):
        protocol = PhaseDoublingProtocol(levels=3)
        assert protocol.total_signed_weight(
            {(0, OPINION_A, 0): 1}) == 8
        assert protocol.total_signed_weight(
            {(0, OPINION_B, 3): 2}) == -2
        assert protocol.total_signed_weight(
            {(0, OPINION_A, FOLLOWER_LEVEL): 5}) == 0
        log = LogStateMajorityProtocol(levels=3)
        assert log.total_signed_weight(
            {(ROLE_TOKEN, OPINION_A, 1, 0): 1,
             (ROLE_CLOCK, OPINION_B, 0, 5): 9}) == 4


class TestCorrectness:
    """Exact majority: the decision matches the initial majority on
    every engine, every seed, and down to single-agent margins."""

    @pytest.mark.parametrize("cls", ALL)
    @pytest.mark.parametrize("engine", ["count", "agent", "ensemble"])
    def test_decides_majority_across_engines(self, cls, engine):
        protocol = cls.for_population(100)
        results = simulate(RunSpec(protocol, n=100, epsilon=0.2,
                                   num_trials=3, seed=11,
                                   engine=engine))
        assert all(r.settled for r in results)
        assert all(r.decision == MAJORITY_A for r in results)

    @pytest.mark.parametrize("cls", ALL)
    def test_decides_minority_margin_one(self, cls):
        # majority B with the smallest possible margin (one agent).
        protocol = cls.for_population(101)
        results = simulate(RunSpec(protocol, n=101, epsilon=1 / 101,
                                   majority="B", num_trials=4,
                                   seed=23, engine="count"))
        assert all(r.settled for r in results)
        assert all(r.decision == MAJORITY_B for r in results)

    @pytest.mark.parametrize("cls", ALL)
    def test_never_errs_across_seeds(self, cls):
        protocol = cls.for_population(60)
        for seed in range(5):
            (result,) = simulate(RunSpec(protocol, n=60, epsilon=0.1,
                                         num_trials=1, seed=seed,
                                         engine="count"))
            assert result.settled and result.decision == MAJORITY_A


class TestWireForm:
    @pytest.mark.parametrize("cls,kind,params", [
        (PhaseDoublingProtocol, "phase-doubling",
         {"levels": 5, "theta": 3}),
        (LogStateMajorityProtocol, "log-state",
         {"levels": 5, "phase_len": 3}),
    ])
    def test_round_trip(self, cls, kind, params):
        protocol = cls(**params)
        payload = protocol_to_dict(protocol)
        assert payload == {"kind": kind, **params}
        rebuilt = protocol_from_dict(payload)
        assert isinstance(rebuilt, cls)
        assert rebuilt.name == protocol.name
        assert rebuilt.states == protocol.states
