"""Tests for the three-state approximate majority protocol."""

import itertools

import pytest

from repro import MAJORITY_A, MAJORITY_B, ThreeStateProtocol, UNDECIDED
from repro.protocols.three_state import STATE_A, STATE_B, STATE_BLANK


@pytest.fixture
def protocol():
    return ThreeStateProtocol()


class TestTransitions:
    def test_conflict_blanks_the_responder(self, protocol):
        assert protocol.transition(STATE_A, STATE_B) == (STATE_A, STATE_BLANK)
        assert protocol.transition(STATE_B, STATE_A) == (STATE_B, STATE_BLANK)

    def test_decided_recruits_blank(self, protocol):
        assert protocol.transition(STATE_A, STATE_BLANK) == (STATE_A, STATE_A)
        assert protocol.transition(STATE_BLANK, STATE_A) == (STATE_A, STATE_A)
        assert protocol.transition(STATE_B, STATE_BLANK) == (STATE_B, STATE_B)
        assert protocol.transition(STATE_BLANK, STATE_B) == (STATE_B, STATE_B)

    def test_equal_states_are_noops(self, protocol):
        for state in protocol.states:
            assert protocol.transition(state, state) == (state, state)

    def test_transition_total(self, protocol):
        valid = set(protocol.states)
        for x, y in itertools.product(protocol.states, repeat=2):
            new_x, new_y = protocol.transition(x, y)
            assert new_x in valid and new_y in valid

    def test_number_of_decided_agents_never_decreases_by_two(self, protocol):
        """A single interaction blanks at most one decided agent."""
        def decided(*states):
            return sum(1 for s in states if s != STATE_BLANK)

        for x, y in itertools.product(protocol.states, repeat=2):
            new_x, new_y = protocol.transition(x, y)
            assert decided(new_x, new_y) >= decided(x, y) - 1


class TestOutputs:
    def test_outputs(self, protocol):
        assert protocol.output(STATE_A) == MAJORITY_A
        assert protocol.output(STATE_B) == MAJORITY_B
        assert protocol.output(STATE_BLANK) is UNDECIDED


class TestSettled:
    def test_all_a_settled(self, protocol):
        assert protocol.is_settled({STATE_A: 10})

    def test_all_b_settled(self, protocol):
        assert protocol.is_settled({STATE_B: 3})

    def test_blank_blocks_settlement(self, protocol):
        assert not protocol.is_settled({STATE_A: 9, STATE_BLANK: 1})

    def test_mixed_not_settled(self, protocol):
        assert not protocol.is_settled({STATE_A: 5, STATE_B: 5})

    def test_all_blank_not_settled(self, protocol):
        # All-blank is unreachable from valid inputs but must not
        # count as settled (no defined output).
        assert not protocol.is_settled({STATE_BLANK: 4})

    def test_empty_not_settled(self, protocol):
        assert not protocol.is_settled({})


class TestInitial:
    def test_initial_states(self, protocol):
        assert protocol.initial_state("A") == STATE_A
        assert protocol.initial_state("B") == STATE_B

    def test_initial_counts(self, protocol):
        counts = protocol.initial_counts(3, 2)
        assert counts == {STATE_A: 3, STATE_B: 2}

    def test_decision_helper(self, protocol):
        assert protocol.decision({STATE_A: 5}) == MAJORITY_A
        assert protocol.decision({STATE_B: 5}) == MAJORITY_B
        assert protocol.decision({STATE_A: 1, STATE_B: 1}) is UNDECIDED
        assert protocol.decision({STATE_A: 1, STATE_BLANK: 1}) is UNDECIDED
