"""Tests for table-driven protocols."""

import pytest

from repro import (
    FourStateProtocol,
    InvalidParameterError,
    MajorityTableProtocol,
    TableProtocol,
)
from repro.errors import InvalidStateError


def four_state_as_table():
    """The four-state protocol expressed as an unordered rule table."""
    return MajorityTableProtocol(
        states=("+1", "-1", "+0", "-0"),
        transitions={
            ("+1", "-1"): ("+0", "-0"),
            ("+1", "-0"): ("+1", "+0"),
            ("-1", "+0"): ("-1", "-0"),
        },
        outputs={"+1": 1, "+0": 1, "-1": 0, "-0": 0},
        input_a="+1",
        input_b="-1",
        name="four-state-table",
    )


class TestConstruction:
    def test_duplicate_states_rejected(self):
        with pytest.raises(InvalidParameterError):
            TableProtocol(("a", "a"), {}, {})

    def test_unknown_state_in_table_rejected(self):
        with pytest.raises(InvalidStateError):
            TableProtocol(("a", "b"), {("a", "z"): ("a", "a")}, {})

    def test_missing_pairs_are_noops(self):
        protocol = TableProtocol(("a", "b"), {}, {"a": 0, "b": 1})
        assert protocol.transition("a", "b") == ("a", "b")

    def test_symmetric_expansion(self):
        protocol = TableProtocol(
            ("a", "b"), {("a", "b"): ("a", "a")}, {"a": 0, "b": 1})
        assert protocol.transition("a", "b") == ("a", "a")
        assert protocol.transition("b", "a") == ("a", "a")

    def test_asymmetric_tables_supported(self):
        protocol = TableProtocol(
            ("a", "b"),
            {("a", "b"): ("a", "a"), ("b", "a"): ("b", "b")},
            {"a": 0, "b": 1},
            symmetric=False)
        assert protocol.transition("a", "b") == ("a", "a")
        assert protocol.transition("b", "a") == ("b", "b")

    def test_plain_table_has_no_inputs(self):
        protocol = TableProtocol(("a", "b"), {}, {"a": 0})
        with pytest.raises(InvalidParameterError):
            protocol.initial_state("A")


class TestMajorityTable:
    def test_matches_hand_written_four_state(self):
        table = four_state_as_table()
        reference = FourStateProtocol()
        mapping = dict(zip(table.states, reference.states))
        for x in table.states:
            for y in table.states:
                got = table.transition(x, y)
                expected = reference.transition(mapping[x], mapping[y])
                assert tuple(mapping[s] for s in got) == expected

    def test_inputs_must_be_states(self):
        with pytest.raises(InvalidStateError):
            MajorityTableProtocol(("a", "b"), {}, {"a": 1, "b": 0},
                                  input_a="z", input_b="b")

    def test_input_outputs_enforced(self):
        with pytest.raises(InvalidParameterError):
            MajorityTableProtocol(("a", "b"), {}, {"a": 0, "b": 1},
                                  input_a="a", input_b="b")

    def test_distinct_inputs_enforced(self):
        with pytest.raises(InvalidParameterError):
            MajorityTableProtocol(("a", "b"), {}, {"a": 1, "b": 0},
                                  input_a="a", input_b="a")

    def test_initial_state(self):
        table = four_state_as_table()
        assert table.initial_state("A") == "+1"
        assert table.initial_state("B") == "-1"


class TestSupportClosure:
    def test_closure_of_absorbing_support(self):
        table = four_state_as_table()
        closure = table.support_closure(frozenset({"+1", "+0"}))
        assert closure == frozenset({"+1", "+0"})

    def test_closure_expands_through_interactions(self):
        table = four_state_as_table()
        closure = table.support_closure(frozenset({"+1", "-1"}))
        assert closure == frozenset({"+1", "-1", "+0", "-0"})

    def test_is_settled_sound(self):
        table = four_state_as_table()
        assert table.is_settled({"+1": 2, "+0": 3})
        assert not table.is_settled({"+1": 1, "-1": 1})
        assert not table.is_settled({})

    def test_is_settled_requires_defined_outputs(self):
        protocol = TableProtocol(("a", "b"), {}, {"a": 0})
        assert not protocol.is_settled({"b": 3})  # b has no output
        assert protocol.is_settled({"a": 3})
