"""Tests for binary interval consensus (the general-graph 4-state
exact protocol)."""

import itertools

import networkx as nx
import pytest

from repro import (
    FourStateProtocol,
    IntervalConsensusProtocol,
    RunSpec,
    run_majority,
)
from repro.protocols.four_state import (
    STRONG_MINUS,
    STRONG_PLUS,
    WEAK_MINUS,
    WEAK_PLUS,
)
from repro.protocols.validate import validate_protocol


@pytest.fixture
def protocol():
    return IntervalConsensusProtocol()


class TestTransitions:
    def test_annihilation_matches_clique_protocol(self, protocol):
        assert protocol.transition(STRONG_PLUS, STRONG_MINUS) \
            == (WEAK_PLUS, WEAK_MINUS)

    def test_strong_token_moves_through_weak(self, protocol):
        # The strong token swaps onto the weak agent's node.
        assert protocol.transition(STRONG_PLUS, WEAK_MINUS) \
            == (WEAK_PLUS, STRONG_PLUS)
        assert protocol.transition(WEAK_PLUS, STRONG_MINUS) \
            == (STRONG_MINUS, WEAK_MINUS)
        assert protocol.transition(STRONG_MINUS, WEAK_MINUS) \
            == (WEAK_MINUS, STRONG_MINUS)

    def test_strong_count_conserved_except_annihilation(self, protocol):
        def strong_count(*states):
            return sum(1 for s in states
                       if s in (STRONG_PLUS, STRONG_MINUS))

        for x, y in itertools.product(protocol.states, repeat=2):
            new_x, new_y = protocol.transition(x, y)
            before, after = strong_count(x, y), strong_count(new_x, new_y)
            if {x, y} == {STRONG_PLUS, STRONG_MINUS}:
                assert after == before - 2
            else:
                assert after == before

    def test_sign_balance_invariant(self, protocol):
        """#(+1) - #(-1) is conserved — the exactness invariant."""
        def balance(*states):
            return (sum(1 for s in states if s == STRONG_PLUS)
                    - sum(1 for s in states if s == STRONG_MINUS))

        for x, y in itertools.product(protocol.states, repeat=2):
            new_x, new_y = protocol.transition(x, y)
            assert balance(x, y) == balance(new_x, new_y)

    def test_validates(self, protocol):
        validate_protocol(protocol, max_agents=4)


class TestCliqueEquivalence:
    def test_same_configuration_chain_as_clique_protocol(self, protocol):
        """On unordered configurations both four-state variants induce
        the same multiset dynamics (token identity is invisible)."""
        clique = FourStateProtocol()
        for x, y in itertools.product(protocol.states, repeat=2):
            ours = sorted(protocol.transition(x, y))
            theirs = sorted(clique.transition(x, y))
            assert ours == theirs, (x, y)

    def test_clique_runs_match_statistically(self, protocol):
        from repro.rng import spawn_many
        from repro.sim import CountEngine

        def mean_time(proto, seed):
            engine = CountEngine(proto)
            times = [engine.run(proto.initial_counts(30, 21),
                                rng=child).parallel_time
                     for child in spawn_many(seed, 40)]
            return sum(times) / len(times)

        ours = mean_time(protocol, 5)
        clique = mean_time(FourStateProtocol(), 6)
        assert ours == pytest.approx(clique, rel=0.35)


class TestGeneralGraphExactness:
    @pytest.mark.parametrize("graph", [
        nx.cycle_graph(15),
        nx.path_graph(15),
        nx.star_graph(14),
    ], ids=("ring", "path", "star"))
    def test_exact_on_sparse_graphs(self, protocol, graph):
        for seed in range(4):
            result = run_majority(RunSpec(protocol, count_a=9,
                                          count_b=6, graph=graph,
                                          seed=seed))
            assert result.settled
            assert result.decision == 1
