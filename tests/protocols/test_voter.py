"""Tests for the two-state voter model."""

import pytest

from repro import MAJORITY_A, MAJORITY_B, VoterProtocol


@pytest.fixture
def protocol():
    return VoterProtocol()


def test_responder_copies_initiator(protocol):
    assert protocol.transition("A", "B") == ("A", "A")
    assert protocol.transition("B", "A") == ("B", "B")
    assert protocol.transition("A", "A") == ("A", "A")


def test_outputs(protocol):
    assert protocol.output("A") == MAJORITY_A
    assert protocol.output("B") == MAJORITY_B


def test_settled_only_when_unanimous(protocol):
    assert protocol.is_settled({"A": 5})
    assert protocol.is_settled({"B": 2})
    assert not protocol.is_settled({"A": 1, "B": 1})
    assert not protocol.is_settled({})


def test_initial_states(protocol):
    assert protocol.initial_state("A") == "A"
    assert protocol.initial_state("B") == "B"
    with pytest.raises(ValueError):
        protocol.initial_state("X")
