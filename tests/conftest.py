"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AVCProtocol,
    FourStateProtocol,
    ThreeStateProtocol,
    VoterProtocol,
)


@pytest.fixture
def rng():
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def three_state():
    return ThreeStateProtocol()


@pytest.fixture
def four_state():
    return FourStateProtocol()


@pytest.fixture
def voter():
    return VoterProtocol()


@pytest.fixture
def avc_small():
    """A small AVC instance exercising all rule branches (m=5, d=2)."""
    return AVCProtocol(m=5, d=2)


@pytest.fixture(params=[(1, 1), (1, 3), (3, 1), (5, 2), (9, 4)],
                ids=lambda md: f"m{md[0]}d{md[1]}")
def avc_grid(request):
    """A grid of AVC parameterizations for exhaustive rule checks."""
    m, d = request.param
    return AVCProtocol(m=m, d=d)
