"""Tests for random-number plumbing."""

import numpy as np
import pytest

from repro.rng import ensure_rng, spawn, spawn_many, stream


class TestEnsureRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seeds_deterministically(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawning:
    def test_spawn_count(self):
        children = spawn(ensure_rng(0), 3)
        assert len(children) == 3

    def test_spawn_many_reproducible(self):
        first = [g.integers(0, 10**9) for g in spawn_many(7, 4)]
        second = [g.integers(0, 10**9) for g in spawn_many(7, 4)]
        assert first == second

    def test_spawned_streams_differ(self):
        draws = [g.integers(0, 10**9) for g in spawn_many(7, 10)]
        assert len(set(draws)) == 10

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_many(0, -1)
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)

    def test_stream_yields_distinct_generators(self):
        generators = stream(11)
        draws = [next(generators).integers(0, 10**9) for _ in range(5)]
        assert len(set(draws)) == 5

    def test_stream_reproducible(self):
        first = [next(stream(3)).integers(0, 10**9)]
        second = [next(stream(3)).integers(0, 10**9)]
        assert first == second
