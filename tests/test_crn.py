"""Tests for the chemical-reaction-network bridge."""

import pytest

from repro import (
    AVCProtocol,
    FourStateProtocol,
    InvalidParameterError,
    ThreeStateProtocol,
)
from repro.crn import (
    GillespieSimulator,
    Reaction,
    ReactionNetwork,
    approximate_majority_crn,
    cell_cycle_switch,
    protocol_to_crn,
)
from repro.rng import spawn_many
from repro.sim import ContinuousTimeEngine


class TestReaction:
    def test_propensity_bimolecular(self):
        reaction = Reaction(("X", "Y"), ("X", "X"), rate=2.0)
        assert reaction.propensity({"X": 3, "Y": 4}, volume=2.0) == 12.0

    def test_propensity_homodimer(self):
        reaction = Reaction(("X", "X"), ("X", "Y"))
        assert reaction.propensity({"X": 5}, volume=1.0) == 20.0

    def test_propensity_unimolecular(self):
        reaction = Reaction(("X",), ("Y",), rate=0.5)
        assert reaction.propensity({"X": 6}, volume=10.0) == 3.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            Reaction((), ("X",))
        with pytest.raises(InvalidParameterError):
            Reaction(("X",), ("Y",), rate=0.0)

    def test_str(self):
        assert "X + Y -> B + Y" in str(Reaction(("X", "Y"), ("B", "Y")))


class TestNetwork:
    def test_unknown_species_rejected(self):
        with pytest.raises(InvalidParameterError):
            ReactionNetwork(("X",), (Reaction(("X", "Z"), ("X", "X")),))

    def test_stoichiometry(self):
        network = approximate_majority_crn()
        reaction = network.reactions[0]  # X + Y -> B + Y
        assert network.stoichiometry(reaction) == {"X": -1, "B": 1}

    def test_conserves_mass(self):
        assert approximate_majority_crn().conserves_mass()
        assert cell_cycle_switch().conserves_mass()


class TestCompilation:
    def test_three_state_compiles_to_am_network(self):
        network = protocol_to_crn(ThreeStateProtocol())
        assert set(network.species) == {"A", "B", "_"}
        assert network.conserves_mass()
        # Conflict (one orientation each) + two recruitment reactions
        # (both orientations -> rate 2).
        rates = sorted(r.rate for r in network.reactions)
        assert rates == [1.0, 1.0, 2.0, 2.0]

    def test_four_state_compiles(self):
        network = protocol_to_crn(FourStateProtocol())
        assert network.conserves_mass()
        # Annihilation + two weak-flip reactions.
        assert len(network.reactions) == 3

    def test_avc_compiles(self):
        protocol = AVCProtocol(m=5, d=1)
        network = protocol_to_crn(protocol)
        assert network.conserves_mass()
        assert len(network.species) == protocol.num_states


class TestSSA:
    def test_requires_a_stopping_rule(self):
        simulator = GillespieSimulator(approximate_majority_crn())
        with pytest.raises(InvalidParameterError):
            simulator.run({"X": 5, "Y": 5})

    def test_volume_validation(self):
        with pytest.raises(InvalidParameterError):
            GillespieSimulator(approximate_majority_crn(), volume=0.0)

    def test_unknown_species_rejected(self):
        simulator = GillespieSimulator(approximate_majority_crn())
        with pytest.raises(InvalidParameterError):
            simulator.run({"Q": 1}, t_max=1.0)

    def test_am_network_reaches_consensus(self):
        simulator = GillespieSimulator(approximate_majority_crn(),
                                       volume=99.0)
        result = simulator.run(
            {"X": 70, "Y": 30}, rng=1,
            stop=lambda c: c.get("Y", 0) == 0 and c.get("B", 0) == 0
            or c.get("X", 0) == 0 and c.get("B", 0) == 0)
        assert result.stopped
        assert result.total_molecules == 100

    def test_exhaustion_detected(self):
        # X + X -> X + Y with a single X can never fire.
        network = ReactionNetwork(
            ("X", "Y"), (Reaction(("X", "X"), ("X", "Y")),))
        result = GillespieSimulator(network).run({"X": 1}, t_max=10.0)
        assert result.exhausted

    def test_t_max_censoring(self):
        simulator = GillespieSimulator(cell_cycle_switch(), volume=50.0)
        result = simulator.run({"X": 30, "Y": 21}, rng=2, t_max=0.5)
        assert result.time == 0.5
        assert not result.stopped

    def test_cell_cycle_switch_computes_majority(self):
        """[CCN12]: CC resolves a majority input to the majority."""
        simulator = GillespieSimulator(cell_cycle_switch(), volume=99.0)

        def consensus(counts):
            others = (counts.get("Z", 0) + counts.get("W", 0))
            return others == 0 and (counts.get("X", 0) == 0
                                    or counts.get("Y", 0) == 0)

        wins = 0
        trials = 20
        for child in spawn_many(7, trials):
            result = simulator.run({"X": 65, "Y": 35}, rng=child,
                                   max_events=200_000, stop=consensus)
            assert result.stopped
            if result.counts.get("X", 0) > 0:
                wins += 1
        assert wins >= trials - 2  # X is a clear 65:35 majority

    def test_compiled_protocol_matches_continuous_engine(self):
        """The SSA over the compiled CRN and the continuous-time
        engine sample the same process: compare mean consensus times."""
        protocol = ThreeStateProtocol()
        n = 60
        network = protocol_to_crn(protocol)
        simulator = GillespieSimulator(network, volume=float(n - 1))

        def ssa_time(child):
            result = simulator.run(
                {"A": 40, "B": 20}, rng=child, max_events=10**6,
                stop=lambda c: (c.get("_", 0) == 0
                                and (c.get("A", 0) == 0
                                     or c.get("B", 0) == 0)))
            assert result.stopped
            return result.time

        trials = 60
        ssa_mean = sum(ssa_time(c) for c in spawn_many(11, trials)) / trials
        engine = ContinuousTimeEngine(protocol)
        engine_times = [
            engine.run(protocol.initial_counts(40, 20),
                       rng=child).continuous_time
            for child in spawn_many(12, trials)
        ]
        engine_mean = sum(engine_times) / trials
        assert ssa_mean == pytest.approx(engine_mean, rel=0.3)
