"""Tests for the closed-form bounds."""

import math

import pytest

from repro import InvalidParameterError
from repro.analysis import theory


class TestKL:
    def test_zero_at_equal(self):
        assert theory.kl_bernoulli(0.5, 0.5) == 0.0

    def test_known_value(self):
        # D(1 || 1/2) = log 2
        assert theory.kl_bernoulli(1.0, 0.5) == pytest.approx(math.log(2))

    def test_symmetric_quadratic_approximation(self):
        # D((1+e)/2 || 1/2) ~= e^2 / 2 for small e.
        eps = 1e-3
        divergence = theory.kl_bernoulli((1 + eps) / 2, 0.5)
        assert divergence == pytest.approx(eps**2 / 2, rel=1e-3)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            theory.kl_bernoulli(1.5, 0.5)
        with pytest.raises(InvalidParameterError):
            theory.kl_bernoulli(0.5, 0.0)


class TestThreeStateError:
    def test_decreases_in_n(self):
        values = [theory.three_state_error_probability(n, 0.1)
                  for n in (10, 100, 1000)]
        assert values[0] > values[1] > values[2]

    def test_decreases_in_margin(self):
        values = [theory.three_state_error_probability(100, eps)
                  for eps in (0.01, 0.1, 0.5)]
        assert values[0] > values[1] > values[2]

    def test_near_half_for_tiny_margin(self):
        # With eps = 1/n the bound is essentially constant (the
        # regime where Figure 3 (right) shows sizable error).
        assert theory.three_state_error_probability(1001, 1 / 1001) > 0.9

    def test_matches_asymptotic_form(self):
        n, eps = 10_000, 0.01
        exact = theory.three_state_error_probability(n, eps)
        asymptotic = math.exp(-(eps**2) * n / 2)
        assert exact == pytest.approx(asymptotic, rel=0.05)


class TestTimeBounds:
    def test_four_state_linear_in_inverse_margin(self):
        slow = theory.four_state_time_bound(1000, 0.001)
        fast = theory.four_state_time_bound(1000, 0.1)
        assert slow / fast == pytest.approx(100)

    def test_avc_bound_improves_with_states(self):
        few = theory.avc_time_bound(10**5, 4, 1e-4)
        many = theory.avc_time_bound(10**5, 10**4, 1e-4)
        assert many < few / 100

    def test_avc_polylog_regime(self):
        """With s >= 1/eps the bound is O(log n log s): Corollary 4.2."""
        n = 10**5
        eps = 1e-3
        s = theory.avc_states_for_polylog(eps)
        assert s >= 1 / eps
        bound = theory.avc_time_bound(n, s, eps)
        assert bound <= 2 * math.log(n) * math.log(s) + math.log(n)

    def test_avc_states_for_polylog_is_admissible(self):
        from repro import AVCParams

        for eps in (0.5, 0.1, 0.013, 1e-4):
            s = theory.avc_states_for_polylog(eps)
            params = AVCParams.from_num_states(s, d=1)
            assert params.num_states == s

    def test_three_state_bound_logarithmic(self):
        assert theory.three_state_time_bound(10**6, 0.5) \
            < theory.four_state_time_bound(10**6, 0.5)

    def test_voter(self):
        assert theory.voter_error_probability(0.2) == pytest.approx(0.4)
        assert theory.voter_time_bound(500) == 500.0

    def test_lower_bounds(self):
        assert theory.lower_bound_four_states(0.01) == 100.0
        assert theory.lower_bound_any_states(math.e ** 3) \
            == pytest.approx(3.0)

    @pytest.mark.parametrize("call", [
        lambda: theory.three_state_error_probability(1, 0.5),
        lambda: theory.three_state_error_probability(10, 0.0),
        lambda: theory.avc_time_bound(10, 3, 0.5),
        lambda: theory.four_state_time_bound(10, 2.0),
    ])
    def test_validation(self, call):
        with pytest.raises(InvalidParameterError):
            call()
