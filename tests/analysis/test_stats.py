"""Tests for statistics helpers."""

import math

import pytest

from repro import InvalidParameterError
from repro.analysis.stats import (
    bootstrap_mean_ci,
    geometric_mean,
    mean_confidence_interval,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == 2.5
        assert stats.median == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.std == pytest.approx(math.sqrt(5 / 3))

    def test_single_value(self):
        stats = summarize([7.0])
        assert stats.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            summarize([])


class TestConfidenceIntervals:
    def test_normal_ci_contains_mean(self):
        mean, low, high = mean_confidence_interval([1, 2, 3, 4, 5])
        assert low < mean < high
        assert mean == 3.0

    def test_normal_ci_single_point_degenerate(self):
        mean, low, high = mean_confidence_interval([4.0])
        assert mean == low == high == 4.0

    def test_bootstrap_ci_contains_mean(self):
        data = list(range(50))
        mean, low, high = bootstrap_mean_ci(data, rng=0)
        assert low < mean < high
        assert mean == pytest.approx(24.5)

    def test_bootstrap_reproducible(self):
        data = [1.0, 5.0, 2.0, 8.0]
        assert bootstrap_mean_ci(data, rng=3) == bootstrap_mean_ci(data,
                                                                   rng=3)

    def test_confidence_validation(self):
        with pytest.raises(InvalidParameterError):
            mean_confidence_interval([1, 2], confidence=1.5)
        with pytest.raises(InvalidParameterError):
            bootstrap_mean_ci([1, 2], confidence=0.0)
        with pytest.raises(InvalidParameterError):
            mean_confidence_interval([])


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(InvalidParameterError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(InvalidParameterError):
            geometric_mean([])
