"""Tests for the spectral-gap analysis (general-graph [DV12] view)."""

import networkx as nx
import pytest

from repro import InvalidParameterError, IntervalConsensusProtocol
from repro.analysis.spectral import (
    dv12_style_bound,
    rate_laplacian,
    relaxation_time,
    spectral_gap,
)
from repro.graphs import complete_graph, cycle_graph, random_regular_graph
from repro.rng import spawn_many
from repro.sim import AgentEngine


class TestSpectralGap:
    def test_clique_gap_is_order_one(self):
        # Rate Laplacian of K_n: (n/|E|) * L, eigenvalue gap
        # (n / (n(n-1)/2)) * n = 2n/(n-1) -> 2.
        gap = spectral_gap(complete_graph(20))
        assert gap == pytest.approx(2 * 20 / 19)

    def test_ring_gap_vanishes_quadratically(self):
        small = spectral_gap(cycle_graph(10))
        large = spectral_gap(cycle_graph(40))
        # L(cycle) gap ~ (2 pi / n)^2; rate scaling contributes n/|E|=1.
        assert small / large == pytest.approx(16.0, rel=0.2)

    def test_expander_beats_ring(self):
        ring = spectral_gap(cycle_graph(30))
        expander = spectral_gap(random_regular_graph(30, 4, rng=0))
        assert expander > 5 * ring

    def test_disconnected_rejected(self):
        with pytest.raises(InvalidParameterError):
            spectral_gap(nx.Graph([(0, 1), (2, 3)]))

    def test_rate_laplacian_row_sums_zero(self):
        laplacian = rate_laplacian(cycle_graph(7))
        assert abs(laplacian.sum()) < 1e-9

    def test_relaxation_time(self):
        graph = complete_graph(10)
        assert relaxation_time(graph) == pytest.approx(
            1.0 / spectral_gap(graph))


class TestDV12Bound:
    def test_margin_scaling(self):
        graph = complete_graph(16)
        assert dv12_style_bound(graph, 0.1) == pytest.approx(
            10 * dv12_style_bound(graph, 1.0))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            dv12_style_bound(complete_graph(5), 0.0)

    def test_predicts_topology_ordering(self):
        """Interval consensus converges faster on graphs with larger
        spectral gap; the bound must predict the measured ordering."""
        n = 24
        protocol = IntervalConsensusProtocol()
        graphs = {
            "clique": complete_graph(n),
            "ring": cycle_graph(n),
        }
        measured = {}
        for name, graph in graphs.items():
            engine = AgentEngine(protocol, graph=graph)
            times = [
                engine.run(protocol.initial_counts(16, 8),
                           rng=child).parallel_time
                for child in spawn_many(21, 25)
            ]
            measured[name] = sum(times) / len(times)
        predicted = {name: dv12_style_bound(graph, epsilon=8 / 24)
                     for name, graph in graphs.items()}
        assert measured["ring"] > measured["clique"]
        assert predicted["ring"] > predicted["clique"]
