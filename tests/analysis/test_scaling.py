"""Tests for scaling-law fits, including fits of real sweep data."""

import numpy as np
import pytest

from repro import (
    FourStateProtocol,
    InvalidParameterError,
    RunSpec,
    run_trials,
)
from repro.analysis.scaling import fit_logarithmic, fit_power_law
from repro.lowerbounds.info_propagation import expected_propagation_steps


class TestFitPowerLaw:
    def test_exact_power_law_recovered(self):
        xs = np.array([1.0, 2.0, 4.0, 8.0])
        ys = 3.0 * xs ** -1.5
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(-1.5)
        assert fit.coefficient == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([1, 10, 100], [2, 20, 200])
        assert fit.predict(1000) == pytest.approx(2000, rel=1e-6)

    def test_noise_lowers_r_squared(self):
        rng = np.random.default_rng(0)
        xs = np.logspace(0, 2, 20)
        ys = xs ** 2 * np.exp(rng.normal(0, 0.5, size=20))
        fit = fit_power_law(xs, ys)
        assert 1.5 < fit.exponent < 2.5
        assert fit.r_squared < 1.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            fit_power_law([1.0], [2.0])
        with pytest.raises(InvalidParameterError):
            fit_power_law([1.0, -1.0], [2.0, 3.0])
        with pytest.raises(InvalidParameterError):
            fit_power_law([1.0, 2.0], [2.0, 0.0])
        with pytest.raises(InvalidParameterError):
            fit_power_law([1.0, 2.0], [2.0])


class TestFitLogarithmic:
    def test_exact_log_recovered(self):
        xs = np.array([10.0, 100.0, 1000.0])
        ys = 2.5 * np.log(xs) + 1.0
        fit = fit_logarithmic(xs, ys)
        assert fit.exponent == pytest.approx(2.5)
        assert fit.coefficient == pytest.approx(1.0)

    def test_propagation_times_fit_log(self):
        """Theorem C.1's quantity really is a * ln(n) + b."""
        ns = [100, 300, 1000, 3000, 10_000]
        times = [expected_propagation_steps(n) / n for n in ns]
        fit = fit_logarithmic(ns, times)
        assert fit.r_squared > 0.999
        assert 0.8 < fit.exponent < 1.2  # slope ~ 1 per ln(n)


class TestOnMeasuredData:
    def test_four_state_time_scales_inverse_in_margin(self):
        """Fit the measured 4-state sweep: exponent ~ -1 in eps."""
        protocol = FourStateProtocol()
        n = 601
        margins = [3 / n, 9 / n, 27 / n, 81 / n]
        times = []
        for index, epsilon in enumerate(margins):
            stats = run_trials(RunSpec(protocol, num_trials=20,
                                       seed=40 + index, n=n,
                                       epsilon=epsilon),
                               stats=True)
            times.append(stats.mean_parallel_time)
        fit = fit_power_law(margins, times)
        assert -1.35 < fit.exponent < -0.65
        assert fit.r_squared > 0.9
