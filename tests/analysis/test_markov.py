"""Exact Markov-chain analysis tests, including engine validation.

These tests are the strongest correctness evidence in the suite: the
simulation engines' measured convergence times and error probabilities
are compared against *exact* absorption quantities computed from the
configuration chain.
"""

import math

import pytest

from repro import (
    AVCProtocol,
    FourStateProtocol,
    ThreeStateProtocol,
    VoterProtocol,
)
from repro.analysis.markov import ConfigurationChain
from repro.errors import InvalidParameterError
from repro.sim import AgentEngine, CountEngine, NullSkippingEngine
from repro.rng import spawn_many


class TestChainConstruction:
    def test_reachable_count_small_system(self):
        protocol = ThreeStateProtocol()
        chain = ConfigurationChain(protocol, {"A": 2, "B": 1})
        # Configurations over 3 states summing to 3: at most C(5,2)=10.
        assert 2 <= chain.num_configurations <= 10
        assert chain.settled.sum() >= 2  # all-A and all-B reachable

    def test_initial_settled_short_circuit(self):
        protocol = ThreeStateProtocol()
        chain = ConfigurationChain(protocol, {"A": 3})
        assert chain.expected_settling_time() == 0.0
        assert chain.settlement_probabilities() == {1: 1.0}

    def test_tiny_population_rejected(self):
        with pytest.raises(InvalidParameterError):
            ConfigurationChain(ThreeStateProtocol(), {"A": 1})


class TestExactQuantities:
    def test_voter_exact_error_probability(self):
        """[HP99]: P(wrong consensus) equals the minority fraction."""
        protocol = VoterProtocol()
        chain = ConfigurationChain(protocol, {"A": 7, "B": 3})
        probabilities = chain.settlement_probabilities()
        assert probabilities[1] == pytest.approx(0.7, abs=1e-9)
        assert probabilities[0] == pytest.approx(0.3, abs=1e-9)

    def test_voter_expected_time_known_formula(self):
        """Two-agent voter: settles after the first interaction."""
        protocol = VoterProtocol()
        chain = ConfigurationChain(protocol, {"A": 1, "B": 1})
        assert chain.expected_settling_time() == pytest.approx(1.0)

    def test_four_state_never_wrong(self):
        protocol = FourStateProtocol()
        chain = ConfigurationChain(protocol, {"+1": 4, "-1": 2})
        probabilities = chain.settlement_probabilities()
        assert probabilities[1] == pytest.approx(1.0)
        assert probabilities.get(0, 0.0) == 0.0

    def test_four_state_tie_deadlocks(self):
        protocol = FourStateProtocol()
        chain = ConfigurationChain(protocol, {"+1": 2, "-1": 2})
        assert chain.expected_settling_time() == math.inf
        probabilities = chain.settlement_probabilities()
        assert probabilities[None] == pytest.approx(1.0)

    def test_avc_never_wrong_exact(self):
        protocol = AVCProtocol(m=3, d=1)
        chain = ConfigurationChain(
            protocol, protocol.initial_counts(3, 2))
        probabilities = chain.settlement_probabilities()
        assert probabilities[1] == pytest.approx(1.0)

    def test_three_state_error_probability_positive(self):
        protocol = ThreeStateProtocol()
        chain = ConfigurationChain(protocol, {"A": 3, "B": 2})
        probabilities = chain.settlement_probabilities()
        assert probabilities[1] + probabilities[0] == pytest.approx(1.0)
        assert 0.0 < probabilities[0] < 0.5  # wrong but not even odds

    def test_summary_bundle(self):
        protocol = ThreeStateProtocol()
        summary = ConfigurationChain(protocol, {"A": 3, "B": 1}).summary()
        assert summary.expected_settling_time_parallel \
            == summary.expected_settling_time_steps / 4
        assert summary.num_reachable >= summary.num_settled
        assert summary.num_frozen_unsettled == 0


class TestEnginesAgainstExactChain:
    """Monte-Carlo estimates must match exact absorption quantities."""

    TRIALS = 400

    def _mean_and_error_rate(self, engine, protocol, counts, seed):
        times, wrong = [], 0
        for child in spawn_many(seed, self.TRIALS):
            result = engine.run(counts, rng=child)
            assert result.settled
            times.append(result.steps)
            if result.decision == 0:
                wrong += 1
        return (sum(times) / len(times)), wrong / self.TRIALS

    @pytest.mark.parametrize("engine_class", [AgentEngine, CountEngine,
                                              NullSkippingEngine])
    def test_three_state_engines_match_exact(self, engine_class):
        protocol = ThreeStateProtocol()
        counts = {"A": 4, "B": 2}
        chain = ConfigurationChain(protocol, counts)
        exact_steps = chain.expected_settling_time()
        exact_error = chain.settlement_probabilities()[0]
        mean_steps, error_rate = self._mean_and_error_rate(
            engine_class(protocol), protocol, counts, seed=50)
        # 400 trials: expect the mean within ~15% and the error rate
        # within ~6 points (binomial noise).
        assert mean_steps == pytest.approx(exact_steps, rel=0.15)
        assert error_rate == pytest.approx(exact_error, abs=0.06)

    def test_avc_engine_matches_exact_expected_time(self):
        protocol = AVCProtocol(m=3, d=1)
        counts = protocol.initial_counts(3, 2)
        chain = ConfigurationChain(protocol, counts)
        exact_steps = chain.expected_settling_time()
        mean_steps, error_rate = self._mean_and_error_rate(
            CountEngine(protocol), protocol, counts, seed=60)
        assert error_rate == 0.0
        assert mean_steps == pytest.approx(exact_steps, rel=0.15)
