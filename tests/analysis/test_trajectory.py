"""Tests for AVC trajectory analysis (the proof structure, empirically)."""

import numpy as np
import pytest

from repro import AVCProtocol, InvalidParameterError, RunSpec, run_majority
from repro.analysis.trajectory import analyze_avc_trajectory
from repro.sim.record import TrajectoryRecorder


def recorded_run(protocol, n, epsilon, seed, interval=None):
    recorder = TrajectoryRecorder(
        interval_steps=interval or max(1, n // 5))
    result = run_majority(RunSpec(protocol, n=n, epsilon=epsilon,
                                  seed=seed, engine="count",
                                  recorder=recorder))
    steps, matrix = recorder.as_matrix()
    return result, analyze_avc_trajectory(protocol, steps, matrix)


class TestTrajectoryExtraction:
    def test_sum_invariant_across_snapshots(self):
        protocol = AVCProtocol(m=9, d=1)
        _, trajectory = recorded_run(protocol, 101, 5 / 101, seed=1)
        assert trajectory.sum_invariant_holds
        assert trajectory.total_value[0] == 9 * 5  # eps * m * n

    def test_initial_snapshot_structure(self):
        protocol = AVCProtocol(m=9, d=1)
        _, trajectory = recorded_run(protocol, 101, 5 / 101, seed=2)
        assert trajectory.max_positive_weight[0] == 9
        assert trajectory.max_negative_weight[0] == 9
        assert trajectory.weak_count[0] == 0
        assert trajectory.positive_count[0] == 53
        assert trajectory.negative_count[0] == 48

    def test_final_snapshot_is_unanimous(self):
        protocol = AVCProtocol(m=9, d=1)
        result, trajectory = recorded_run(protocol, 101, 5 / 101, seed=3)
        assert result.settled
        assert trajectory.negative_count[-1] == 0
        assert trajectory.positive_count[-1] >= 1

    def test_minority_extremal_weight_monotone(self):
        """The minority's maximum weight never increases (averaging
        only shrinks extremes)."""
        protocol = AVCProtocol(m=31, d=1)
        _, trajectory = recorded_run(protocol, 201, 3 / 201, seed=4,
                                     interval=40)
        diffs = np.diff(trajectory.max_negative_weight)
        assert (diffs <= 0).all()

    def test_validation(self):
        protocol = AVCProtocol(m=3, d=1)
        with pytest.raises(InvalidParameterError):
            analyze_avc_trajectory(protocol, [0], [[1, 2]])
        with pytest.raises(InvalidParameterError):
            analyze_avc_trajectory(
                protocol, [0, 1],
                [[1] * protocol.num_states])


class TestClaimA2Empirically:
    def test_halving_times_roughly_even(self):
        """Claim A.2: every halving of the minority's max weight costs
        O(log n) parallel time — so successive halving gaps should be
        the same order of magnitude, not growing with the weight."""
        protocol = AVCProtocol(m=63, d=1)
        n = 501
        _, trajectory = recorded_run(protocol, n, 5 / n, seed=5,
                                     interval=n // 10)
        halvings = trajectory.halving_times(sign=-1)
        assert halvings[0][0] == 63
        gaps = [b[1] - a[1] for a, b in zip(halvings, halvings[1:])]
        gaps = [g for g in gaps if g > 0]
        assert gaps, "trajectory too coarse"
        assert max(gaps) < 25 * (min(gaps) + 0.5)

    def test_halving_times_cover_all_thresholds(self):
        protocol = AVCProtocol(m=15, d=1)
        _, trajectory = recorded_run(protocol, 101, 5 / 101, seed=6,
                                     interval=10)
        thresholds = [t for t, _ in trajectory.halving_times(sign=-1)]
        assert thresholds == [15, 7, 3, 1]

    def test_positive_side_halves_too(self):
        """With eps small both extremes decay (the surplus ends up in
        many small positive values, not a few big ones)."""
        protocol = AVCProtocol(m=63, d=1)
        n = 501
        _, trajectory = recorded_run(protocol, n, 1 / n, seed=7,
                                     interval=n // 10)
        assert trajectory.max_positive_weight[-1] <= 3
