"""Tests for the mean-field ODE limits (abl-meanfield)."""

import numpy as np
import pytest

from repro import InvalidParameterError, ThreeStateProtocol
from repro.analysis.meanfield import (
    four_state_ode,
    four_state_ode_convergence_time,
    solve_four_state,
    solve_three_state,
    three_state_ode,
    three_state_ode_convergence_time,
)
from repro.sim import CountEngine, TrajectoryRecorder


class TestODEStructure:
    def test_three_state_mass_conserved(self):
        derivative = three_state_ode(0.0, np.array([0.5, 0.3, 0.2]))
        assert sum(derivative) == pytest.approx(0.0, abs=1e-12)

    def test_four_state_mass_conserved(self):
        derivative = four_state_ode(0.0, np.array([0.4, 0.3, 0.2, 0.1]))
        assert sum(derivative) == pytest.approx(0.0, abs=1e-12)

    def test_four_state_strong_difference_conserved(self):
        """d(p1 - m1)/dt = 0: the ODE shadow of the sum invariant."""
        derivative = four_state_ode(0.0, np.array([0.4, 0.3, 0.2, 0.1]))
        assert derivative[0] - derivative[1] == pytest.approx(0.0)

    def test_consensus_is_fixed_point(self):
        assert np.allclose(three_state_ode(0.0, np.array([1.0, 0.0, 0.0])),
                           0.0)
        assert np.allclose(four_state_ode(0.0, np.array([0.3, 0.0, 0.7,
                                                         0.0])), 0.0)


class TestSolvers:
    def test_three_state_majority_wins(self):
        solution = solve_three_state(0.6, 0.4, t_max=40.0)
        assert solution.fraction("A")[-1] == pytest.approx(1.0, abs=1e-3)
        assert solution.fraction("B")[-1] == pytest.approx(0.0, abs=1e-3)

    def test_four_state_minority_strong_depleted(self):
        solution = solve_four_state(0.6, 0.4, t_max=200.0)
        assert solution.fraction("-1")[-1] == pytest.approx(0.0, abs=1e-3)
        assert solution.fraction("+1")[-1] == pytest.approx(0.2, abs=1e-3)
        assert solution.fraction("-0")[-1] == pytest.approx(0.0, abs=1e-3)

    def test_unknown_label_rejected(self):
        solution = solve_three_state(0.6, 0.4)
        with pytest.raises(InvalidParameterError):
            solution.fraction("Z")

    def test_fraction_validation(self):
        with pytest.raises(InvalidParameterError):
            solve_three_state(0.8, 0.4)


class TestConvergenceTimes:
    def test_three_state_time_logarithmic_in_margin(self):
        """[PVV09]: limit time is O(log(1/eps)) — halving eps should
        add roughly a constant, not double the time."""
        times = [three_state_ode_convergence_time(eps)
                 for eps in (0.2, 0.1, 0.05)]
        assert times[0] < times[1] < times[2]
        increments = np.diff(times)
        assert increments[1] == pytest.approx(increments[0], rel=0.3)

    def test_four_state_time_inverse_in_margin(self):
        """The four-state limit pays Theta(1/eps)."""
        fast = four_state_ode_convergence_time(0.2)
        slow = four_state_ode_convergence_time(0.02)
        assert slow / fast == pytest.approx(10.0, rel=0.35)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            three_state_ode_convergence_time(0.0)
        with pytest.raises(InvalidParameterError):
            four_state_ode_convergence_time(2.0)


class TestAgainstSimulation:
    def test_three_state_trajectory_matches_ode(self):
        """For large n the simulated fractions track the ODE closely
        (law of large numbers for density-dependent chains)."""
        n = 4000
        protocol = ThreeStateProtocol()
        engine = CountEngine(protocol)
        recorder = TrajectoryRecorder(interval_steps=n // 4)
        engine.run(protocol.initial_counts(int(0.6 * n), int(0.4 * n)),
                   rng=5, recorder=recorder)
        steps, matrix = recorder.as_matrix()
        times = steps / n
        solution = solve_three_state(0.6, 0.4, t_max=float(times[-1]) + 1)
        simulated_a = matrix[:, 0] / n
        ode_a = np.interp(times, solution.times, solution.fraction("A"))
        # Compare while both are in flight (skip the settled tail).
        in_flight = ode_a < 0.99
        assert np.max(np.abs(simulated_a[in_flight] - ode_a[in_flight])) \
            < 0.06
