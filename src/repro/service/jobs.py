"""In-process job queue: bounded, coalescing, thread-safe.

A *job* is one cache-addressable sweep point in flight: its id is the
content fingerprint of the spec (``fingerprint(spec.key())``), which
is exactly the run store's cache address — so a job that completes
becomes a cache entry, and a duplicate submission of a queued or
running job coalesces onto the existing one instead of simulating
twice.  The queue holds only *uncached* work; the service answers
cached fingerprints straight from the store without touching it.

States::

    queued --> running --> done
       ^          |    \\-> failed
       \\---------/   (graceful shutdown requeues at a chunk boundary)
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from .errors import QueueFullError

__all__ = ["Job", "JobQueue",
           "QUEUED", "RUNNING", "DONE", "FAILED", "ACTIVE_STATES"]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: States in which a duplicate submission coalesces onto the job.
ACTIVE_STATES = (QUEUED, RUNNING)


@dataclass
class Job:
    """One in-flight sweep point; mutated only under the queue lock."""

    id: str                      #: fingerprint of ``spec.key()``
    spec: object                 #: the parsed :class:`~repro.RunSpec`
    payload: dict                #: canonical wire form (``to_json``)
    status: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    row: dict | None = None
    meta: dict | None = None
    error: str | None = None
    submissions: int = 1         #: coalesced POSTs riding this job
    interruptions: int = 0       #: graceful-shutdown requeues survived
    done_event: threading.Event = field(default_factory=threading.Event)

    def describe(self) -> dict:
        """JSON-safe status view (without the result row)."""
        return {
            "id": self.id,
            "status": self.status,
            "protocol": self.payload.get("protocol", {}).get("kind"),
            "n": self.payload.get("n"),
            "trials": self.payload.get("num_trials", 1),
            "submissions": self.submissions,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }


class JobQueue:
    """Bounded FIFO of jobs with fingerprint coalescing.

    ``capacity`` bounds *queued* jobs (running ones have already left
    the line); a full queue raises :class:`QueueFullError`, which the
    HTTP layer turns into 429 + ``Retry-After`` backpressure.
    Completed jobs stay in the table for status lookups until
    :meth:`forget` — their results are also in the run store, so the
    table is a convenience, not the source of truth.
    """

    def __init__(self, capacity: int = 64, *,
                 retry_after: float = 1.0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._pending: deque[str] = deque()

    # -- submission side ----------------------------------------------

    def submit(self, make_job) -> tuple[Job, bool]:
        """Enqueue the job ``make_job()`` builds, coalescing duplicates.

        ``make_job`` must return a :class:`Job`; it is only called
        when no active job with the same id exists (checked under the
        lock, so concurrent duplicate submissions cannot race past
        each other).  Returns ``(job, created)`` — ``created`` is
        ``False`` when the submission coalesced onto an existing
        active job.  Raises :class:`QueueFullError` at capacity.
        """
        with self._lock:
            probe = make_job()
            existing = self._jobs.get(probe.id)
            if existing is not None and existing.status in ACTIVE_STATES:
                existing.submissions += 1
                return existing, False
            if len(self._pending) >= self.capacity:
                raise QueueFullError(
                    f"job queue is full ({self.capacity} queued); "
                    "retry shortly", retry_after=self.retry_after)
            self._jobs[probe.id] = probe
            self._pending.append(probe.id)
            self._wakeup.notify()
            return probe, True

    # -- worker side --------------------------------------------------

    def next_job(self, timeout: float | None = None) -> Job | None:
        """Claim the oldest queued job (marked running), or ``None``."""
        with self._lock:
            if not self._pending:
                self._wakeup.wait(timeout)
            if not self._pending:
                return None
            job = self._jobs[self._pending.popleft()]
            job.status = RUNNING
            job.started_at = time.time()
            return job

    def mark_done(self, job: Job, row: dict, meta: dict | None = None
                  ) -> None:
        with self._lock:
            job.row = row
            job.meta = meta
            job.status = DONE
            job.finished_at = time.time()
        job.done_event.set()

    def mark_failed(self, job: Job, error: str) -> None:
        with self._lock:
            job.error = error
            job.status = FAILED
            job.finished_at = time.time()
        job.done_event.set()

    def requeue(self, job: Job) -> None:
        """Put an interrupted job back at the *front* of the line.

        Used by graceful shutdown: the job's completed chunks are
        journaled, so on restart (or when workers resume) it continues
        from the checkpoint.  Front-of-line keeps interrupted work
        ahead of newer submissions.  The capacity bound is waived —
        the job already held a slot.
        """
        with self._lock:
            job.status = QUEUED
            job.started_at = None
            job.interruptions += 1
            self._pending.appendleft(job.id)
            self._wakeup.notify()

    def wake_all(self) -> None:
        """Unblock every :meth:`next_job` waiter (shutdown path)."""
        with self._lock:
            self._wakeup.notify_all()

    # -- introspection ------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, status: str | None = None) -> list[Job]:
        """Jobs in submission order, optionally filtered by status."""
        with self._lock:
            ordered = sorted(self._jobs.values(),
                             key=lambda job: job.submitted_at)
        if status is not None:
            ordered = [job for job in ordered if job.status == status]
        return ordered

    def depth(self) -> int:
        """Queued (not yet running) jobs — the backpressure signal."""
        with self._lock:
            return len(self._pending)

    def counts(self) -> dict:
        """Jobs per status, plus the queue bound."""
        with self._lock:
            out = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
            for job in self._jobs.values():
                out[job.status] = out.get(job.status, 0) + 1
            out["capacity"] = self.capacity
            return out

    def forget(self, job_id: str) -> None:
        """Drop a finished job from the table (results live in the
        store); active jobs are kept."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None and job.status not in ACTIVE_STATES:
                del self._jobs[job_id]
