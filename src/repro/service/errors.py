"""Service-level errors, each carrying its HTTP status.

The ASGI layer (and the optional FastAPI adapter) translate these —
plus :class:`~repro.errors.InvalidParameterError` from spec parsing,
which maps to 422 — into JSON error responses of the uniform shape
``{"error": <message>, "status": <code>}``.
"""

from __future__ import annotations

from ..errors import ReproError

__all__ = [
    "ServiceError",
    "QueueFullError",
    "RateLimitedError",
    "UnknownJobError",
]


class ServiceError(ReproError):
    """Base class for simulation-service failures."""

    #: HTTP status the ASGI layer answers with.
    status = 500


class QueueFullError(ServiceError):
    """The bounded job queue cannot accept another submission.

    Backpressure, not failure: the response is ``429`` with a
    ``Retry-After`` hint so well-behaved clients back off instead of
    piling on.
    """

    status = 429

    def __init__(self, message: str, *, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class RateLimitedError(ServiceError):
    """A client exceeded its request budget (token bucket empty)."""

    status = 429

    def __init__(self, message: str, *, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class UnknownJobError(ServiceError):
    """No job or committed cache entry under the requested id."""

    status = 404
