"""Optional FastAPI front-end over the same :class:`SimulationService`.

The core service is stdlib-only by design — tier-1 tests and the
bundled server never import anything outside the standard library.
Deployments that already run FastAPI/uvicorn and want OpenAPI docs,
dependency-injected auth, or framework middleware can mount this
adapter instead; it delegates every operation to the exact same
:class:`~repro.service.service.SimulationService`, so behaviour
(coalescing, caching, backpressure, durable resume) is identical.

FastAPI is **not** a dependency of this package: importing this
module without it raises a clear :class:`~repro.errors.ReproError`
naming the missing piece, and the test suite skips the adapter tests
when it is absent.
"""

from __future__ import annotations

from ..errors import InvalidParameterError, ReproError
from .errors import ServiceError, UnknownJobError
from .service import SimulationService

__all__ = ["fastapi_available", "make_fastapi_app"]

try:
    import fastapi
    from fastapi.responses import FileResponse, JSONResponse
except ImportError:  # pragma: no cover - exercised via the flag below
    fastapi = None


def fastapi_available() -> bool:
    """Whether the optional FastAPI adapter can be built here."""
    return fastapi is not None


def make_fastapi_app(service: SimulationService):
    """Build a FastAPI application wrapping ``service``.

    Raises :class:`ReproError` when FastAPI is not installed — the
    stdlib app (:func:`repro.service.app.make_app`) covers every
    capability without it.
    """
    if fastapi is None:
        raise ReproError(
            "the FastAPI adapter needs the optional 'fastapi' package; "
            "it is not installed in this environment. Use "
            "repro.service.app.make_app (stdlib ASGI) or "
            "'python -m repro serve' instead.")

    app = fastapi.FastAPI(
        title="repro simulation service",
        description="Content-addressed majority-protocol simulations: "
                    "identical specs coalesce in flight and hit the "
                    "run-store cache forever after.",
        on_startup=[service.start],
        on_shutdown=[service.stop],
    )

    def _client(request: "fastapi.Request") -> str:
        header = request.headers.get("x-client")
        if header:
            return header
        return request.client.host if request.client else "anonymous"

    @app.exception_handler(InvalidParameterError)
    async def _invalid(request, error):
        return JSONResponse(status_code=422,
                            content={"error": str(error), "status": 422})

    @app.exception_handler(ServiceError)
    async def _service_error(request, error):
        headers = {}
        retry_after = getattr(error, "retry_after", None)
        if retry_after is not None:
            headers["Retry-After"] = str(max(1, round(retry_after)))
        return JSONResponse(status_code=error.status,
                            content={"error": str(error),
                                     "status": error.status},
                            headers=headers)

    @app.post("/runs")
    async def submit(request: "fastapi.Request", wait: float = 0.0):
        payload = await request.json()
        view = service.submit(payload, client=_client(request))
        if wait > 0 and view["status"] in ("queued", "running"):
            view = service.get(view["id"], wait=wait)
        status = 200 if view["status"] in ("done", "failed") else 202
        return JSONResponse(status_code=status, content=view)

    @app.get("/runs")
    async def list_runs(status: str | None = None, store: bool = False):
        return service.list_runs(status=status, include_store=store)

    @app.get("/runs/{job_id}")
    async def get_run(job_id: str, wait: float = 0.0):
        return service.get(job_id, wait=wait)

    @app.get("/runs/{job_id}/trace")
    async def get_trace(job_id: str):
        path, live = service.trace_ref(job_id)
        if live or not path.exists():
            raise UnknownJobError(
                f"trace for {job_id!r} is still being written; "
                "retry once the job finishes (the stdlib server "
                "streams live traces)")
        return FileResponse(path, media_type="application/x-ndjson")

    @app.get("/stats")
    async def stats():
        return service.stats()

    @app.get("/healthz")
    async def healthz():
        return {"status": "ok"}

    return app
