"""Simulation-as-a-service over the content-addressed run store.

The package turns the repo's one-door simulation API into a long-lived
server: clients ``POST`` RunSpec JSON to ``/runs`` and get back a job
id that *is* the run store's content fingerprint — so duplicate
submissions coalesce while in flight and hit the cache forever after,
and a result computed by any CLI sweep is served warm by the service
(and vice versa).

Layers, bottom up:

* :mod:`~repro.service.jobs` — bounded, coalescing, thread-safe job
  queue keyed by fingerprint;
* :mod:`~repro.service.workers` — worker threads running jobs through
  the ordinary :class:`~repro.runstore.orchestrator.Orchestrator`
  (chunk checkpoints, retries, cache commits), with per-job JSONL
  traces and graceful-shutdown checkpointing;
* :mod:`~repro.service.service` — :class:`SimulationService`, the
  transport-agnostic operations (+ durable queue for restart resume);
* :mod:`~repro.service.app` — stdlib ASGI app (:func:`make_app`);
* :mod:`~repro.service.http` — threaded stdlib HTTP bridge so
  ``python -m repro serve`` needs no external server;
* :mod:`~repro.service.fastapi_adapter` — optional FastAPI mount for
  deployments that want OpenAPI docs (gated import).

Quick start (in process)::

    from repro.service import ServiceConfig, SimulationService, make_app
    from repro.service.http import start_in_thread

    service = SimulationService(config=ServiceConfig(output_dir="results"))
    service.start()
    server, base_url = start_in_thread(make_app(service))
    # POST {"schema": 1, "protocol": {"kind": "exact-majority"},
    #       "n": 1000, "epsilon": 0.1, "num_trials": 5, "seed": 7}
    # to f"{base_url}/runs" ...
"""

from .app import make_app
from .errors import (
    QueueFullError,
    RateLimitedError,
    ServiceError,
    UnknownJobError,
)
from .jobs import Job, JobQueue
from .ratelimit import RateLimiter
from .service import ServiceConfig, SimulationService
from .workers import WorkerPool

__all__ = [
    "SimulationService",
    "ServiceConfig",
    "make_app",
    "Job",
    "JobQueue",
    "WorkerPool",
    "RateLimiter",
    "ServiceError",
    "QueueFullError",
    "RateLimitedError",
    "UnknownJobError",
]
