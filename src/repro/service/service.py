"""The simulation service: HTTP-shaped operations over the run store.

:class:`SimulationService` is transport-agnostic — the stdlib ASGI app
(:mod:`repro.service.app`), the optional FastAPI adapter, and the
tests all drive the same four operations:

* :meth:`submit` — ``POST /runs``: parse a RunSpec wire form, answer
  cached fingerprints straight from the store (zero engine work),
  coalesce duplicates of in-flight work, enqueue the rest;
* :meth:`get` — ``GET /runs/{id}``: job status or the committed row;
* :meth:`list_runs` — ``GET /runs``: live jobs + committed points;
* :meth:`stats` — ``GET /stats``: the ``service.*`` counters, queue
  depths, and store totals.

Every submission is also appended to the store's durable service
queue, and completions are recorded there too — so a restarted server
re-enqueues exactly the submissions that never completed, resuming
their chunk checkpoints through the ordinary journals.

Telemetry: the service carries its own :class:`Telemetry` over an
in-memory sink.  Requests bump ``service.requests`` (labelled by
endpoint and outcome), cache hits ``service.cache.hit``, coalesced
duplicates ``service.coalesced``, enqueues ``service.enqueued``, and
completions ``service.completed`` / ``service.failed``; rejected
submissions count ``service.rejected`` with a ``reason`` label.  Every
job's engine/runstore records flow into the same sink, which is how
the acceptance tests prove a cached ``POST /runs`` never enters an
engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..errors import InvalidParameterError
from ..runstore.fingerprint import fingerprint
from ..runstore.store import RunStore
from ..sim.run import RunSpec
from ..telemetry import InMemorySink, Telemetry
from .errors import UnknownJobError
from .jobs import ACTIVE_STATES, Job, JobQueue
from .ratelimit import RateLimiter
from .workers import WorkerPool, sweep_name

__all__ = ["ServiceConfig", "SimulationService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one service instance (all have serving defaults)."""

    output_dir: str | None = None     #: store location (None: results/)
    num_workers: int = 2              #: worker threads
    queue_size: int = 64              #: bounded queued-job capacity
    retry_after: float = 1.0          #: 429 Retry-After hint (queue)
    rate_limit: float | None = None   #: per-client requests/s (None: off)
    rate_burst: float | None = None   #: bucket size (None: max(1, rate))
    max_wait: float = 60.0            #: cap on blocking ?wait= seconds
    poll_interval: float = 0.05       #: trace/wait polling granularity
    max_attempts: int = 3             #: orchestrator retry budget
    resume: bool = True               #: re-enqueue pending jobs on start


class SimulationService:
    """Queue + workers + store behind one front door.

    ``store`` defaults to the config's output directory (the same
    resolution every experiment CLI uses, so the service serves the
    exact cache the CLIs populate, and vice versa).
    """

    def __init__(self, store: RunStore | None = None, *,
                 config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.store = store if store is not None else \
            RunStore.for_output_dir(self.config.output_dir)
        self.sink = InMemorySink()
        self.telemetry = Telemetry([self.sink])
        self.queue = JobQueue(self.config.queue_size,
                              retry_after=self.config.retry_after)
        self.limiter = RateLimiter(self.config.rate_limit,
                                   self.config.rate_burst)
        self.pool = WorkerPool(
            self.queue, self.store,
            num_workers=self.config.num_workers,
            on_done=self._record_done, on_failed=self._record_failed,
            sinks=self.telemetry.sinks,
            max_attempts=self.config.max_attempts)
        self.started_at: float | None = None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> int:
        """Start the workers; returns how many jobs were resumed."""
        resumed = self._resume_pending() if self.config.resume else 0
        self.pool.start()
        self.started_at = time.time()
        return resumed

    def stop(self, *, graceful: bool = True) -> None:
        """Stop the workers.

        Graceful: running jobs checkpoint at the next chunk boundary
        and stay pending in the durable queue for the next start.
        """
        self.pool.stop(graceful=graceful)

    def _resume_pending(self) -> int:
        """Re-enqueue durable submissions that never completed.

        Submissions whose fingerprint is already committed (the server
        died between the store commit and the completion record) are
        marked done without touching the queue.
        """
        resumed = 0
        for record in self.store.pending_submissions():
            fp = record["point"]
            if fp in self.store:
                self.store.service_queue().append(
                    {"event": "done", "point": fp, "resumed": True})
                continue
            try:
                spec = RunSpec.from_json(record["spec"])
            except InvalidParameterError:
                self.store.service_queue().append(
                    {"event": "failed", "point": fp,
                     "error": "unreplayable spec in service queue"})
                continue
            job = Job(id=fp, spec=spec, payload=record["spec"])
            self.queue.submit(lambda: job)
            resumed += 1
        if resumed:
            self.telemetry.count("service.resumed", resumed)
        return resumed

    # -- operations ---------------------------------------------------

    def submit(self, payload, *, client: str = "anonymous") -> dict:
        """``POST /runs``: one spec in, one job-or-result view out.

        Raises :class:`~repro.errors.InvalidParameterError` (HTTP 422)
        for malformed or non-addressable specs,
        :class:`~repro.service.errors.RateLimitedError` /
        :class:`~repro.service.errors.QueueFullError` (both 429) for
        over-budget clients and a full queue.
        """
        self.limiter.check(client)
        started = time.perf_counter()
        spec = RunSpec.from_json(payload)
        try:
            key = spec.key()
        except ValueError as error:
            raise InvalidParameterError(str(error)) from None
        fp = fingerprint(key)
        wire = spec.to_json()
        entry = self.store.get(fp)
        if entry is not None:
            # The content-addressed fast path: a million identical
            # submissions cost one simulation.  No job, no queue, no
            # engine — straight from the store.
            self.telemetry.count("service.cache.hit")
            self._count_request("submit", "cached", started)
            return self._entry_view(fp, entry)
        job, created = self.queue.submit(
            lambda: Job(id=fp, spec=spec, payload=wire))
        if not created:
            self.telemetry.count("service.coalesced")
            self._count_request("submit", "coalesced", started)
            return self._job_view(job)
        if job.status in ACTIVE_STATES:
            self.store.service_queue().append(
                {"event": "submit", "point": fp, "spec": wire})
            self.telemetry.count("service.enqueued")
            self._count_request("submit", "enqueued", started)
        else:
            # The job the queue handed back had already finished in a
            # previous life (done/failed table entry being resubmitted
            # after completion): treat like a fresh enqueue result.
            self._count_request("submit", job.status, started)
        return self._job_view(job)

    def get(self, job_id: str, *, wait: float = 0.0) -> dict:
        """``GET /runs/{id}``: live job view or the committed entry.

        ``wait`` blocks (capped at ``config.max_wait`` seconds) until
        the job finishes — long-polling for cheap clients.
        """
        started = time.perf_counter()
        job = self.queue.get(job_id)
        if job is not None:
            if wait > 0 and job.status in ACTIVE_STATES:
                job.done_event.wait(min(wait, self.config.max_wait))
            self._count_request("get", job.status, started)
            return self._job_view(job)
        entry = self.store.get(job_id)
        if entry is not None:
            self._count_request("get", "cached", started)
            return self._entry_view(job_id, entry)
        self._count_request("get", "unknown", started)
        raise UnknownJobError(f"no run under id {job_id!r}")

    def list_runs(self, *, status: str | None = None,
                  include_store: bool = False, limit: int = 200) -> dict:
        """``GET /runs``: live jobs (+ optionally committed points)."""
        started = time.perf_counter()
        jobs = [job.describe() for job in self.queue.jobs(status)]
        view: dict = {
            "jobs": jobs[:limit],
            "counts": self.queue.counts(),
        }
        if include_store:
            committed = []
            for entry in self.store.entries():
                key = entry.get("key") or {}
                committed.append({
                    "id": entry.get("fingerprint"),
                    "status": "done",
                    "cached": True,
                    "kind": key.get("kind"),
                    "protocol": (key.get("protocol") or {}).get("kind"),
                    "n": key.get("n"),
                    "trials": key.get("trials"),
                })
                if len(committed) >= limit:
                    break
            view["committed"] = committed
        self._count_request("list", "ok", started)
        return view

    def trace_ref(self, job_id: str) -> tuple:
        """``(path, live)`` for a job's JSONL trace stream.

        ``live`` is ``True`` while the job may still append records —
        the streaming endpoint keeps tailing until it flips.  Raises
        :class:`UnknownJobError` when neither a trace file nor an
        active job exists (cache-served submissions never ran an
        engine, so they have no trace).
        """
        path = self.store.service_trace_path(job_id)
        job = self.queue.get(job_id)
        live = job is not None and job.status in ACTIVE_STATES
        if not path.exists() and not live:
            raise UnknownJobError(
                f"no trace for {job_id!r} (unknown id, or the result "
                "was served from cache without entering an engine)")
        return path, live

    def job_active(self, job_id: str) -> bool:
        job = self.queue.get(job_id)
        return job is not None and job.status in ACTIVE_STATES

    def stats(self) -> dict:
        """``GET /stats``: counters, queue state, and store totals."""
        counters = {}
        for record in self.sink.records:
            if record["kind"] == "counter" and \
                    record["name"].startswith("service."):
                name = record["name"]
                counters[name] = counters.get(name, 0) + record["value"]
        return {
            "uptime_seconds": (time.time() - self.started_at
                               if self.started_at else None),
            "workers": self.pool.num_workers,
            "queue": self.queue.counts(),
            "counters": counters,
            "store": {
                "committed_points": sum(1 for _ in self.store.entries()),
                "pending_submissions":
                    len(self.store.pending_submissions()),
                "in_flight_points": len(self.store.in_flight()),
            },
        }

    # -- plumbing -----------------------------------------------------

    def _count_request(self, endpoint: str, outcome: str,
                       started: float) -> None:
        self.telemetry.count("service.requests", endpoint=endpoint,
                             outcome=outcome)
        self.telemetry.record_span("service.request",
                                   time.perf_counter() - started,
                                   endpoint=endpoint, outcome=outcome)

    def _record_done(self, job: Job) -> None:
        self.store.service_queue().append(
            {"event": "done", "point": job.id})
        self.telemetry.count("service.completed")

    def _record_failed(self, job: Job, message: str) -> None:
        self.store.service_queue().append(
            {"event": "failed", "point": job.id, "error": message})
        self.telemetry.count("service.failed")

    def _job_view(self, job: Job) -> dict:
        view = dict(job.describe(), cached=False)
        if job.status == "done":
            view["row"] = job.row
            view["meta"] = job.meta
        if job.status == "queued":
            view["queue_position"] = self._position(job.id)
        view["links"] = self._links(job.id)
        return view

    def _entry_view(self, fp: str, entry: dict) -> dict:
        meta = entry.get("meta") or {}
        key = entry.get("key") or {}
        return {
            "id": fp,
            "status": "done",
            "cached": True,
            "protocol": (key.get("protocol") or {}).get("kind"),
            "n": key.get("n"),
            "trials": key.get("trials"),
            "row": entry.get("row"),
            "meta": meta,
            "links": self._links(fp),
        }

    def _position(self, job_id: str) -> int | None:
        for index, job in enumerate(self.queue.jobs("queued")):
            if job.id == job_id:
                return index
        return None

    def _links(self, fp: str) -> dict:
        return {"self": f"/runs/{fp}", "trace": f"/runs/{fp}/trace"}

    def sweep_journal_name(self, fp: str) -> str:
        """The per-job chunk journal's sweep name (introspection)."""
        return sweep_name(fp)
