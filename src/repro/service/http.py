"""Threaded stdlib HTTP server hosting the ASGI app.

The container has no ASGI server (uvicorn, hypercorn), so this module
bridges :class:`http.server.ThreadingHTTPServer` to the ASGI app: each
request thread spins a private event loop, feeds the app one
``http`` scope, and relays ``http.response.*`` messages back to the
socket — chunked transfer-encoding when the app streams (the trace
endpoint), plain content-length otherwise.

This is deliberately boring infrastructure: one request per thread,
no keep-alive pipelining tricks, no TLS.  A production deployment
would point a real ASGI server at :func:`repro.service.app.make_app`;
this bridge exists so ``python -m repro serve`` works out of the box
and the CI smoke leg can exercise a real socket.
"""

from __future__ import annotations

import asyncio
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

__all__ = ["serve", "start_in_thread", "make_server"]

#: Hop-by-hop headers the bridge owns; the app must not set them.
_MANAGED_HEADERS = {b"content-length", b"transfer-encoding",
                    b"connection"}


class _AsgiRequestHandler(BaseHTTPRequestHandler):
    """One HTTP/1.1 request pumped through the ASGI app."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1"

    # Populated by make_server() on the handler subclass.
    asgi_app = None

    def _handle(self) -> None:
        loop = asyncio.new_event_loop()
        try:
            loop.run_until_complete(self._run_asgi())
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to answer
        finally:
            loop.close()

    do_GET = do_POST = do_PUT = do_DELETE = do_PATCH = _handle

    async def _run_asgi(self) -> None:
        split = urlsplit(self.path)
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": self.command,
            "path": split.path,
            "raw_path": self.path.encode("latin-1"),
            "query_string": split.query.encode("latin-1"),
            "headers": [(name.lower().encode("latin-1"),
                         value.encode("latin-1"))
                        for name, value in self.headers.items()],
            "client": self.client_address,
            "server": self.server.server_address,
            "scheme": "http",
        }
        body = self._read_body()
        received = {"done": False}

        async def receive():
            if received["done"]:
                await asyncio.Event().wait()  # ASGI: block forever
            received["done"] = True
            return {"type": "http.request", "body": body,
                    "more_body": False}

        state = {"started": False, "chunked": False}

        async def send(message):
            if message["type"] == "http.response.start":
                self._start_response(message, state)
            elif message["type"] == "http.response.body":
                self._send_body(message, state)

        await type(self).asgi_app(scope, receive, send)
        if state["chunked"] and not state.get("finished"):
            self._finish_chunked(state)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("content-length") or 0)
        return self.rfile.read(length) if length > 0 else b""

    def _start_response(self, message, state) -> None:
        self.send_response(message["status"])
        has_length = False
        for name, value in message.get("headers", ()):
            if name.lower() in _MANAGED_HEADERS:
                if name.lower() == b"content-length":
                    has_length = True
                else:
                    continue
            self.send_header(name.decode("latin-1"),
                             value.decode("latin-1"))
        if not has_length:
            # Streaming response: length unknown up front.
            state["chunked"] = True
            self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        state["started"] = True

    def _send_body(self, message, state) -> None:
        body = message.get("body", b"")
        if state["chunked"]:
            if body:
                self.wfile.write(b"%x\r\n%s\r\n" % (len(body), body))
                self.wfile.flush()
            if not message.get("more_body"):
                self._finish_chunked(state)
        else:
            if body:
                self.wfile.write(body)
                self.wfile.flush()

    def _finish_chunked(self, state) -> None:
        self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()
        state["finished"] = True

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass  # the service has telemetry; access logs stay quiet


class _AsgiHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # The socketserver default backlog (5) resets connections under a
    # coalescing burst of concurrent submissions; give the kernel room
    # to hold a full burst while handler threads spin up.
    request_queue_size = 128


def make_server(app, host: str = "127.0.0.1", port: int = 8321
                ) -> ThreadingHTTPServer:
    """A ready-to-serve :class:`ThreadingHTTPServer` for ``app``."""
    handler = type("BoundAsgiHandler", (_AsgiRequestHandler,),
                   {"asgi_app": staticmethod(app)})
    return _AsgiHTTPServer((host, port), handler)


def start_in_thread(app, host: str = "127.0.0.1", port: int = 0
                    ) -> tuple:
    """Serve ``app`` on a background thread; ``(server, base_url)``.

    ``port=0`` picks a free port — the tests and the CI smoke leg use
    this to avoid collisions.  Call ``server.shutdown()`` to stop.
    """
    server = make_server(app, host, port)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-service-http", daemon=True)
    thread.start()
    bound_host, bound_port = server.server_address[:2]
    return server, f"http://{bound_host}:{bound_port}"


def serve(service, host: str = "127.0.0.1", port: int = 8321) -> None:
    """Blocking serve loop used by ``python -m repro serve``.

    Starts the service's workers, serves until interrupted, then stops
    gracefully (running jobs checkpoint and persist for next start).
    """
    from .app import make_app

    server = make_server(make_app(service), host, port)
    resumed = service.start()
    if resumed:
        print(f"resumed {resumed} pending job(s) from the service queue")
    print(f"repro service listening on http://{host}:"
          f"{server.server_address[1]} "
          f"(workers={service.config.num_workers}, "
          f"queue={service.config.queue_size})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        print("shutting down: checkpointing running jobs ...")
        server.shutdown()
        server.server_close()
        service.stop(graceful=True)
        print("service stopped; interrupted jobs resume on next start")
