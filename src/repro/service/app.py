"""Stdlib ASGI application over :class:`SimulationService`.

No framework: the module speaks the `ASGI 3.0`_ protocol directly, so
any ASGI server (uvicorn, hypercorn, daphne) can host it, the bundled
threaded bridge (:mod:`repro.service.http`) can serve it with nothing
but the standard library, and the tests can drive it in-process with
a ten-line client.  The optional FastAPI adapter
(:mod:`repro.service.fastapi_adapter`) mounts the same operations for
deployments that want OpenAPI docs.

Routes::

    POST /runs              submit a RunSpec (JSON body; ?wait=SECONDS
                            blocks until done, capped by config)
    GET  /runs              list live jobs (?status=..., ?store=1 to
                            include committed points)
    GET  /runs/{id}         job status or cached result (?wait=SECONDS)
    GET  /runs/{id}/trace   stream the job's telemetry trace (JSONL;
                            tails live jobs until they finish)
    GET  /stats             service counters, queue depths, store totals
    GET  /healthz           liveness probe

Error contract: ``{"error": ..., "status": ...}`` bodies; 400 for
unreadable JSON, 404 for unknown ids/routes, 405 with ``Allow`` for
wrong methods, 422 for invalid specs, 429 with ``Retry-After`` for
rate limiting and queue backpressure, 500 for everything else.

.. _ASGI 3.0: https://asgi.readthedocs.io/en/latest/specs/main.html
"""

from __future__ import annotations

import asyncio
import json

from ..errors import InvalidParameterError
from .errors import QueueFullError, RateLimitedError, UnknownJobError
from .service import SimulationService

__all__ = ["make_app"]

_JSON = [(b"content-type", b"application/json")]
_NDJSON = [(b"content-type", b"application/x-ndjson")]


def make_app(service: SimulationService):
    """Build the ASGI callable for one service instance.

    The returned app handles the ``lifespan`` protocol by starting the
    service's workers on startup and stopping them gracefully on
    shutdown; hosts without lifespan support (the tests, the threaded
    bridge) may call ``service.start()`` / ``service.stop()`` around
    it themselves — ``start`` on a started service is a no-op guard in
    the pool, so doing both is an error, not a convenience.  Pick one.
    """

    async def app(scope, receive, send):
        if scope["type"] == "lifespan":
            await _lifespan(service, receive, send)
            return
        if scope["type"] != "http":
            raise RuntimeError(
                f"unsupported ASGI scope type {scope['type']!r}")
        try:
            await _route(service, scope, receive, send)
        except _Handled:
            pass
        except InvalidParameterError as error:
            await _send_error(send, 422, str(error))
        except (QueueFullError, RateLimitedError) as error:
            await _send_error(
                send, error.status, str(error),
                extra_headers=[(b"retry-after",
                                _retry_after(error.retry_after))])
        except UnknownJobError as error:
            await _send_error(send, error.status, str(error))
        except _BadRequest as error:
            await _send_error(send, 400, str(error))

    return app


async def _lifespan(service, receive, send) -> None:
    while True:
        message = await receive()
        if message["type"] == "lifespan.startup":
            try:
                service.start()
            except Exception as error:
                await send({"type": "lifespan.startup.failed",
                            "message": str(error)})
                return
            await send({"type": "lifespan.startup.complete"})
        elif message["type"] == "lifespan.shutdown":
            service.stop(graceful=True)
            await send({"type": "lifespan.shutdown.complete"})
            return


class _BadRequest(Exception):
    """Body or query string the server cannot even parse."""


async def _route(service, scope, receive, send) -> None:
    method = scope["method"]
    path = scope["path"].rstrip("/") or "/"
    query = _parse_query(scope.get("query_string", b""))

    if path == "/healthz":
        await _require(method, "GET", send)
        await _send_json(send, 200, {"status": "ok"})
    elif path == "/stats":
        await _require(method, "GET", send)
        await _send_json(send, 200, service.stats())
    elif path == "/runs":
        if method == "POST":
            payload = await _read_json_body(receive)
            view = service.submit(payload, client=_client_key(scope))
            wait = _parse_wait(query)
            if wait > 0 and view["status"] in ("queued", "running"):
                view = service.get(view["id"], wait=wait)
            await _send_json(send, _submit_status(view), view)
        elif method == "GET":
            view = service.list_runs(
                status=query.get("status"),
                include_store=query.get("store") in ("1", "true", "yes"))
            await _send_json(send, 200, view)
        else:
            await _send_405(send, "GET, POST")
    elif path.startswith("/runs/"):
        parts = path[len("/runs/"):].split("/")
        if len(parts) == 1:
            await _require(method, "GET", send)
            view = service.get(parts[0], wait=_parse_wait(query))
            await _send_json(send, 200, view)
        elif len(parts) == 2 and parts[1] == "trace":
            await _require(method, "GET", send)
            await _stream_trace(service, parts[0], send)
        else:
            raise UnknownJobError(f"no route {path!r}")
    else:
        raise UnknownJobError(f"no route {path!r}")


# ----------------------------------------------------------------------
# Request plumbing
# ----------------------------------------------------------------------

def _parse_query(raw: bytes) -> dict:
    query = {}
    for part in raw.decode("latin-1").split("&"):
        if "=" in part:
            key, value = part.split("=", 1)
            query[key] = value
        elif part:
            query[part] = ""
    return query


def _parse_wait(query: dict) -> float:
    raw = query.get("wait", "0")
    try:
        wait = float(raw)
    except ValueError:
        raise _BadRequest(f"wait must be a number, got {raw!r}") from None
    if wait < 0:
        raise _BadRequest(f"wait must be >= 0, got {raw!r}")
    return wait


def _client_key(scope) -> str:
    for name, value in scope.get("headers", ()):
        if name == b"x-client":
            return value.decode("latin-1")
    client = scope.get("client")
    return client[0] if client else "anonymous"


async def _read_json_body(receive):
    chunks = []
    while True:
        message = await receive()
        if message["type"] != "http.request":
            raise _BadRequest(
                f"unexpected ASGI message {message['type']!r}")
        chunks.append(message.get("body", b""))
        if not message.get("more_body"):
            break
    body = b"".join(chunks)
    if not body:
        raise _BadRequest("request body is empty; expected a RunSpec "
                          "JSON object")
    try:
        return json.loads(body)
    except ValueError as error:
        raise _BadRequest(f"request body is not valid JSON: {error}") \
            from None


def _submit_status(view: dict) -> int:
    # Cached and already-finished submissions answer 200; freshly
    # queued or coalesced-onto work answers 202 Accepted.
    return 200 if view["status"] in ("done", "failed") else 202


def _retry_after(seconds: float) -> bytes:
    import math
    return str(max(1, math.ceil(seconds))).encode("ascii")


async def _require(method: str, allowed: str, send) -> None:
    if method != allowed:
        await _send_405(send, allowed)
        raise _Handled()


class _Handled(Exception):
    """Response already sent; unwind without another one."""


async def _send_405(send, allow: str) -> None:
    await _send_json(send, 405, {"error": "method not allowed",
                                 "status": 405},
                     extra_headers=[(b"allow", allow.encode("ascii"))])


async def _send_json(send, status: int, payload,
                     extra_headers=()) -> None:
    body = json.dumps(payload).encode("utf-8")
    await send({"type": "http.response.start", "status": status,
                "headers": [*_JSON, *extra_headers,
                            (b"content-length",
                             str(len(body)).encode("ascii"))]})
    await send({"type": "http.response.body", "body": body})


async def _send_error(send, status: int, message: str,
                      extra_headers=()) -> None:
    await _send_json(send, status,
                     {"error": message, "status": status},
                     extra_headers=extra_headers)


# ----------------------------------------------------------------------
# Trace streaming
# ----------------------------------------------------------------------

async def _stream_trace(service, job_id: str, send) -> None:
    """Stream a job's JSONL trace, tailing while the job is active.

    The trace file is append-only with per-line flushes (the
    JsonlTraceSink contract), so reading is safe concurrently with the
    worker.  For finished jobs this degenerates to sending the file;
    for live ones it polls for new bytes until the job leaves the
    active states and the file is drained.
    """
    path, live = service.trace_ref(job_id)
    interval = service.config.poll_interval
    await send({"type": "http.response.start", "status": 200,
                "headers": list(_NDJSON)})
    offset = 0
    while True:
        chunk = b""
        if path.exists():
            with open(path, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
            offset += len(chunk)
        if chunk:
            await send({"type": "http.response.body", "body": chunk,
                        "more_body": True})
        if not live:
            break
        live = service.job_active(job_id)
        if not live:
            continue  # one final drain pass after the job finishes
        await asyncio.sleep(interval)
    await send({"type": "http.response.body", "body": b""})
