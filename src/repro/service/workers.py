"""The service's worker pool: threads draining the job queue.

Each worker claims jobs from the :class:`~repro.service.jobs.JobQueue`
and runs them through a per-job
:class:`~repro.runstore.orchestrator.Orchestrator` — the same
cache/journal/retry machinery every CLI sweep uses — so a service job
is committed to the run store exactly like a local one, checkpointed
at the deterministic trial-chunk boundaries, and bit-identical to what
``simulate(spec)`` would return.

Threads, not processes: the engines spend their time inside numpy and
the compiled kernels, which release the GIL, and the per-trial fan-out
below a point can still go multi-process through
:func:`~repro.sim.parallel.run_trials_parallel` if a deployment needs
it.  Kernel warm-up (numba JIT compilation / C build) happens once per
worker thread on its first job of each engine family — never inside a
timed chunk (mirroring the pool initializer in
:mod:`repro.sim.parallel`).

Graceful shutdown: :meth:`WorkerPool.stop` with ``graceful=True``
raises :class:`~repro.errors.JobInterrupted` inside the orchestrator
at the next chunk boundary; the job's completed chunks are already in
its journal, the job is requeued, and the durable service queue still
holds its submission — so a restarted server resumes the point instead
of recomputing it.
"""

from __future__ import annotations

import threading
import traceback

from ..errors import JobInterrupted
from ..runstore.distributed import LeaseManager, new_worker_id
from ..runstore.orchestrator import Orchestrator
from ..sim.kernels import warm_up_for_spec
from ..telemetry import JsonlTraceSink, Telemetry
from ..telemetry.context import use as use_telemetry
from .jobs import Job, JobQueue

__all__ = ["WorkerPool"]

#: How long a worker sleeps on an empty queue before re-checking the
#: stop flag.  Purely a shutdown-latency knob.
_IDLE_WAIT = 0.1


class WorkerPool:
    """``num_workers`` daemon threads executing queued jobs.

    Parameters
    ----------
    queue:
        The shared :class:`JobQueue`.
    store:
        The :class:`~repro.runstore.store.RunStore` jobs commit to.
    on_done / on_failed:
        Callbacks ``(job)`` / ``(job, message)`` invoked after the
        queue state is updated — the service uses them to append the
        durable completion records and bump its counters.
    sinks:
        Extra telemetry sinks every job's records also flow into
        (the service's in-memory aggregate); each job additionally
        writes its own JSONL trace under the store's service dir,
        which is what ``GET /runs/{id}/trace`` streams.
    max_attempts:
        Retry budget per point for transient worker-pool failures,
        forwarded to the orchestrator.
    """

    def __init__(self, queue: JobQueue, store, *, num_workers: int = 2,
                 on_done=None, on_failed=None, sinks=(),
                 max_attempts: int = 3):
        if num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {num_workers}")
        self.queue = queue
        self.store = store
        self.num_workers = num_workers
        self._on_done = on_done
        self._on_failed = on_failed
        self._sinks = tuple(sinks)
        self._max_attempts = max_attempts
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("worker pool is already running")
        self._stop.clear()
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._loop, name=f"repro-service-worker-{index}",
                daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self, *, graceful: bool = True, timeout: float = 30.0
             ) -> None:
        """Stop the pool.

        ``graceful=True`` lets running jobs checkpoint at the next
        chunk boundary (they are requeued for the next start);
        the flag is the orchestrator's ``should_stop`` hook, so
        nothing is ever torn mid-chunk either way.
        """
        self._stop.set()
        self.queue.wake_all()
        for thread in self._threads:
            thread.join(timeout=timeout if graceful else 1.0)
        self._threads = []

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    # -- the worker loop ----------------------------------------------

    def _loop(self) -> None:
        warmed: set[str] = set()
        # Each worker thread shares the store's lease protocol with
        # any distributed sweep workers (``--workers N`` / ``python -m
        # repro workers start``) on the same store: a point being
        # computed by either side is leased, so the other waits and
        # serves it from the cache instead of duplicating the engine
        # run.
        worker_id = new_worker_id("svc")
        leases = LeaseManager(self.store.leases_dir, worker_id)
        while not self._stop.is_set():
            job = self.queue.next_job(timeout=_IDLE_WAIT)
            if job is None:
                continue
            if self._stop.is_set():
                # Claimed during shutdown: hand it straight back.
                self.queue.requeue(job)
                return
            self._execute(job, warmed, leases=leases,
                          worker_id=worker_id)

    def _execute(self, job: Job, warmed: set, *, leases=None,
                 worker_id=None) -> None:
        engine = job.payload.get("engine", "auto")
        if engine not in warmed:
            # Once per worker per engine family, outside any chunk.
            warmed.add(engine)
            try:
                warm_up_for_spec(job.spec)
            except Exception:
                pass  # an unusable backend just means numpy engines
        trace_path = self.store.service_trace_path(job.id)
        telemetry = Telemetry([JsonlTraceSink(trace_path), *self._sinks])
        orchestrator = Orchestrator(
            self.store, sweep=sweep_name(job.id), resume=True,
            max_attempts=self._max_attempts,
            should_stop=self._stop.is_set,
            leases=leases, worker=worker_id)
        try:
            with use_telemetry(telemetry):
                row = orchestrator.spec_point(job.spec)
            orchestrator.finish()
            # Per-worker journal names change across restarts; sweep-
            # wide cleanup drops any stale peers' files too.
            self.store.clear_sweep_journals(sweep_name(job.id))
            entry = self.store.get(job.id) or {}
            self.queue.mark_done(job, row, entry.get("meta"))
            if self._on_done is not None:
                self._on_done(job)
        except JobInterrupted:
            # Chunks up to here are journaled; the job goes back to
            # the front of the line and resumes after restart.
            self.queue.requeue(job)
        except Exception as failure:
            message = "".join(traceback.format_exception_only(
                type(failure), failure)).strip()
            self.queue.mark_failed(job, message)
            if self._on_failed is not None:
                self._on_failed(job, message)
        finally:
            telemetry.close()


def sweep_name(fp: str) -> str:
    """Journal name for a service job's chunk checkpoints."""
    return f"service-{fp[:16]}"
