"""End-to-end service smoke: ``python -m repro.service.smoke``.

The CI leg for the simulation service.  Starts the real stack (worker
pool + stdlib HTTP bridge) on a loopback socket, then over the socket:

1. ``POST /runs`` a smoke-scale figure-3 point (n-state AVC at
   ``n = 101``, margin one agent, 5 trials) and wait for the result;
2. ``POST`` the identical spec again and assert the response is a
   cache hit that performed **zero** engine work (the ``engine.*``
   telemetry counters do not move);
3. ``GET /runs/{id}/trace``, write the streamed JSONL to
   ``--trace-out``, and exit non-zero unless both requests behaved.

CI then validates the streamed trace with ``python -m repro.telemetry
<trace-out>`` — the same schema gate every other telemetry producer
passes through.

Exit status 0 means the service held its two core promises on a real
socket: compute once, serve from content-addressed cache forever.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request

from .app import make_app
from .http import start_in_thread
from .service import ServiceConfig, SimulationService

#: The smoke-scale figure-3 point (n-state AVC: m = n - 2, d = 1).
FIGURE3_SMOKE_SPEC = {
    "schema": 1,
    "protocol": {"kind": "avc", "m": 99, "d": 1},
    "n": 101,
    "epsilon": 1.0 / 101,
    "num_trials": 5,
    "seed": 0,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.smoke",
        description="CI smoke: run one figure-3 point through the "
                    "HTTP service twice; the second must be a "
                    "zero-engine-work cache hit.")
    parser.add_argument("--output-dir", default="service-smoke-results",
                        help="results directory for the run store")
    parser.add_argument("--trace-out", default="service-smoke-trace.jsonl",
                        help="where to write the streamed trace")
    args = parser.parse_args(argv)

    service = SimulationService(config=ServiceConfig(
        output_dir=args.output_dir, num_workers=1))
    service.start()
    server, base_url = start_in_thread(make_app(service))

    def post_run(payload, query=""):
        request = urllib.request.Request(
            f"{base_url}/runs{query}",
            data=json.dumps(payload).encode(),
            headers={"content-type": "application/json"},
            method="POST")
        with urllib.request.urlopen(request, timeout=300) as response:
            return json.loads(response.read())

    def engine_mass():
        return sum(record["value"] for record in service.sink.records
                   if record["kind"] == "counter"
                   and record["name"].startswith("engine."))

    try:
        first = post_run(FIGURE3_SMOKE_SPEC, "?wait=300")
        if first["status"] != "done" or first["cached"]:
            print(f"FAIL: first submission returned {first['status']} "
                  f"cached={first['cached']}")
            return 1
        print(f"computed point {first['id'][:12]} (error fraction "
              f"{first['row'].get('error_fraction')}, mean parallel "
              f"time {first['row'].get('mean_parallel_time'):.3g})")

        before = engine_mass()
        second = post_run(FIGURE3_SMOKE_SPEC)
        after = engine_mass()
        if not second["cached"] or second["status"] != "done":
            print("FAIL: second submission was not a cache hit")
            return 1
        if after != before:
            print(f"FAIL: cache hit moved engine counters "
                  f"({before} -> {after})")
            return 1
        if second["row"] != first["row"]:
            print("FAIL: cached row differs from computed row")
            return 1
        print("cache hit with zero engine telemetry events")

        with urllib.request.urlopen(
                f"{base_url}/runs/{first['id']}/trace",
                timeout=300) as response:
            trace = response.read().decode()
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(trace)
        lines = [line for line in trace.splitlines() if line.strip()]
        print(f"streamed {len(lines)} trace record(s) "
              f"to {args.trace_out}")
        print("service smoke ok")
        return 0
    finally:
        server.shutdown()
        server.server_close()
        service.stop(graceful=False)


if __name__ == "__main__":
    sys.exit(main())
