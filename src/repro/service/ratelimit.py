"""Per-client token-bucket rate limiting.

One bucket per client key (the ``x-client`` header when present,
otherwise the peer address): capacity ``burst`` tokens, refilled at
``rate`` tokens/second.  A request spends one token; an empty bucket
answers 429 with the exact ``Retry-After`` until the next token
matures.  Buckets are created lazily and pruned once they are full
again and idle, so the table stays bounded by the set of *active*
clients.
"""

from __future__ import annotations

import threading
import time

from .errors import RateLimitedError

__all__ = ["RateLimiter"]


class RateLimiter:
    """Thread-safe token buckets keyed by client id.

    Parameters
    ----------
    rate:
        Sustained budget in requests/second per client; ``None``
        disables limiting entirely (every check passes).
    burst:
        Bucket capacity — how many requests a client may send
        back-to-back before the sustained rate binds.  Defaults to
        ``max(1, rate)`` so a one-per-second budget still admits one
        immediate request.
    clock:
        Injectable time source (seconds, monotonic) for tests.
    """

    #: Idle full buckets are dropped once the table exceeds this size.
    MAX_IDLE_BUCKETS = 1024

    def __init__(self, rate: float | None, burst: float | None = None,
                 *, clock=time.monotonic):
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.burst = float(burst if burst is not None
                           else max(1.0, rate or 1.0))
        if self.burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, tuple[float, float]] = {}

    def check(self, client: str) -> None:
        """Spend one token for ``client`` or raise 429.

        Raises :class:`RateLimitedError` with ``retry_after`` set to
        the seconds until the bucket next holds a whole token.
        """
        if self.rate is None:
            return
        now = self._clock()
        with self._lock:
            tokens, last = self._buckets.get(client, (self.burst, now))
            tokens = min(self.burst, tokens + (now - last) * self.rate)
            if tokens < 1.0:
                self._buckets[client] = (tokens, now)
                retry_after = (1.0 - tokens) / self.rate
                raise RateLimitedError(
                    f"client {client!r} exceeded {self.rate:g} "
                    f"request(s)/s (burst {self.burst:g})",
                    retry_after=retry_after)
            self._buckets[client] = (tokens - 1.0, now)
            if len(self._buckets) > self.MAX_IDLE_BUCKETS:
                self._prune(now)

    def _prune(self, now: float) -> None:
        """Drop buckets that have refilled to capacity (idle clients)."""
        for key in [key for key, (tokens, last) in self._buckets.items()
                    if tokens + (now - last) * self.rate >= self.burst]:
            del self._buckets[key]
