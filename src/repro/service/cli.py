"""``python -m repro serve`` — run the simulation service.

Hosts the ASGI app on the bundled threaded HTTP bridge (no external
server needed).  SIGINT/SIGTERM trigger a graceful stop: running jobs
checkpoint at their next chunk boundary and are resumed — along with
any still-queued submissions — by the next ``serve`` over the same
output directory.

Examples::

    python -m repro serve                      # 127.0.0.1:8321, results/
    python -m repro serve --port 9000 --workers 4
    python -m repro serve --output-dir /tmp/exp --rate-limit 10
"""

from __future__ import annotations

import argparse
import signal

from .http import serve
from .service import ServiceConfig, SimulationService

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve simulations over HTTP: POST RunSpecs, get "
                    "content-addressed cached results.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8321,
                        help="bind port (default: 8321)")
    parser.add_argument("--workers", type=int, default=2,
                        help="simulation worker threads (default: 2)")
    parser.add_argument("--queue-size", type=int, default=64,
                        help="max queued jobs before 429 backpressure "
                             "(default: 64)")
    parser.add_argument("--rate-limit", type=float, default=None,
                        help="per-client sustained requests/second "
                             "(default: unlimited)")
    parser.add_argument("--rate-burst", type=float, default=None,
                        help="per-client burst size (default: the rate, "
                             "at least 1)")
    parser.add_argument("--output-dir", default=None,
                        help="results directory whose run store backs "
                             "the service (default: results/ or "
                             "$REPRO_OUTPUT_DIR)")
    parser.add_argument("--no-resume", action="store_true",
                        help="do not re-enqueue pending jobs from the "
                             "durable service queue on startup")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = ServiceConfig(
        output_dir=args.output_dir,
        num_workers=args.workers,
        queue_size=args.queue_size,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        resume=not args.no_resume,
    )
    service = SimulationService(config=config)
    # serve() already handles KeyboardInterrupt (Ctrl-C / SIGINT);
    # translate SIGTERM into the same clean exit path for containers.
    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm)
    serve(service, host=args.host, port=args.port)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
