"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ProtocolError",
    "InvalidParameterError",
    "InvalidStateError",
    "SimulationError",
    "ConvergenceTimeout",
    "WorkerError",
    "JobInterrupted",
    "AnalysisError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ProtocolError(ReproError):
    """A protocol definition is malformed or misused."""


class InvalidParameterError(ProtocolError, ValueError):
    """A protocol or engine parameter is outside its legal range."""


class InvalidStateError(ProtocolError, ValueError):
    """A state object does not belong to the protocol's state space."""


class SimulationError(ReproError):
    """A simulation could not be set up or executed."""


class ConvergenceTimeout(SimulationError):
    """A run exceeded its interaction budget without converging.

    The partially completed run is attached so callers can inspect how
    far the system got before the budget ran out.
    """

    def __init__(self, message: str, *, result=None):
        super().__init__(message)
        self.result = result


class WorkerError(SimulationError):
    """A parallel worker process died before delivering its results.

    Raised in place of :class:`concurrent.futures.process.BrokenProcessPool`
    so callers can treat pool crashes (OOM kills, interpreter aborts)
    as *transient* and retry — the runstore orchestrator does, with
    capped backoff — while genuine simulation errors propagate.
    """


class JobInterrupted(SimulationError):
    """A cooperative stop request interrupted a sweep point mid-flight.

    Raised by the runstore orchestrator between trial chunks when its
    ``should_stop`` hook fires (the simulation service's graceful
    shutdown path).  Every completed chunk is already journaled, so the
    point resumes from the checkpoint on the next attempt — nothing is
    lost, which is what distinguishes this from a failure.
    """


class AnalysisError(ReproError):
    """An analytical computation (Markov chain, ODE, bound) failed."""


class ExperimentError(ReproError):
    """An experiment configuration or run failed."""
