"""Exact stochastic simulation (Gillespie SSA) for reaction networks.

The direct method: at each event, draw the waiting time from an
exponential with the total propensity and the reaction proportionally
to its propensity.  For networks compiled from population protocols
with volume ``n - 1`` this samples exactly the continuous-time model
of [PVV09, DV12] (cross-validated against
:class:`repro.sim.gillespie.ContinuousTimeEngine` in the tests).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

from ..errors import InvalidParameterError
from ..rng import ensure_rng
from .model import ReactionNetwork

__all__ = ["GillespieSimulator", "SSAResult"]


@dataclass(frozen=True)
class SSAResult:
    """Outcome of one SSA run."""

    time: float
    events: int
    counts: dict
    exhausted: bool  #: no reaction had positive propensity (dead end)
    stopped: bool    #: the stop predicate fired

    @property
    def total_molecules(self) -> int:
        return sum(self.counts.values())


class GillespieSimulator:
    """Direct-method SSA over a :class:`ReactionNetwork`.

    Parameters
    ----------
    network:
        The reaction network.
    volume:
        System volume scaling bimolecular propensities; use ``n - 1``
        to match the population-protocol interaction model.
    """

    def __init__(self, network: ReactionNetwork, *, volume: float = 1.0):
        if volume <= 0:
            raise InvalidParameterError(
                f"volume must be positive, got {volume}")
        self.network = network
        self.volume = volume
        self._deltas = [network.stoichiometry(r) for r in network.reactions]

    def run(self, initial_counts: Mapping, *, rng=None,
            t_max: float = float("inf"), max_events: int = 10_000_000,
            stop: Callable[[dict], bool] | None = None,
            observer: Callable[[float, dict], None] | None = None
            ) -> SSAResult:
        """Simulate from ``initial_counts``.

        Stops at ``t_max``, after ``max_events`` reactions, when no
        reaction can fire, or when ``stop(counts)`` returns true.
        ``observer(time, counts)`` is invoked after every event.
        """
        if t_max == float("inf") and max_events >= 10_000_000 \
                and stop is None:
            raise InvalidParameterError(
                "give t_max, max_events, or a stop predicate — an "
                "absorbing-free network would run forever")
        counts = dict(initial_counts)
        for species in counts:
            if species not in self.network.species:
                raise InvalidParameterError(
                    f"unknown species {species!r}")
        generator = ensure_rng(rng)
        reactions = self.network.reactions
        time = 0.0
        events = 0
        if stop is not None and stop(counts):
            return SSAResult(time, events, counts, exhausted=False,
                             stopped=True)
        while events < max_events:
            propensities = [r.propensity(counts, self.volume)
                            for r in reactions]
            total = sum(propensities)
            if total <= 0.0:
                return SSAResult(time, events, counts, exhausted=True,
                                 stopped=False)
            waiting = generator.exponential(1.0 / total)
            if time + waiting > t_max:
                return SSAResult(t_max, events, counts, exhausted=False,
                                 stopped=False)
            time += waiting
            target = generator.uniform(0.0, total)
            accumulator = 0.0
            chosen = len(reactions) - 1
            for index, propensity in enumerate(propensities):
                accumulator += propensity
                if target < accumulator:
                    chosen = index
                    break
            for species, change in self._deltas[chosen].items():
                counts[species] = counts.get(species, 0) + change
            events += 1
            if observer is not None:
                observer(time, counts)
            if stop is not None and stop(counts):
                return SSAResult(time, events, counts, exhausted=False,
                                 stopped=True)
        return SSAResult(time, events, counts, exhausted=False,
                         stopped=False)
