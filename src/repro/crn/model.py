"""Chemical reaction networks (CRNs) and the population-protocol bridge.

[CDS+13] implement population protocols as DNA strand-displacement
chemistry; [CCN12] show the cell-cycle switch computes approximate
majority.  This module makes that correspondence executable:

* :class:`Reaction` / :class:`ReactionNetwork` — bimolecular (and
  unimolecular) mass-action CRNs;
* :func:`protocol_to_crn` — compile any
  :class:`~repro.protocols.base.PopulationProtocol` into the
  equivalent CRN: one species per state, one bimolecular reaction per
  state-changing unordered interaction (with doubled rate for the two
  orientations of an asymmetric rule pair);
* :func:`cell_cycle_switch` — the CCN12 network in its
  approximate-majority-equivalent form.

Under volume ``V = n - 1`` and unit rate constants, the stochastic
mass-action semantics of the compiled CRN is exactly the
continuous-time population-protocol model: every ordered agent pair
interacts at rate ``1/(n-1)``.  The :class:`GillespieSimulator` in
:mod:`repro.crn.gillespie` simulates any network exactly (SSA).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping
from dataclasses import dataclass

from ..errors import InvalidParameterError
from ..protocols.base import PopulationProtocol

__all__ = ["Reaction", "ReactionNetwork", "protocol_to_crn",
           "cell_cycle_switch", "approximate_majority_crn"]


@dataclass(frozen=True)
class Reaction:
    """One mass-action reaction ``reactants -> products`` at ``rate``.

    ``reactants`` and ``products`` are tuples of species names; order
    is irrelevant.  At most two reactants are supported (unimolecular
    and bimolecular reactions — all a population protocol, and the
    networks of [CCN12], need).
    """

    reactants: tuple
    products: tuple
    rate: float = 1.0

    def __post_init__(self) -> None:
        if not 1 <= len(self.reactants) <= 2:
            raise InvalidParameterError(
                f"reactions need 1 or 2 reactants, got {self.reactants}")
        if self.rate <= 0:
            raise InvalidParameterError(
                f"rate must be positive, got {self.rate}")

    def propensity(self, counts: Mapping, volume: float) -> float:
        """Stochastic mass-action propensity at the given counts."""
        if len(self.reactants) == 1:
            return self.rate * counts.get(self.reactants[0], 0)
        a, b = self.reactants
        if a == b:
            count = counts.get(a, 0)
            return self.rate * count * (count - 1) / volume
        return self.rate * counts.get(a, 0) * counts.get(b, 0) / volume

    def __str__(self) -> str:
        left = " + ".join(self.reactants)
        right = " + ".join(self.products) if self.products else "0"
        return f"{left} -> {right} (k={self.rate:g})"


@dataclass(frozen=True)
class ReactionNetwork:
    """A finite set of species and mass-action reactions."""

    species: tuple
    reactions: tuple[Reaction, ...]
    name: str = "crn"

    def __post_init__(self) -> None:
        known = set(self.species)
        if len(known) != len(self.species):
            raise InvalidParameterError("duplicate species")
        for reaction in self.reactions:
            for species in (*reaction.reactants, *reaction.products):
                if species not in known:
                    raise InvalidParameterError(
                        f"reaction {reaction} uses unknown species "
                        f"{species!r}")

    def stoichiometry(self, reaction: Reaction) -> dict:
        """Net species change when ``reaction`` fires once."""
        delta: Counter = Counter(reaction.products)
        delta.subtract(Counter(reaction.reactants))
        return {species: change for species, change in delta.items()
                if change}

    def conserves_mass(self) -> bool:
        """Whether every reaction preserves the total molecule count.

        True for every compiled population protocol (two agents in,
        two agents out).
        """
        return all(len(r.reactants) == len(r.products)
                   for r in self.reactions)


def protocol_to_crn(protocol: PopulationProtocol) -> ReactionNetwork:
    """Compile a population protocol into its equivalent CRN.

    For each *unordered* pair of states with at least one
    state-changing orientation, emits one reaction per distinct
    outcome; an outcome produced by both orientations of a
    heterogeneous pair gets rate 2 (both ordered meetings realize it),
    matching the protocol's ordered-pair semantics under volume
    ``n - 1``.
    """
    states = protocol.states
    species = tuple(str(state) for state in states)
    reactions = []
    s = protocol.num_states
    for i in range(s):
        for j in range(i, s):
            outcomes: Counter = Counter()
            orientations = [(i, j)] if i == j else [(i, j), (j, i)]
            for a, b in orientations:
                new_a, new_b = protocol.transition_index(a, b)
                outcome = tuple(sorted((new_a, new_b)))
                if outcome != (i, j):
                    # Skip both true no-ops and orientation swaps
                    # ((x, y) -> (y, x)), which leave the species
                    # multiset unchanged.
                    outcomes[outcome] += 1
            for (new_a, new_b), multiplicity in outcomes.items():
                rate = float(multiplicity) if i != j else 1.0
                reactions.append(Reaction(
                    reactants=(species[i], species[j]),
                    products=(species[new_a], species[new_b]),
                    rate=rate))
    return ReactionNetwork(species=species, reactions=tuple(reactions),
                           name=f"crn[{protocol.name}]")


def approximate_majority_crn() -> ReactionNetwork:
    """The AM network of [CCN12]: X + Y -> Y + B etc.

    Species ``X`` and ``Y`` are the two opinions, ``B`` the blank
    intermediate; this is the CRN form of the three-state protocol.
    """
    return ReactionNetwork(
        species=("X", "Y", "B"),
        reactions=(
            Reaction(("X", "Y"), ("B", "Y"), rate=1.0),
            Reaction(("Y", "X"), ("B", "X"), rate=1.0),
            Reaction(("B", "X"), ("X", "X"), rate=1.0),
            Reaction(("B", "Y"), ("Y", "Y"), rate=1.0),
        ),
        name="approximate-majority")


def cell_cycle_switch() -> ReactionNetwork:
    """A cell-cycle-switch-style network in the spirit of [CCN12].

    The cell-cycle switch motif combines *mutual inhibition* with
    *self-activation*: each of the antagonists ``X`` and ``Y`` pushes
    the other through a suppressed intermediate form (``Z`` =
    suppressed X, ``W`` = suppressed Y), and each autocatalytically
    recovers its own suppressed form.  [CCN12]'s result is that such
    switch networks compute approximate majority with the same
    asymptotics as the AM network; this constructor provides the
    symmetric instance used by our experiments (consensus states
    all-``X`` / all-``Y`` are absorbing; intermediates cannot strand).
    """
    return ReactionNetwork(
        species=("X", "Y", "Z", "W"),
        reactions=(
            # Y suppresses X through the intermediate Z...
            Reaction(("Y", "X"), ("Y", "Z"), rate=1.0),
            Reaction(("Y", "Z"), ("Y", "Y"), rate=1.0),
            # ...and X autocatalytically reactivates its suppressed form.
            Reaction(("X", "Z"), ("X", "X"), rate=1.0),
            # Symmetrically, X suppresses Y through W.
            Reaction(("X", "Y"), ("X", "W"), rate=1.0),
            Reaction(("X", "W"), ("X", "X"), rate=1.0),
            Reaction(("Y", "W"), ("Y", "Y"), rate=1.0),
        ),
        name="cell-cycle-switch")
