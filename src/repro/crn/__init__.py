"""Chemical reaction networks: the molecular face of the protocols.

Population protocols are implementable as DNA strand-displacement
chemistry [CDS+13], and natural networks (the cell cycle switch)
compute approximate majority [CCN12].  This package compiles any
protocol in the library to a mass-action CRN and simulates CRNs
exactly with the Gillespie SSA.
"""

from .gillespie import GillespieSimulator, SSAResult
from .model import (
    Reaction,
    ReactionNetwork,
    approximate_majority_crn,
    cell_cycle_switch,
    protocol_to_crn,
)

__all__ = [
    "Reaction",
    "ReactionNetwork",
    "protocol_to_crn",
    "approximate_majority_crn",
    "cell_cycle_switch",
    "GillespieSimulator",
    "SSAResult",
]
