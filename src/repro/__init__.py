"""repro — a reproduction of *Fast and Exact Majority in Population
Protocols* (Alistarh, Gelashvili, Vojnovic; PODC 2015).

The package provides:

* :mod:`repro.core` — the AVC (Average-and-Conquer) exact-majority
  protocol, the paper's contribution;
* :mod:`repro.protocols` — the protocol abstraction and the published
  baselines (three-state approximate majority, four-state exact
  majority, the voter model) plus table-driven protocols;
* :mod:`repro.sim` — interchangeable simulation engines for the
  random-pairwise-interaction model (agent-array, count-vector,
  null-skipping/Gillespie, continuous-time, batched-numpy) and the
  run harness;
* :mod:`repro.faults` — declarative fault injection (state
  corruption, population churn, interaction faults, byzantine
  adversaries, adversarial schedulers) composing with every engine
  above;
* :mod:`repro.consensus` — round-based synchronous message-passing
  consensus (Ben-Or, epsilon-agreement) on the same RunSpec rails;
* :mod:`repro.graphs` — interaction-graph builders;
* :mod:`repro.analysis` — closed-form bounds, mean-field ODE limits,
  and exact Markov-chain analysis;
* :mod:`repro.lowerbounds` — computational reproductions of the
  paper's two lower bounds;
* :mod:`repro.experiments` — the harness regenerating every figure.

Quickstart::

    from repro import AVCProtocol, RunSpec, run_majority

    protocol = AVCProtocol.with_num_states(s=64)
    spec = RunSpec(protocol, n=10_001, epsilon=1 / 10_001, seed=0)
    result = run_majority(spec)
    print(result.parallel_time, result.correct)
"""

from .core import AVCParams, AVCProtocol, AVCState
from .errors import (
    AnalysisError,
    ConvergenceTimeout,
    ExperimentError,
    InvalidParameterError,
    InvalidStateError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from .protocols import (
    MAJORITY_A,
    MAJORITY_B,
    UNDECIDED,
    FieldSpec,
    FourStateProtocol,
    IntervalConsensusProtocol,
    LeveledLeaderElection,
    LogStateMajorityProtocol,
    MajorityProtocol,
    PairwiseLeaderElection,
    MajorityTableProtocol,
    PhaseDoublingProtocol,
    PopulationProtocol,
    ProductProtocol,
    StructuredProtocol,
    TableProtocol,
    ThreeStateProtocol,
    VoterProtocol,
    parse_protocol,
    validate_protocol,
)
from .consensus import (
    BenOrConsensus,
    ConsensusProtocol,
    EpsilonAgreementConsensus,
    RoundsEngine,
)
from .faults import FaultSpec, corrupt_counts
from .serialize import (
    protocol_from_dict,
    protocol_to_dict,
    run_result_from_dict,
    run_result_to_dict,
)
from .workloads import (
    MajorityWorkload,
    bernoulli_workload,
    margin_workload,
    worst_case_workload,
)
from .sim import (
    AgentEngine,
    BatchEngine,
    ContinuousTimeEngine,
    CountEngine,
    CountEnsembleEngine,
    EnsembleEngine,
    NullSkippingEngine,
    RunResult,
    RunSpec,
    run,
    run_majority,
    run_trials,
    run_trials_parallel,
    simulate,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "AVCProtocol",
    "AVCParams",
    "AVCState",
    # protocols
    "PopulationProtocol",
    "MajorityProtocol",
    "StructuredProtocol",
    "FieldSpec",
    "PhaseDoublingProtocol",
    "LogStateMajorityProtocol",
    "ThreeStateProtocol",
    "FourStateProtocol",
    "IntervalConsensusProtocol",
    "PairwiseLeaderElection",
    "LeveledLeaderElection",
    "VoterProtocol",
    "TableProtocol",
    "MajorityTableProtocol",
    "validate_protocol",
    "parse_protocol",
    "ProductProtocol",
    "MAJORITY_A",
    "MAJORITY_B",
    "UNDECIDED",
    # round-based consensus
    "ConsensusProtocol",
    "BenOrConsensus",
    "EpsilonAgreementConsensus",
    "RoundsEngine",
    # simulation
    "AgentEngine",
    "CountEngine",
    "CountEnsembleEngine",
    "EnsembleEngine",
    "NullSkippingEngine",
    "ContinuousTimeEngine",
    "BatchEngine",
    "RunResult",
    "RunSpec",
    "simulate",
    "run",
    "run_majority",
    "run_trials",
    "run_trials_parallel",
    # fault injection
    "FaultSpec",
    "corrupt_counts",
    "protocol_to_dict",
    "protocol_from_dict",
    "run_result_to_dict",
    "run_result_from_dict",
    "MajorityWorkload",
    "margin_workload",
    "bernoulli_workload",
    "worst_case_workload",
    # errors
    "ReproError",
    "ProtocolError",
    "InvalidParameterError",
    "InvalidStateError",
    "SimulationError",
    "ConvergenceTimeout",
    "AnalysisError",
    "ExperimentError",
]
