"""Mean-field (ODE) limits of the baseline dynamics.

As ``n`` grows, the per-state *fractions* of the three- and four-state
protocols concentrate around the solution of a system of ODEs — the
"limit system dynamics" [PVV09] analyze for the three-state protocol.
With fractions ``a`` (state A), ``b`` (state B), ``u`` (blank) and one
parallel-time unit equal to ``n`` interactions, the three-state limit
is::

    da/dt = -a b + 2 a u
    db/dt = -a b + 2 b u
    du/dt = 2 a b - 2 a u - 2 b u

(an ordered pair ``(A, B)`` occurs with probability ``a b`` per
interaction and blanks the responder; a blank meets a decided agent
with probability ``2 a u`` and is recruited).  The four-state limit,
with ``p1/m1`` the strong and ``p0/m0`` the weak fractions::

    dp1/dt = -2 p1 m1
    dm1/dt = -2 p1 m1
    dp0/dt =  2 p1 m1 + 2 p1 m0 - 2 m1 p0
    dm0/dt =  2 p1 m1 - 2 p1 m0 + 2 m1 p0

This module integrates both systems with ``scipy`` and extracts
ODE-level convergence times, used (a) to validate the simulators
against an independent model of the same dynamics and (b) to reproduce
[PVV09]'s ``O(log(1/eps) + log n)`` limit-time claim numerically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp

from ..errors import AnalysisError, InvalidParameterError

__all__ = [
    "three_state_ode",
    "four_state_ode",
    "solve_three_state",
    "solve_four_state",
    "three_state_ode_convergence_time",
    "four_state_ode_convergence_time",
    "MeanFieldSolution",
]


@dataclass(frozen=True, slots=True)
class MeanFieldSolution:
    """An integrated mean-field trajectory.

    ``times`` is the evaluation grid (parallel time); ``fractions`` has
    one row per state, matching the order documented by the producing
    function.
    """

    times: np.ndarray
    fractions: np.ndarray
    labels: tuple[str, ...]

    def fraction(self, label: str) -> np.ndarray:
        """Trajectory of one labelled state fraction."""
        try:
            row = self.labels.index(label)
        except ValueError:
            raise InvalidParameterError(
                f"unknown label {label!r}; have {self.labels}") from None
        return self.fractions[row]


def three_state_ode(time: float, y: np.ndarray) -> list[float]:
    """Right-hand side of the three-state limit ODE (a, b, u)."""
    a, b, u = y
    return [-a * b + 2 * a * u,
            -a * b + 2 * b * u,
            2 * a * b - 2 * a * u - 2 * b * u]


def four_state_ode(time: float, y: np.ndarray) -> list[float]:
    """Right-hand side of the four-state limit ODE (p1, m1, p0, m0)."""
    p1, m1, p0, m0 = y
    annihilation = 2 * p1 * m1
    plus_flips = 2 * p1 * m0   # -0 agents flipping to +0
    minus_flips = 2 * m1 * p0  # +0 agents flipping to -0
    return [-annihilation,
            -annihilation,
            annihilation + plus_flips - minus_flips,
            annihilation - plus_flips + minus_flips]


def _integrate(rhs, y0, t_max, labels, num_points):
    grid = np.linspace(0.0, t_max, num_points)
    solution = solve_ivp(rhs, (0.0, t_max), y0, t_eval=grid,
                         rtol=1e-9, atol=1e-12, method="RK45")
    if not solution.success:
        raise AnalysisError(f"ODE integration failed: {solution.message}")
    return MeanFieldSolution(times=solution.t, fractions=solution.y,
                             labels=labels)


def solve_three_state(fraction_a: float, fraction_b: float, *,
                      t_max: float = 50.0,
                      num_points: int = 1000) -> MeanFieldSolution:
    """Integrate the three-state limit from fractions ``(a, b)``."""
    _check_fractions(fraction_a, fraction_b)
    y0 = [fraction_a, fraction_b, 1.0 - fraction_a - fraction_b]
    return _integrate(three_state_ode, y0, t_max, ("A", "B", "_"),
                      num_points)


def solve_four_state(fraction_a: float, fraction_b: float, *,
                     t_max: float = 50.0,
                     num_points: int = 1000) -> MeanFieldSolution:
    """Integrate the four-state limit from strong fractions ``(a, b)``."""
    _check_fractions(fraction_a, fraction_b)
    y0 = [fraction_a, fraction_b, 0.0, 1.0 - fraction_a - fraction_b]
    return _integrate(four_state_ode, y0, t_max, ("+1", "-1", "+0", "-0"),
                      num_points)


def _check_fractions(fraction_a: float, fraction_b: float) -> None:
    if fraction_a < 0 or fraction_b < 0 or fraction_a + fraction_b > 1:
        raise InvalidParameterError(
            f"fractions must be non-negative with sum <= 1, "
            f"got ({fraction_a}, {fraction_b})")


def three_state_ode_convergence_time(epsilon: float, *,
                                     threshold: float = 1e-3,
                                     t_max: float = 1e4) -> float:
    """Limit-dynamics convergence time from a margin of ``epsilon``.

    Starts from ``a = (1 + eps)/2, b = (1 - eps)/2`` and reports the
    first time the combined minority-and-blank mass drops below
    ``threshold``.  [PVV09] prove this scales as
    ``O(log(1/eps) + log(1/threshold))``.
    """
    if not 0.0 < epsilon <= 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1], got "
                                    f"{epsilon}")

    def settled(time, y):
        return (y[1] + y[2]) - threshold

    settled.terminal = True
    settled.direction = -1
    y0 = [(1.0 + epsilon) / 2.0, (1.0 - epsilon) / 2.0, 0.0]
    solution = solve_ivp(three_state_ode, (0.0, t_max), y0,
                         events=settled, rtol=1e-9, atol=1e-12)
    if not solution.success:
        raise AnalysisError(f"ODE integration failed: {solution.message}")
    if not len(solution.t_events[0]):
        raise AnalysisError(
            f"three-state ODE did not converge within t_max={t_max}")
    return float(solution.t_events[0][0])


def four_state_ode_convergence_time(epsilon: float, *,
                                    threshold: float = 1e-3,
                                    t_max: float = 1e6) -> float:
    """Limit-dynamics convergence time of the four-state protocol.

    Starts from strong fractions ``((1+eps)/2, (1-eps)/2)`` and reports
    the first time minority mass (strong plus weak) drops below
    ``threshold``; scales as ``Theta(log(1/threshold)/eps)`` — the ODE
    view of the protocol's ``1/eps`` wall.
    """
    if not 0.0 < epsilon <= 1.0:
        raise InvalidParameterError(f"epsilon must be in (0, 1], got "
                                    f"{epsilon}")

    def settled(time, y):
        return (y[1] + y[3]) - threshold

    settled.terminal = True
    settled.direction = -1
    y0 = [(1.0 + epsilon) / 2.0, (1.0 - epsilon) / 2.0, 0.0, 0.0]
    solution = solve_ivp(four_state_ode, (0.0, t_max), y0,
                         events=settled, rtol=1e-9, atol=1e-12)
    if not solution.success:
        raise AnalysisError(f"ODE integration failed: {solution.message}")
    if not len(solution.t_events[0]):
        raise AnalysisError(
            f"four-state ODE did not converge within t_max={t_max}")
    return float(solution.t_events[0][0])
