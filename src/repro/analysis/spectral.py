"""Spectral-gap analysis for general interaction graphs [DV12].

[DV12] bound the four-state (interval consensus) convergence time on a
connected graph ``G`` by ``(log n + 1) / delta(G, eps)``, where
``delta`` is an eigenvalue gap of a family of interaction-rate
matrices.  Computing ``delta`` exactly requires a minimization over
vertex subsets; the standard relaxation — and the quantity this module
computes — is the spectral gap ``lambda_2`` of the rate Laplacian:
under uniform edge selection each undirected edge fires at rate
``1 / |E|`` (in parallel-time units, ``n / (2 |E|)`` per endpoint
pair), so the mixing-limiting quantity is the algebraic connectivity
of the graph scaled by the edge-selection rate.

These helpers exist to make the topology experiments quantitative:
measured convergence times across clique / ring / torus / expander
correlate with ``1 / spectral_gap`` (see
``tests/analysis/test_spectral.py``).
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError, InvalidParameterError

__all__ = ["rate_laplacian", "spectral_gap", "relaxation_time",
           "dv12_style_bound"]


def rate_laplacian(graph) -> np.ndarray:
    """Laplacian of the pairwise interaction rates, in parallel time.

    With one interaction per step and parallel time = steps / n, each
    undirected edge fires at rate ``n / |E|`` per parallel-time unit
    (both orientations).  The returned matrix is ``(n / |E|) * L(G)``
    with ``L`` the combinatorial Laplacian.
    """
    import networkx as nx

    n = graph.number_of_nodes()
    num_edges = graph.number_of_edges()
    if n < 2 or num_edges < 1:
        raise InvalidParameterError("graph needs >= 2 nodes and an edge")
    if not nx.is_connected(graph):
        raise InvalidParameterError("graph must be connected")
    laplacian = nx.laplacian_matrix(graph).toarray().astype(float)
    return laplacian * (n / num_edges)


def spectral_gap(graph) -> float:
    """Second-smallest eigenvalue of the rate Laplacian.

    The clique's gap is ``Theta(1)`` (fast mixing); a ring's is
    ``Theta(1/n^2)`` — the spectrum of convergence behaviour the
    topology experiments demonstrate.
    """
    eigenvalues = np.linalg.eigvalsh(rate_laplacian(graph))
    gap = float(eigenvalues[1])
    if gap <= 1e-12:
        raise AnalysisError(
            "zero spectral gap on a connected graph — numerical issue")
    return gap


def relaxation_time(graph) -> float:
    """``1 / spectral_gap``: the natural time scale of consensus."""
    return 1.0 / spectral_gap(graph)


def dv12_style_bound(graph, epsilon: float) -> float:
    """A [DV12]-style convergence estimate ``(log n + 1)/(eps * gap)``.

    Uses the spectral gap as a (relaxed) stand-in for ``delta(G,
    eps)`` with the margin factored out explicitly; constants are set
    to 1, so treat it as a shape predictor, not an absolute bound.
    """
    if not 0.0 < epsilon <= 1.0:
        raise InvalidParameterError(
            f"epsilon must be in (0, 1], got {epsilon}")
    n = graph.number_of_nodes()
    return (np.log(n) + 1.0) / (epsilon * spectral_gap(graph))
