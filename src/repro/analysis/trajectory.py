"""Trajectory analysis: looking inside an AVC execution.

The convergence proof of Theorem 4.1 decomposes an execution into
structural phases:

* **halving** (Claim A.2): the extremal weights in the system halve
  every ``O(log n)`` parallel time, so after ``O(log m log n)`` time
  only values in ``{-1, 0, 1}`` remain;
* **no early zeros** (Claim A.3): no agent reaches weight 0 during the
  halving phase (w.h.p., in the theorem's parameter regime);
* **endgame** (Claims 4.5 / A.4): the surplus of small positive values
  sweeps the remaining ``-1``/``-0`` agents.

This module extracts exactly those quantities from recorded
trajectories (:class:`~repro.sim.record.TrajectoryRecorder`
snapshots), so the proof structure can be *watched* on real runs —
see ``tests/analysis/test_trajectory.py`` and the ``phases``
experiment for the empirical reproduction of Claim A.2's geometric
decay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.avc import AVCProtocol
from ..errors import InvalidParameterError

__all__ = ["AVCTrajectory", "analyze_avc_trajectory"]


@dataclass(frozen=True)
class AVCTrajectory:
    """Structural time series extracted from one AVC run.

    All arrays are parallel to :attr:`times` (parallel-time units).
    """

    times: np.ndarray
    #: Largest weight among positive-value agents (0 if none).
    max_positive_weight: np.ndarray
    #: Largest weight among negative-value agents (0 if none).
    max_negative_weight: np.ndarray
    #: Number of agents with weight 0.
    weak_count: np.ndarray
    #: Number of agents with strictly positive / negative values.
    positive_count: np.ndarray
    negative_count: np.ndarray
    #: Conserved total value per snapshot (must be constant).
    total_value: np.ndarray

    @property
    def sum_invariant_holds(self) -> bool:
        """Invariant 4.3 across every snapshot."""
        return bool(np.all(self.total_value == self.total_value[0]))

    def halving_times(self, *, sign: int = -1) -> list[tuple[int, float]]:
        """When the extremal weight of ``sign`` first drops below each
        power-of-two threshold.

        Returns ``(threshold, parallel_time)`` pairs for thresholds
        ``m, m/2, m/4, ...`` — Claim A.2 predicts roughly evenly
        spaced times (each halving costs ``O(log n)``).
        """
        series = (self.max_negative_weight if sign < 0
                  else self.max_positive_weight)
        if not len(series):
            return []
        start = int(series[0])
        results = []
        threshold = start
        while threshold >= 1:
            below = np.flatnonzero(series <= threshold)
            if len(below):
                results.append((threshold, float(self.times[below[0]])))
            threshold //= 2
        return results


def analyze_avc_trajectory(protocol: AVCProtocol, steps, snapshots
                           ) -> AVCTrajectory:
    """Build an :class:`AVCTrajectory` from recorder output.

    ``steps`` and ``snapshots`` are as returned by
    :meth:`repro.sim.record.TrajectoryRecorder.as_matrix` (or the
    parallel lists); snapshots are dense count vectors in the
    protocol's state order.
    """
    steps = np.asarray(steps, dtype=np.int64)
    matrix = np.asarray(snapshots, dtype=np.int64)
    if matrix.ndim != 2 or matrix.shape[1] != protocol.num_states:
        raise InvalidParameterError(
            f"snapshots must be rows of {protocol.num_states} counts")
    if len(steps) != len(matrix):
        raise InvalidParameterError("steps and snapshots length mismatch")
    population = matrix[0].sum()

    values = np.array([state.value for state in protocol.states])
    weights = np.array([state.weight for state in protocol.states])
    positive = values > 0
    negative = values < 0
    weak = weights == 0

    max_pos = np.zeros(len(matrix), dtype=np.int64)
    max_neg = np.zeros(len(matrix), dtype=np.int64)
    for row_index, row in enumerate(matrix):
        present = row > 0
        pos_weights = weights[present & positive]
        neg_weights = weights[present & negative]
        max_pos[row_index] = pos_weights.max() if len(pos_weights) else 0
        max_neg[row_index] = neg_weights.max() if len(neg_weights) else 0

    return AVCTrajectory(
        times=steps / population,
        max_positive_weight=max_pos,
        max_negative_weight=max_neg,
        weak_count=(matrix[:, weak]).sum(axis=1),
        positive_count=(matrix[:, positive]).sum(axis=1),
        negative_count=(matrix[:, negative]).sum(axis=1),
        total_value=matrix @ values,
    )
