"""Analytical companions to the simulators.

* :mod:`repro.analysis.theory` — the paper's closed-form bounds;
* :mod:`repro.analysis.meanfield` — ODE limit dynamics [PVV09];
* :mod:`repro.analysis.markov` — exact configuration-chain analysis;
* :mod:`repro.analysis.stats` — summary statistics for experiments.
"""

from .markov import ChainSummary, ConfigurationChain
from .meanfield import (
    MeanFieldSolution,
    four_state_ode,
    four_state_ode_convergence_time,
    solve_four_state,
    solve_three_state,
    three_state_ode,
    three_state_ode_convergence_time,
)
from .spectral import (
    dv12_style_bound,
    rate_laplacian,
    relaxation_time,
    spectral_gap,
)
from .stats import (
    SummaryStats,
    bootstrap_mean_ci,
    geometric_mean,
    mean_confidence_interval,
    summarize,
)
from .theory import (
    avc_states_for_polylog,
    avc_time_bound,
    avc_time_bound_whp,
    four_state_time_bound,
    kl_bernoulli,
    lower_bound_any_states,
    lower_bound_four_states,
    three_state_error_probability,
    three_state_time_bound,
    voter_error_probability,
    voter_time_bound,
)

__all__ = [
    "ConfigurationChain",
    "ChainSummary",
    "MeanFieldSolution",
    "three_state_ode",
    "four_state_ode",
    "solve_three_state",
    "solve_four_state",
    "three_state_ode_convergence_time",
    "four_state_ode_convergence_time",
    "kl_bernoulli",
    "three_state_error_probability",
    "three_state_time_bound",
    "four_state_time_bound",
    "avc_time_bound",
    "avc_time_bound_whp",
    "avc_states_for_polylog",
    "voter_error_probability",
    "voter_time_bound",
    "lower_bound_four_states",
    "lower_bound_any_states",
    "rate_laplacian",
    "spectral_gap",
    "relaxation_time",
    "dv12_style_bound",
    "SummaryStats",
    "summarize",
    "mean_confidence_interval",
    "bootstrap_mean_ci",
    "geometric_mean",
]
