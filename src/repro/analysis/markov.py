"""Exact Markov-chain analysis of population protocols for small ``n``.

On the clique a protocol execution is a Markov chain whose states are
*configurations* (count vectors).  For small populations the reachable
configuration space is tiny, so we can compute exactly:

* expected settling times (expected hitting time of the settled set),
  by solving the linear system ``(I - Q) t = 1`` over transient
  configurations;
* settlement probabilities per decision — e.g. the *exact* error
  probability of the three-state protocol, the quantity Figure 3
  (right) estimates by simulation.

These exact numbers are the ground truth the simulation engines are
validated against (``tests/analysis/test_markov.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix, identity
from scipy.sparse.linalg import spsolve

from ..errors import AnalysisError, InvalidParameterError
from ..protocols.base import PopulationProtocol

__all__ = ["ConfigurationChain", "ChainSummary"]

_MAX_CONFIGURATIONS = 200_000


@dataclass(frozen=True, slots=True)
class ChainSummary:
    """Exact quantities for one initial configuration."""

    expected_settling_time_steps: float
    expected_settling_time_parallel: float
    settlement_probabilities: dict
    num_reachable: int
    num_settled: int
    num_frozen_unsettled: int


class ConfigurationChain:
    """The exact configuration-space Markov chain from one start.

    Builds the reachable configuration set by BFS, classifies settled
    and frozen configurations, and exposes hitting-time and absorption
    computations.  Configurations are count tuples in protocol state
    order.
    """

    def __init__(self, protocol: PopulationProtocol, initial_counts):
        self.protocol = protocol
        initial_vector = protocol.counts_to_vector(initial_counts)
        self.n = int(initial_vector.sum())
        if self.n < 2:
            raise InvalidParameterError(
                f"population must have >= 2 agents, got {self.n}")
        self.initial = tuple(int(c) for c in initial_vector)
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _neighbors(self, config: tuple) -> dict:
        """Successor configurations with transition probabilities.

        Returns a mapping target-config -> probability, including the
        self-loop mass from null interactions.
        """
        protocol = self.protocol
        n = self.n
        total_pairs = n * (n - 1)
        result: dict[tuple, float] = {}
        for i, count_i in enumerate(config):
            if not count_i:
                continue
            for j, count_j in enumerate(config):
                weight = count_i * (count_j - (1 if i == j else 0))
                if weight <= 0:
                    continue
                new_i, new_j = protocol.transition_index(i, j)
                if (new_i, new_j) == (i, j):
                    target = config
                else:
                    mutable = list(config)
                    mutable[i] -= 1
                    mutable[j] -= 1
                    mutable[new_i] += 1
                    mutable[new_j] += 1
                    target = tuple(mutable)
                result[target] = result.get(target, 0.0) \
                    + weight / total_pairs
        return result

    def _build(self) -> None:
        protocol = self.protocol
        index_of: dict[tuple, int] = {self.initial: 0}
        configs: list[tuple] = [self.initial]
        adjacency: list[dict] = []
        settled_flags: list[bool] = []
        frontier = [self.initial]
        while frontier:
            next_frontier = []
            for config in frontier:
                settled = protocol.is_settled_vector(list(config))
                settled_flags.append(settled)
                if settled:
                    adjacency.append({config: 1.0})
                    continue
                neighbors = self._neighbors(config)
                adjacency.append(neighbors)
                for target in neighbors:
                    if target not in index_of:
                        if len(configs) >= _MAX_CONFIGURATIONS:
                            raise AnalysisError(
                                "reachable configuration space exceeds "
                                f"{_MAX_CONFIGURATIONS}; use a smaller n")
                        index_of[target] = len(configs)
                        configs.append(target)
                        next_frontier.append(target)
            frontier = next_frontier
        self.configs = configs
        self.index_of = index_of
        self._adjacency = adjacency
        self.settled = np.array(settled_flags, dtype=bool)
        # Frozen: every interaction is a self-loop but not settled.
        self.frozen_unsettled = np.array(
            [not settled_flags[k]
             and set(adjacency[k]) == {configs[k]}
             for k in range(len(configs))], dtype=bool)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_configurations(self) -> int:
        return len(self.configs)

    def _transient_system(self):
        absorbing = self.settled | self.frozen_unsettled
        transient = np.flatnonzero(~absorbing)
        position = {int(k): idx for idx, k in enumerate(transient)}
        rows, cols, values = [], [], []
        for idx, k in enumerate(transient):
            for target, probability in self._adjacency[int(k)].items():
                target_index = self.index_of[target]
                if target_index in position:
                    rows.append(idx)
                    cols.append(position[target_index])
                    values.append(probability)
        size = len(transient)
        q_matrix = csr_matrix((values, (rows, cols)), shape=(size, size))
        return transient, position, q_matrix

    def expected_settling_time(self) -> float:
        """Expected steps from the initial configuration to settlement.

        ``inf`` when a frozen non-settled configuration is reachable
        (then settlement has probability < 1 and no finite
        expectation).
        """
        if self.settled[0]:
            return 0.0
        if self.frozen_unsettled.any():
            return math.inf
        transient, position, q_matrix = self._transient_system()
        system = identity(len(transient), format="csr") - q_matrix
        times = spsolve(system.tocsc(), np.ones(len(transient)))
        return float(times[position[0]])

    def settlement_probabilities(self) -> dict:
        """Probability of settling per decision (plus ``None`` for
        never settling via a frozen deadlock)."""
        absorbing = self.settled | self.frozen_unsettled
        outcomes: dict = {}
        outcome_of = {}
        for k in np.flatnonzero(absorbing):
            config = self.configs[int(k)]
            if self.settled[k]:
                sparse = self.protocol.vector_to_counts(list(config))
                decision = _unanimous_output(self.protocol, sparse)
            else:
                decision = None
            outcome_of[int(k)] = decision
            outcomes.setdefault(decision, 0.0)
        if self.settled[0] or self.frozen_unsettled[0]:
            outcomes[outcome_of[0]] = 1.0
            return outcomes
        transient, position, q_matrix = self._transient_system()
        system = (identity(len(transient), format="csr") - q_matrix).tocsc()
        for decision in list(outcomes):
            rhs = np.zeros(len(transient))
            for idx, k in enumerate(transient):
                for target, probability in self._adjacency[int(k)].items():
                    target_index = self.index_of[target]
                    if target_index in outcome_of \
                            and outcome_of[target_index] == decision:
                        rhs[idx] += probability
            probabilities = spsolve(system, rhs)
            outcomes[decision] = float(probabilities[position[0]])
        return outcomes

    def summary(self) -> ChainSummary:
        """All exact quantities bundled together."""
        steps = self.expected_settling_time()
        return ChainSummary(
            expected_settling_time_steps=steps,
            expected_settling_time_parallel=steps / self.n,
            settlement_probabilities=self.settlement_probabilities(),
            num_reachable=self.num_configurations,
            num_settled=int(self.settled.sum()),
            num_frozen_unsettled=int(self.frozen_unsettled.sum()),
        )


def _unanimous_output(protocol, sparse_counts):
    outputs = {protocol.output(state) for state, count in
               sparse_counts.items() if count}
    if len(outputs) != 1:
        raise AnalysisError(
            f"settled configuration {sparse_counts} lacks a unanimous "
            "output — is_settled is inconsistent")
    return outputs.pop()
