"""Scaling-law fits for sweep results.

The paper's claims are about *growth rates* — the four-state
protocol's time is Θ(1/ε), AVC's leading term is Θ(1/(sε)), knowledge
propagation is Θ(log n).  These helpers turn measured sweeps into
fitted exponents so tests and benchmarks can assert slopes instead of
eyeballing log-log plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError, InvalidParameterError

__all__ = ["PowerLawFit", "fit_power_law", "fit_logarithmic"]


@dataclass(frozen=True, slots=True)
class PowerLawFit:
    """Least-squares fit of ``y = coefficient * x ** exponent``."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        """The fitted value at ``x``."""
        return self.coefficient * x ** self.exponent


def _validated(xs, ys, *, positive_y=True):
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise InvalidParameterError("xs and ys must be equal-length 1-D")
    if len(xs) < 2:
        raise InvalidParameterError("need at least two points to fit")
    if (xs <= 0).any() or (positive_y and (ys <= 0).any()):
        raise InvalidParameterError(
            "log-space fits need strictly positive data")
    return xs, ys


def _r_squared(target, predicted) -> float:
    residual = float(((target - predicted) ** 2).sum())
    total = float(((target - target.mean()) ** 2).sum())
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total


def fit_power_law(xs, ys) -> PowerLawFit:
    """Fit ``y ~ C * x^a`` by least squares in log-log space.

    A measured Θ(1/ε) sweep over ``xs = eps`` fits ``a ≈ -1``; the
    returned ``r_squared`` (in log space) tells you whether a power
    law describes the data at all.
    """
    xs, ys = _validated(xs, ys)
    log_x = np.log(xs)
    log_y = np.log(ys)
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    return PowerLawFit(exponent=float(slope),
                       coefficient=float(np.exp(intercept)),
                       r_squared=_r_squared(log_y, predicted))


def fit_logarithmic(xs, ys) -> PowerLawFit:
    """Fit ``y ~ a * ln(x) + b`` (for Θ(log n) sweeps).

    Reuses :class:`PowerLawFit` with ``exponent`` holding the slope
    ``a`` and ``coefficient`` holding the offset ``b``; ``predict``
    is not meaningful for this fit, use ``exponent * ln(x) +
    coefficient``.
    """
    xs, ys = _validated(xs, ys, positive_y=False)
    log_x = np.log(xs)
    slope, intercept = np.polyfit(log_x, ys, 1)
    predicted = slope * log_x + intercept
    fit = PowerLawFit(exponent=float(slope),
                      coefficient=float(intercept),
                      r_squared=_r_squared(ys, predicted))
    if not np.isfinite(fit.exponent):
        raise AnalysisError("logarithmic fit diverged")
    return fit
