"""Small statistics helpers for experiment summaries."""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError
from ..rng import ensure_rng

__all__ = ["mean_confidence_interval", "bootstrap_mean_ci",
           "geometric_mean", "SummaryStats", "summarize"]


@dataclass(frozen=True, slots=True)
class SummaryStats:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summarize(values: Sequence[float]) -> SummaryStats:
    """Summary statistics of a non-empty sample."""
    if not len(values):
        raise InvalidParameterError("cannot summarize an empty sample")
    array = np.asarray(values, dtype=float)
    return SummaryStats(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(array.min()),
        median=float(np.median(array)),
        maximum=float(array.max()),
    )


def mean_confidence_interval(values: Sequence[float],
                             confidence: float = 0.95
                             ) -> tuple[float, float, float]:
    """Normal-approximation CI for the mean: ``(mean, low, high)``."""
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(
            f"confidence must be in (0, 1), got {confidence}")
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise InvalidParameterError("cannot build a CI from no data")
    mean = float(array.mean())
    if array.size == 1:
        return mean, mean, mean
    from scipy.stats import norm

    z = norm.ppf(0.5 + confidence / 2.0)
    half_width = z * float(array.std(ddof=1)) / math.sqrt(array.size)
    return mean, mean - half_width, mean + half_width


def bootstrap_mean_ci(values: Sequence[float], confidence: float = 0.95,
                      num_resamples: int = 2000, *, rng=None
                      ) -> tuple[float, float, float]:
    """Percentile-bootstrap CI for the mean: ``(mean, low, high)``.

    Convergence times are heavy-tailed, so the bootstrap is the honest
    default for experiment tables.
    """
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(
            f"confidence must be in (0, 1), got {confidence}")
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise InvalidParameterError("cannot bootstrap no data")
    generator = ensure_rng(rng)
    resample_indices = generator.integers(0, array.size,
                                          size=(num_resamples, array.size))
    resample_means = array[resample_indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(resample_means, [alpha, 1.0 - alpha])
    return float(array.mean()), float(low), float(high)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (for speedup ratios)."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise InvalidParameterError("cannot average an empty sample")
    if (array <= 0).any():
        raise InvalidParameterError("geometric mean needs positive values")
    return float(np.exp(np.log(array).mean()))
