"""Closed-form bounds and formulas quoted by the paper.

These are the analytical predictions that the benchmark harness prints
next to measured values:

* Theorem 4.1 — AVC expected parallel time
  ``O(log n / (s * eps) + log n log s)``;
* [PVV09] — three-state error probability
  ``exp(-n * D((1+eps)/2 || 1/2))`` with ``D`` the Kullback-Leibler
  divergence between Bernoulli distributions, and the asymptotic form
  ``exp(-c eps^2 n)``;
* [DV12] — four-state expected parallel time ``O(log n / eps)`` on the
  clique;
* [HP99] — voter-model error probability ``(1 - eps) / 2``.

Big-O constants are unknowable from the paper, so every bound here is
reported *up to its leading constant* (set to 1); they are meant for
shape comparisons (slopes, crossovers), not absolute predictions.
"""

from __future__ import annotations

import math

from ..errors import InvalidParameterError

__all__ = [
    "kl_bernoulli",
    "three_state_error_probability",
    "three_state_time_bound",
    "four_state_time_bound",
    "avc_time_bound",
    "avc_time_bound_whp",
    "avc_states_for_polylog",
    "voter_error_probability",
    "voter_time_bound",
    "lower_bound_four_states",
    "lower_bound_any_states",
]


def _check_margin(epsilon: float) -> None:
    if not 0.0 < epsilon <= 1.0:
        raise InvalidParameterError(
            f"margin epsilon must be in (0, 1], got {epsilon}")


def _check_n(n: int) -> None:
    if n < 2:
        raise InvalidParameterError(f"n must be >= 2, got {n}")


def kl_bernoulli(p: float, q: float) -> float:
    """KL divergence ``D(p || q)`` between Bernoulli(p) and Bernoulli(q)."""
    if not 0.0 <= p <= 1.0 or not 0.0 < q < 1.0:
        raise InvalidParameterError(
            f"need p in [0,1], q in (0,1); got p={p}, q={q}")
    divergence = 0.0
    if p > 0.0:
        divergence += p * math.log(p / q)
    if p < 1.0:
        divergence += (1.0 - p) * math.log((1.0 - p) / (1.0 - q))
    return divergence


def three_state_error_probability(n: int, epsilon: float) -> float:
    """[PVV09]'s tight error bound ``exp(-n D((1+eps)/2 || 1/2))``."""
    _check_n(n)
    _check_margin(epsilon)
    return math.exp(-n * kl_bernoulli((1.0 + epsilon) / 2.0, 0.5))


def three_state_time_bound(n: int, epsilon: float) -> float:
    """[PVV09] limit-dynamics bound ``O(log(1/eps) + log n)``."""
    _check_n(n)
    _check_margin(epsilon)
    return math.log(1.0 / epsilon) + math.log(n)


def four_state_time_bound(n: int, epsilon: float) -> float:
    """[DV12] clique bound ``O(log n / eps)``."""
    _check_n(n)
    _check_margin(epsilon)
    return math.log(n) / epsilon


def avc_time_bound(n: int, s: int, epsilon: float) -> float:
    """Theorem 4.1 expectation: ``log n/(s eps) + log n log s``."""
    _check_n(n)
    _check_margin(epsilon)
    if s < 4:
        raise InvalidParameterError(f"AVC needs s >= 4 states, got {s}")
    log_n = math.log(n)
    return log_n / (s * epsilon) + log_n * math.log(s)


def avc_time_bound_whp(n: int, s: int, epsilon: float) -> float:
    """Theorem 4.1 w.h.p. form: ``log^2 n/(s eps) + log^2 n``."""
    _check_n(n)
    _check_margin(epsilon)
    if s < 4:
        raise InvalidParameterError(f"AVC needs s >= 4 states, got {s}")
    log_n = math.log(n)
    return log_n * log_n / (s * epsilon) + log_n * log_n


def avc_states_for_polylog(epsilon: float) -> int:
    """The state count making AVC poly-logarithmic: ``s >= 1/eps``.

    Corollary 4.2's setting, rounded up to an admissible count
    (``s = m + 2d + 1`` with odd ``m`` and ``d = 1`` needs ``s`` even).
    """
    _check_margin(epsilon)
    s = max(4, math.ceil(1.0 / epsilon))
    if s % 2:
        s += 1  # make m = s - 3 odd
    return s


def voter_error_probability(epsilon: float) -> float:
    """[HP99]: the voter model errs with the minority fraction."""
    _check_margin(epsilon)
    return (1.0 - epsilon) / 2.0


def voter_time_bound(n: int) -> float:
    """[HP99]: expected parallel convergence time ``Theta(n)``."""
    _check_n(n)
    return float(n)


def lower_bound_four_states(epsilon: float) -> float:
    """Theorem B.1: any exact 4-state protocol needs ``Omega(1/eps)``."""
    _check_margin(epsilon)
    return 1.0 / epsilon


def lower_bound_any_states(n: int) -> float:
    """Theorem C.1: any exact protocol needs ``Omega(log n)``."""
    _check_n(n)
    return math.log(n)
