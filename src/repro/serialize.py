"""JSON serialization for protocols and results.

Long sweeps produce results worth archiving and protocols worth
sharing; this module provides stable JSON forms for both:

* :func:`protocol_to_dict` / :func:`protocol_from_dict` — round-trips
  every built-in protocol (by name and parameters) and arbitrary
  table-driven protocols (by their full rule table);
* :func:`run_result_to_dict` / :func:`run_result_from_dict` —
  round-trips :class:`~repro.sim.results.RunResult`; state keys in
  ``final_counts`` are stored as their string forms and mapped back
  through the owning protocol when one is supplied;
* :func:`trial_stats_to_dict` / :func:`trial_stats_from_dict`;
* :func:`spec_to_dict` / :func:`spec_from_dict` — round-trips a
  :class:`~repro.sim.run.RunSpec` (the wire form of the simulation
  service's ``POST /runs`` body; ``RunSpec.to_json``/``from_json``
  are thin wrappers).  The round trip preserves ``spec.key()``, so a
  spec shipped over HTTP addresses the same cache entry as one built
  locally.

All dictionaries are plain JSON types, so ``json.dumps`` works
directly on them.
"""

from __future__ import annotations

import dataclasses

from .consensus.algorithms import (
    BenOrConsensus,
    EpsilonAgreementConsensus,
)
from .core.avc import AVCProtocol
from .errors import InvalidParameterError
from .faults import FaultSpec
from .protocols.base import PopulationProtocol, UNDECIDED
from .protocols.four_state import FourStateProtocol
from .protocols.interval_consensus import IntervalConsensusProtocol
from .protocols.leader_election import (
    LeveledLeaderElection,
    PairwiseLeaderElection,
)
from .protocols.successors import (
    LogStateMajorityProtocol,
    PhaseDoublingProtocol,
)
from .protocols.table import MajorityTableProtocol, TableProtocol
from .protocols.three_state import ThreeStateProtocol
from .protocols.voter import VoterProtocol
from .sim.results import RunResult, TrialStats

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "protocol_to_dict",
    "protocol_from_dict",
    "run_result_to_dict",
    "run_result_from_dict",
    "trial_stats_to_dict",
    "trial_stats_from_dict",
    "fault_spec_to_dict",
    "fault_spec_from_dict",
    "spec_to_dict",
    "spec_from_dict",
]

#: Version stamp of the RunSpec wire form below.  Bump on breaking
#: layout changes; :func:`spec_from_dict` rejects other versions.
SPEC_SCHEMA_VERSION = 1

_SIMPLE_KINDS = {
    "three-state": ThreeStateProtocol,
    "four-state": FourStateProtocol,
    "interval-consensus": IntervalConsensusProtocol,
    "voter": VoterProtocol,
    "leader-election": PairwiseLeaderElection,
    "ben-or": BenOrConsensus,
}


def protocol_to_dict(protocol: PopulationProtocol) -> dict:
    """A JSON-safe description sufficient to rebuild the protocol."""
    if isinstance(protocol, AVCProtocol):
        return {"kind": "avc", "m": protocol.m, "d": protocol.d}
    if isinstance(protocol, PhaseDoublingProtocol):
        return {"kind": "phase-doubling", "levels": protocol.levels,
                "theta": protocol.theta}
    if isinstance(protocol, LogStateMajorityProtocol):
        return {"kind": "log-state", "levels": protocol.levels,
                "phase_len": protocol.phase_len}
    if isinstance(protocol, LeveledLeaderElection):
        return {"kind": "leveled-leader-election",
                "levels": protocol.levels}
    if isinstance(protocol, EpsilonAgreementConsensus):
        return {"kind": "epsilon-agreement",
                "epsilon_agree": protocol.epsilon_agree}
    for kind, cls in _SIMPLE_KINDS.items():
        if type(protocol) is cls:
            return {"kind": kind}
    if isinstance(protocol, TableProtocol):
        payload = {
            "kind": "table",
            "name": protocol.name,
            "states": [str(s) for s in protocol.states],
            "transitions": [
                [list(pair), list(protocol.transition(*pair))]
                for pair in _changing_pairs(protocol)
            ],
            "outputs": {
                str(s): protocol.output(s) for s in protocol.states
                if protocol.output(s) is not UNDECIDED
            },
        }
        if isinstance(protocol, MajorityTableProtocol):
            payload["kind"] = "majority-table"
            payload["input_a"] = protocol.initial_state("A")
            payload["input_b"] = protocol.initial_state("B")
        return payload
    raise InvalidParameterError(
        f"cannot serialize protocol of type {type(protocol).__name__}; "
        "express it as a TableProtocol first")


def _changing_pairs(protocol: TableProtocol):
    for x in protocol.states:
        for y in protocol.states:
            if protocol.transition(x, y) != (x, y):
                yield (x, y)


def protocol_from_dict(payload: dict) -> PopulationProtocol:
    """Rebuild a protocol serialized by :func:`protocol_to_dict`.

    Also accepts the *registry form* ``{"name": ..., "params": {...}}``
    — the wire spelling used when a client addresses a protocol by its
    :mod:`repro.protocols.registry` name instead of a serialized kind.
    Unknown names raise :class:`InvalidParameterError` listing the
    registered ones (HTTP 422 through the service).
    """
    kind = payload.get("kind")
    if kind is None and "name" in payload:
        from .protocols import registry

        name = payload["name"]
        if not isinstance(name, str):
            raise InvalidParameterError(
                f"protocol name must be a string, got {name!r}")
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise InvalidParameterError(
                f"protocol params must be an object, got {params!r}")
        extra = sorted(set(payload) - {"name", "params"})
        if extra:
            raise InvalidParameterError(
                f"unknown protocol field(s) {extra}; the registry form "
                "takes 'name' and 'params' only")
        return registry.create(name, params)
    if kind == "avc":
        return AVCProtocol(m=payload["m"], d=payload["d"])
    if kind == "phase-doubling":
        return PhaseDoublingProtocol(levels=payload["levels"],
                                     theta=payload["theta"])
    if kind == "log-state":
        return LogStateMajorityProtocol(levels=payload["levels"],
                                        phase_len=payload["phase_len"])
    if kind == "leveled-leader-election":
        return LeveledLeaderElection(levels=payload["levels"])
    if kind == "epsilon-agreement":
        return EpsilonAgreementConsensus(
            epsilon_agree=payload["epsilon_agree"])
    if kind in _SIMPLE_KINDS:
        return _SIMPLE_KINDS[kind]()
    if kind in ("table", "majority-table"):
        transitions = {tuple(pair): tuple(result)
                       for pair, result in payload["transitions"]}
        kwargs = dict(
            states=tuple(payload["states"]),
            transitions=transitions,
            outputs=payload.get("outputs", {}),
            name=payload.get("name", "table"),
            symmetric=False,
        )
        if kind == "majority-table":
            return MajorityTableProtocol(
                input_a=payload["input_a"], input_b=payload["input_b"],
                **kwargs)
        return TableProtocol(**kwargs)
    raise InvalidParameterError(f"unknown protocol kind {kind!r}")


def run_result_to_dict(result: RunResult) -> dict:
    """JSON-safe form of a :class:`RunResult`."""
    return {
        "protocol_name": result.protocol_name,
        "engine_name": result.engine_name,
        "n": result.n,
        "steps": result.steps,
        "settled": result.settled,
        "decision": result.decision,
        "expected": result.expected,
        "final_counts": {str(state): int(count)
                         for state, count in result.final_counts.items()},
        "productive_steps": result.productive_steps,
        "continuous_time": result.continuous_time,
        "seed": result.seed,
        "frozen": result.frozen,
        "fault_events": result.fault_events,
    }


def run_result_from_dict(payload: dict,
                         protocol: PopulationProtocol | None = None
                         ) -> RunResult:
    """Rebuild a :class:`RunResult`.

    With ``protocol`` given, ``final_counts`` keys are mapped back to
    the protocol's state objects (matching on their string forms);
    otherwise they stay strings.
    """
    counts = dict(payload["final_counts"])
    if protocol is not None:
        by_string = {str(state): state for state in protocol.states}
        try:
            counts = {by_string[key]: value
                      for key, value in counts.items()}
        except KeyError as missing:
            raise InvalidParameterError(
                f"final_counts key {missing} is not a state of "
                f"{protocol.name}") from None
    return RunResult(
        protocol_name=payload["protocol_name"],
        engine_name=payload["engine_name"],
        n=payload["n"],
        steps=payload["steps"],
        settled=payload["settled"],
        decision=payload["decision"],
        expected=payload["expected"],
        final_counts=counts,
        productive_steps=payload.get("productive_steps"),
        continuous_time=payload.get("continuous_time"),
        seed=payload.get("seed"),
        frozen=payload.get("frozen", False),
        fault_events=payload.get("fault_events"),
    )


def trial_stats_to_dict(stats: TrialStats) -> dict:
    """JSON-safe form of :class:`TrialStats`."""
    return {
        "num_trials": stats.num_trials,
        "num_settled": stats.num_settled,
        "num_correct": stats.num_correct,
        "mean_parallel_time": stats.mean_parallel_time,
        "std_parallel_time": stats.std_parallel_time,
        "min_parallel_time": stats.min_parallel_time,
        "max_parallel_time": stats.max_parallel_time,
        "mean_steps": stats.mean_steps,
    }


def trial_stats_from_dict(payload: dict) -> TrialStats:
    """Rebuild :class:`TrialStats` from its JSON form."""
    return TrialStats(**payload)


# ----------------------------------------------------------------------
# RunSpec wire form
# ----------------------------------------------------------------------

_FAULT_FIELDS = {field.name for field in dataclasses.fields(FaultSpec)}

#: RunSpec fields shipped on the wire, with their defaults.  Only
#: non-default values are emitted, so the wire form stays compact and
#: two spellings of the same spec serialize identically.  Runtime-only
#: fields (telemetry, recorder, event_observer, graph) are deliberately
#: absent: they cannot cross a process boundary and never enter
#: ``spec.key()``.
_SPEC_WIRE_FIELDS = {
    "n": None,
    "epsilon": None,
    "count_a": None,
    "count_b": None,
    "majority": "A",
    "expected": None,
    "num_trials": 1,
    "seed": None,
    "engine": "auto",
    "batch_fraction": 0.05,
    "max_steps": None,
    "max_parallel_time": None,
    "on_timeout": "return",
}


def fault_spec_to_dict(faults: FaultSpec) -> dict:
    """JSON-safe form of a :class:`~repro.faults.FaultSpec`.

    Identical to :meth:`FaultSpec.key` — non-default fields only — so
    the wire form of a fault model is exactly its fingerprint fragment.
    """
    if not isinstance(faults, FaultSpec):
        raise InvalidParameterError(
            f"faults must be a repro.FaultSpec, "
            f"got {type(faults).__name__}")
    return faults.key()


def fault_spec_from_dict(payload: dict) -> FaultSpec:
    """Rebuild a :class:`~repro.faults.FaultSpec` from its JSON form."""
    if not isinstance(payload, dict):
        raise InvalidParameterError(
            f"faults must be an object, got {type(payload).__name__}")
    unknown = sorted(set(payload) - _FAULT_FIELDS)
    if unknown:
        raise InvalidParameterError(
            f"unknown FaultSpec field(s) {unknown}; "
            f"known fields: {sorted(_FAULT_FIELDS)}")
    return FaultSpec(**payload)


def spec_to_dict(spec) -> dict:
    """The JSON wire form of a :class:`~repro.sim.run.RunSpec`.

    Raises :class:`InvalidParameterError` for specs that cannot cross
    a process boundary: engine *instances* (use a registered name),
    interaction graphs, and attached telemetry/recorder/observer
    objects.  The round trip through :func:`spec_from_dict` preserves
    ``spec.key()`` exactly.
    """
    for name in ("recorder", "event_observer", "graph"):
        if getattr(spec, name) is not None:
            raise InvalidParameterError(
                f"a spec with {name} cannot be serialized; it is a "
                "runtime-only object")
    if not isinstance(spec.engine, str):
        raise InvalidParameterError(
            "engine instances cannot be serialized; use a registered "
            "engine name")
    if spec.seed is not None and not isinstance(spec.seed, int):
        raise InvalidParameterError(
            "only integer (or None) seeds serialize; generator seeds "
            "are process-local state")
    payload: dict = {"schema": SPEC_SCHEMA_VERSION,
                     "protocol": protocol_to_dict(spec.protocol)}
    for name, default in _SPEC_WIRE_FIELDS.items():
        value = getattr(spec, name)
        if value != default:
            payload[name] = value
    if spec.initial is not None:
        payload["initial"] = {str(state): int(count)
                              for state, count in spec.initial.items()}
    if spec.faults is not None:
        payload["faults"] = fault_spec_to_dict(spec.faults)
    return payload


def spec_from_dict(payload: dict):
    """Rebuild a :class:`~repro.sim.run.RunSpec` from its wire form.

    Every malformed payload raises :class:`InvalidParameterError` with
    a message naming the offending field — the simulation service maps
    these 1:1 onto HTTP 422 responses.
    """
    from .sim.run import RunSpec

    if not isinstance(payload, dict):
        raise InvalidParameterError(
            f"spec must be a JSON object, got {type(payload).__name__}")
    schema = payload.get("schema", SPEC_SCHEMA_VERSION)
    if schema != SPEC_SCHEMA_VERSION:
        raise InvalidParameterError(
            f"unsupported spec schema {schema!r}; this library speaks "
            f"version {SPEC_SCHEMA_VERSION}")
    known = set(_SPEC_WIRE_FIELDS) | {"schema", "protocol", "initial",
                                      "faults"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise InvalidParameterError(
            f"unknown spec field(s) {unknown}; known fields: "
            f"{sorted(known)}")
    if "protocol" not in payload:
        raise InvalidParameterError("spec is missing 'protocol'")
    if not isinstance(payload["protocol"], dict):
        raise InvalidParameterError(
            "protocol must be an object (see protocol_to_dict)")
    protocol = protocol_from_dict(payload["protocol"])
    kwargs = {}
    for name, default in _SPEC_WIRE_FIELDS.items():
        if name in payload:
            kwargs[name] = payload[name]
    seed = kwargs.get("seed")
    if seed is not None and not isinstance(seed, int):
        raise InvalidParameterError(
            f"seed must be an integer or null, got {seed!r}")
    engine = kwargs.get("engine", "auto")
    if not isinstance(engine, str):
        raise InvalidParameterError(
            f"engine must be a registered engine name, got {engine!r}")
    if "initial" in payload:
        initial = payload["initial"]
        if not isinstance(initial, dict):
            raise InvalidParameterError(
                f"initial must be an object mapping state names to "
                f"counts, got {type(initial).__name__}")
        by_string = {str(state): state for state in protocol.states}
        counts = {}
        for key, value in initial.items():
            if key not in by_string:
                raise InvalidParameterError(
                    f"initial state {key!r} is not a state of "
                    f"{protocol.name}")
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                raise InvalidParameterError(
                    f"initial count for {key!r} must be a non-negative "
                    f"integer, got {value!r}")
            counts[by_string[key]] = value
        kwargs["initial"] = counts
    if "faults" in payload and payload["faults"] is not None:
        kwargs["faults"] = fault_spec_from_dict(payload["faults"])
    try:
        spec = RunSpec(protocol, **kwargs)
        # Resolve the input eagerly: the constructor defers range
        # checks (n > 0, |epsilon| <= 1, ...) to first use, but a spec
        # arriving over the wire should fail at the door (HTTP 422),
        # not later inside a worker.
        spec.resolve_input()
    except TypeError as error:
        # e.g. a string where a number belongs — dataclass field types
        # are not enforced, so surface whatever __post_init__ tripped on.
        raise InvalidParameterError(str(error)) from None
    return spec
