"""JSON serialization for protocols and results.

Long sweeps produce results worth archiving and protocols worth
sharing; this module provides stable JSON forms for both:

* :func:`protocol_to_dict` / :func:`protocol_from_dict` — round-trips
  every built-in protocol (by name and parameters) and arbitrary
  table-driven protocols (by their full rule table);
* :func:`run_result_to_dict` / :func:`run_result_from_dict` —
  round-trips :class:`~repro.sim.results.RunResult`; state keys in
  ``final_counts`` are stored as their string forms and mapped back
  through the owning protocol when one is supplied;
* :func:`trial_stats_to_dict` / :func:`trial_stats_from_dict`.

All dictionaries are plain JSON types, so ``json.dumps`` works
directly on them.
"""

from __future__ import annotations

from .core.avc import AVCProtocol
from .errors import InvalidParameterError
from .protocols.base import PopulationProtocol, UNDECIDED
from .protocols.four_state import FourStateProtocol
from .protocols.interval_consensus import IntervalConsensusProtocol
from .protocols.leader_election import (
    LeveledLeaderElection,
    PairwiseLeaderElection,
)
from .protocols.table import MajorityTableProtocol, TableProtocol
from .protocols.three_state import ThreeStateProtocol
from .protocols.voter import VoterProtocol
from .sim.results import RunResult, TrialStats

__all__ = [
    "protocol_to_dict",
    "protocol_from_dict",
    "run_result_to_dict",
    "run_result_from_dict",
    "trial_stats_to_dict",
    "trial_stats_from_dict",
]

_SIMPLE_KINDS = {
    "three-state": ThreeStateProtocol,
    "four-state": FourStateProtocol,
    "interval-consensus": IntervalConsensusProtocol,
    "voter": VoterProtocol,
    "leader-election": PairwiseLeaderElection,
}


def protocol_to_dict(protocol: PopulationProtocol) -> dict:
    """A JSON-safe description sufficient to rebuild the protocol."""
    if isinstance(protocol, AVCProtocol):
        return {"kind": "avc", "m": protocol.m, "d": protocol.d}
    if isinstance(protocol, LeveledLeaderElection):
        return {"kind": "leveled-leader-election",
                "levels": protocol.levels}
    for kind, cls in _SIMPLE_KINDS.items():
        if type(protocol) is cls:
            return {"kind": kind}
    if isinstance(protocol, TableProtocol):
        payload = {
            "kind": "table",
            "name": protocol.name,
            "states": [str(s) for s in protocol.states],
            "transitions": [
                [list(pair), list(protocol.transition(*pair))]
                for pair in _changing_pairs(protocol)
            ],
            "outputs": {
                str(s): protocol.output(s) for s in protocol.states
                if protocol.output(s) is not UNDECIDED
            },
        }
        if isinstance(protocol, MajorityTableProtocol):
            payload["kind"] = "majority-table"
            payload["input_a"] = protocol.initial_state("A")
            payload["input_b"] = protocol.initial_state("B")
        return payload
    raise InvalidParameterError(
        f"cannot serialize protocol of type {type(protocol).__name__}; "
        "express it as a TableProtocol first")


def _changing_pairs(protocol: TableProtocol):
    for x in protocol.states:
        for y in protocol.states:
            if protocol.transition(x, y) != (x, y):
                yield (x, y)


def protocol_from_dict(payload: dict) -> PopulationProtocol:
    """Rebuild a protocol serialized by :func:`protocol_to_dict`."""
    kind = payload.get("kind")
    if kind == "avc":
        return AVCProtocol(m=payload["m"], d=payload["d"])
    if kind == "leveled-leader-election":
        return LeveledLeaderElection(levels=payload["levels"])
    if kind in _SIMPLE_KINDS:
        return _SIMPLE_KINDS[kind]()
    if kind in ("table", "majority-table"):
        transitions = {tuple(pair): tuple(result)
                       for pair, result in payload["transitions"]}
        kwargs = dict(
            states=tuple(payload["states"]),
            transitions=transitions,
            outputs=payload.get("outputs", {}),
            name=payload.get("name", "table"),
            symmetric=False,
        )
        if kind == "majority-table":
            return MajorityTableProtocol(
                input_a=payload["input_a"], input_b=payload["input_b"],
                **kwargs)
        return TableProtocol(**kwargs)
    raise InvalidParameterError(f"unknown protocol kind {kind!r}")


def run_result_to_dict(result: RunResult) -> dict:
    """JSON-safe form of a :class:`RunResult`."""
    return {
        "protocol_name": result.protocol_name,
        "engine_name": result.engine_name,
        "n": result.n,
        "steps": result.steps,
        "settled": result.settled,
        "decision": result.decision,
        "expected": result.expected,
        "final_counts": {str(state): int(count)
                         for state, count in result.final_counts.items()},
        "productive_steps": result.productive_steps,
        "continuous_time": result.continuous_time,
        "seed": result.seed,
        "frozen": result.frozen,
        "fault_events": result.fault_events,
    }


def run_result_from_dict(payload: dict,
                         protocol: PopulationProtocol | None = None
                         ) -> RunResult:
    """Rebuild a :class:`RunResult`.

    With ``protocol`` given, ``final_counts`` keys are mapped back to
    the protocol's state objects (matching on their string forms);
    otherwise they stay strings.
    """
    counts = dict(payload["final_counts"])
    if protocol is not None:
        by_string = {str(state): state for state in protocol.states}
        try:
            counts = {by_string[key]: value
                      for key, value in counts.items()}
        except KeyError as missing:
            raise InvalidParameterError(
                f"final_counts key {missing} is not a state of "
                f"{protocol.name}") from None
    return RunResult(
        protocol_name=payload["protocol_name"],
        engine_name=payload["engine_name"],
        n=payload["n"],
        steps=payload["steps"],
        settled=payload["settled"],
        decision=payload["decision"],
        expected=payload["expected"],
        final_counts=counts,
        productive_steps=payload.get("productive_steps"),
        continuous_time=payload.get("continuous_time"),
        seed=payload.get("seed"),
        frozen=payload.get("frozen", False),
        fault_events=payload.get("fault_events"),
    )


def trial_stats_to_dict(stats: TrialStats) -> dict:
    """JSON-safe form of :class:`TrialStats`."""
    return {
        "num_trials": stats.num_trials,
        "num_settled": stats.num_settled,
        "num_correct": stats.num_correct,
        "mean_parallel_time": stats.mean_parallel_time,
        "std_parallel_time": stats.std_parallel_time,
        "min_parallel_time": stats.min_parallel_time,
        "max_parallel_time": stats.max_parallel_time,
        "mean_steps": stats.mean_steps,
    }


def trial_stats_from_dict(payload: dict) -> TrialStats:
    """Rebuild :class:`TrialStats` from its JSON form."""
    return TrialStats(**payload)
