"""Workload generators: initial configurations beyond the exact margin.

The evaluation harness mostly uses exact-margin inputs (``n`` agents,
advantage fixed to the agent).  Real deployments see other input
distributions; this module provides the generators used by the
examples and tests:

* :func:`margin_workload` — the paper's workload: an exact advantage
  of ``round(eps * n)`` agents (delegates to the protocol's builder);
* :func:`bernoulli_workload` — every agent samples input A
  independently with probability ``p``; the *realized* majority (which
  may disagree with the expectation when ``p ~ 1/2``!) is returned
  alongside the counts, so correctness is judged against the actual
  input;
* :func:`worst_case_workload` — the lower-bound regime: a single-agent
  advantage (``eps = 1/n``);
* :func:`clustered_placement` — for graph runs: an agent array with
  all A-agents contiguous in node order, the adversarial placement for
  ring-like topologies (random placement is what
  :class:`~repro.sim.agent_engine.AgentEngine` does by default).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import InvalidParameterError
from .protocols.base import MAJORITY_A, MAJORITY_B, MajorityProtocol
from .rng import ensure_rng

__all__ = [
    "MajorityWorkload",
    "margin_workload",
    "bernoulli_workload",
    "worst_case_workload",
    "clustered_placement",
]


@dataclass(frozen=True)
class MajorityWorkload:
    """An initial configuration plus its ground truth."""

    counts: dict
    count_a: int
    count_b: int

    @property
    def n(self) -> int:
        return self.count_a + self.count_b

    @property
    def expected(self):
        """The correct output (``None`` for an exact tie)."""
        if self.count_a > self.count_b:
            return MAJORITY_A
        if self.count_b > self.count_a:
            return MAJORITY_B
        return None

    @property
    def epsilon(self) -> float:
        """The realized relative advantage."""
        return abs(self.count_a - self.count_b) / self.n


def _build(protocol: MajorityProtocol, count_a: int,
           count_b: int) -> MajorityWorkload:
    return MajorityWorkload(
        counts=protocol.initial_counts(count_a, count_b),
        count_a=count_a, count_b=count_b)


def margin_workload(protocol: MajorityProtocol, n: int, epsilon: float,
                    majority: str = "A") -> MajorityWorkload:
    """The paper's exact-margin workload."""
    counts = protocol.initial_counts_for_margin(n, epsilon, majority)
    advantage = round(epsilon * n)
    larger = (n + advantage) // 2
    if majority == "A":
        return MajorityWorkload(counts, larger, n - larger)
    return MajorityWorkload(counts, n - larger, larger)


def bernoulli_workload(protocol: MajorityProtocol, n: int, p: float, *,
                       rng=None) -> MajorityWorkload:
    """Each agent independently starts in A with probability ``p``.

    Near ``p = 1/2`` the realized majority is essentially a coin flip
    with margin ``Theta(sqrt(n))`` — the regime where approximate
    protocols break and AVC's exactness matters.
    """
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"p must be in [0, 1], got {p}")
    if n < 2:
        raise InvalidParameterError(f"n must be >= 2, got {n}")
    generator = ensure_rng(rng)
    count_a = int(generator.binomial(n, p))
    return _build(protocol, count_a, n - count_a)


def worst_case_workload(protocol: MajorityProtocol, n: int,
                        majority: str = "A") -> MajorityWorkload:
    """The hardest legal input: a one-agent advantage (needs odd n)."""
    if n % 2 == 0:
        raise InvalidParameterError(
            f"single-agent advantage needs odd n, got {n}")
    return margin_workload(protocol, n, 1.0 / n, majority)


def clustered_placement(protocol: MajorityProtocol,
                        workload: MajorityWorkload) -> list:
    """Agent-state list with all A-agents first (contiguous).

    For graph engines this is the adversarial placement: on a ring it
    creates exactly two opinion boundaries, the slowest possible
    mixing.  Feed it to :class:`~repro.sim.agent_engine.AgentEngine`
    via a custom initial assignment by building counts per node
    yourself, or use it to study boundary dynamics directly.
    """
    state_a = protocol.initial_state(protocol.INPUT_A)
    state_b = protocol.initial_state(protocol.INPUT_B)
    return [state_a] * workload.count_a + [state_b] * workload.count_b
