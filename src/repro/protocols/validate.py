"""Validation for user-defined population protocols.

The engines assume several properties that a hand-written
:class:`~repro.protocols.base.PopulationProtocol` can silently
violate: the transition function must be total and closed over the
declared state space, outputs must be 0/1/undecided, and the
``is_settled`` predicate must be *sound* (never claim settledness a
future interaction could undo) and honor its declared
support-only/unanimity shortcuts.  :func:`validate_protocol` checks
all of this exhaustively on small populations and raises
:class:`~repro.errors.ProtocolError` with a precise description on the
first violation — run it once in a test before trusting a new
protocol on million-step simulations.
"""

from __future__ import annotations

import itertools

from ..errors import ProtocolError
from ..lowerbounds.reachability import (
    brute_force_is_settled,
    brute_force_output_stable,
)
from .base import MajorityProtocol, PopulationProtocol, UNDECIDED

__all__ = ["validate_protocol"]


def _check_transition_closure(protocol: PopulationProtocol) -> None:
    states = protocol.states
    known = set(states)
    for x, y in itertools.product(states, repeat=2):
        try:
            result = protocol.transition(x, y)
        except Exception as error:
            raise ProtocolError(
                f"{protocol.name}: transition({x!r}, {y!r}) raised "
                f"{error!r}") from error
        if not isinstance(result, tuple) or len(result) != 2:
            raise ProtocolError(
                f"{protocol.name}: transition({x!r}, {y!r}) must return "
                f"a pair, got {result!r}")
        for new in result:
            if new not in known:
                raise ProtocolError(
                    f"{protocol.name}: transition({x!r}, {y!r}) left the "
                    f"state space with {new!r}")
        repeat = protocol.transition(x, y)
        if repeat != result:
            raise ProtocolError(
                f"{protocol.name}: transition({x!r}, {y!r}) is "
                f"non-deterministic: {result!r} then {repeat!r}")


def _check_outputs(protocol: PopulationProtocol) -> None:
    for state in protocol.states:
        value = protocol.output(state)
        if value is not UNDECIDED and value not in (0, 1):
            raise ProtocolError(
                f"{protocol.name}: output({state!r}) must be 0, 1, or "
                f"UNDECIDED, got {value!r}")


def _configurations(num_states: int, max_agents: int):
    for total in range(2, max_agents + 1):
        for cuts in itertools.combinations_with_replacement(
                range(num_states), total):
            config = [0] * num_states
            for index in cuts:
                config[index] += 1
            yield tuple(config)


def _check_is_settled(protocol: PopulationProtocol,
                      max_agents: int) -> None:
    states = protocol.states
    # Majority-style protocols settle on a unanimous output; other
    # protocols (e.g. leader election) settle when every agent's
    # output is final.  Both oracles are exact on small systems.
    majority_style = (isinstance(protocol, MajorityProtocol)
                      or getattr(protocol, "unanimity_settles", False))
    oracle = (brute_force_is_settled if majority_style
              else brute_force_output_stable)
    support_verdicts: dict[frozenset, bool] = {}
    for config in _configurations(protocol.num_states, max_agents):
        sparse = {states[i]: c for i, c in enumerate(config) if c}
        claimed = protocol.is_settled(sparse)
        actual = oracle(protocol, sparse)
        if claimed and not actual:
            raise ProtocolError(
                f"{protocol.name}: is_settled claims {sparse} is settled "
                "but a reachable configuration changes some output")
        if getattr(protocol, "unanimity_settles", False):
            outputs = {protocol.output(s) for s in sparse}
            unanimous = (UNDECIDED not in outputs and len(outputs) == 1)
            if claimed != unanimous:
                raise ProtocolError(
                    f"{protocol.name}: declares unanimity_settles but "
                    f"is_settled({sparse}) = {claimed} while unanimity "
                    f"= {unanimous}")
        if getattr(protocol, "settled_support_only", True):
            support = frozenset(sparse)
            previous = support_verdicts.setdefault(support, claimed)
            if previous != claimed:
                raise ProtocolError(
                    f"{protocol.name}: declares settled_support_only but "
                    f"is_settled differs across counts with support "
                    f"{set(support)}")


def validate_protocol(protocol: PopulationProtocol, *,
                      max_agents: int = 4) -> None:
    """Exhaustively validate ``protocol`` on populations up to
    ``max_agents`` (cost grows like ``s^max_agents`` — keep it small
    for large state spaces).  Raises :class:`ProtocolError` on the
    first violation; returns ``None`` when everything checks out.
    """
    if max_agents < 2:
        raise ProtocolError("max_agents must be >= 2 to validate")
    if protocol.num_states < 1:
        raise ProtocolError(f"{protocol.name}: empty state space")
    if len(set(protocol.states)) != protocol.num_states:
        raise ProtocolError(f"{protocol.name}: duplicate states")
    _check_transition_closure(protocol)
    _check_outputs(protocol)
    _check_is_settled(protocol, max_agents)
