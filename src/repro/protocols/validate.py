"""Validation for user-defined population protocols.

The engines assume several properties that a hand-written
:class:`~repro.protocols.base.PopulationProtocol` can silently
violate: the transition function must be total and closed over the
declared state space, outputs must be 0/1/undecided, and the
``is_settled`` predicate must be *sound* (never claim settledness a
future interaction could undo) and honor its declared
support-only/unanimity shortcuts.  :func:`validate_protocol` checks
all of this exhaustively on small populations and raises
:class:`~repro.errors.ProtocolError` with a precise description on the
first violation — run it once in a test before trusting a new
protocol on million-step simulations.

Closure is checked **lazily**: states are discovered by breadth-first
search over pairwise transitions (:func:`reachable_closure`), so only
states actually reachable from the starting support are ever touched
and membership is tested through
:meth:`~repro.protocols.base.PopulationProtocol.is_state` — structured
protocols answer that from field domains without materializing their
product.  Pass ``initial=`` to validate exactly the slice of a large
state space an experiment will exercise; with ``initial=None`` the
walk seeds from *every* declared state, which reproduces the historic
full ``Q x Q`` sweep.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Mapping

from ..errors import ProtocolError
from ..lowerbounds.reachability import (
    brute_force_is_settled,
    brute_force_output_stable,
)
from .base import MajorityProtocol, PopulationProtocol, State, UNDECIDED

__all__ = ["reachable_closure", "validate_protocol"]


def reachable_closure(protocol: PopulationProtocol,
                      support: Iterable[State],
                      *, max_states: int | None = None) -> frozenset:
    """All states reachable from ``support`` under pairwise transitions.

    Breadth-first search over the *support* dynamics (which states can
    appear, ignoring counts) — a superset of the states occurring in
    any reachable configuration, computed without ever enumerating the
    full state space.  Along the way every transition encountered is
    checked for the engine contract (returns a pair, stays inside the
    state space per :meth:`~PopulationProtocol.is_state`, and is
    deterministic on repeat evaluation); violations raise
    :class:`ProtocolError`.

    ``max_states`` bounds the walk for runaway protocols (a transition
    closure escaping into an unexpected region of a huge product);
    exceeding it raises rather than spinning.
    """
    closure: set = set()
    for state in support:
        if not protocol.is_state(state):
            raise ProtocolError(
                f"{protocol.name}: initial state {state!r} is not in "
                "the state space")
        closure.add(state)
    if not closure:
        raise ProtocolError(f"{protocol.name}: empty initial support")
    frontier = list(closure)
    while frontier:
        next_frontier = []
        snapshot = list(closure)
        for x in frontier:
            for y in snapshot:
                for pair in ((x, y), (y, x)):
                    result = _checked_transition(protocol, *pair)
                    for new in result:
                        if new not in closure:
                            closure.add(new)
                            next_frontier.append(new)
                            if (max_states is not None
                                    and len(closure) > max_states):
                                raise ProtocolError(
                                    f"{protocol.name}: reachable "
                                    f"closure exceeded {max_states} "
                                    "states")
        frontier = next_frontier
    return frozenset(closure)


def _checked_transition(protocol: PopulationProtocol, x: State,
                        y: State) -> tuple[State, State]:
    try:
        result = protocol.transition(x, y)
    except Exception as error:
        raise ProtocolError(
            f"{protocol.name}: transition({x!r}, {y!r}) raised "
            f"{error!r}") from error
    if not isinstance(result, tuple) or len(result) != 2:
        raise ProtocolError(
            f"{protocol.name}: transition({x!r}, {y!r}) must return "
            f"a pair, got {result!r}")
    for new in result:
        if not protocol.is_state(new):
            raise ProtocolError(
                f"{protocol.name}: transition({x!r}, {y!r}) left the "
                f"state space with {new!r}")
    repeat = protocol.transition(x, y)
    if repeat != result:
        raise ProtocolError(
            f"{protocol.name}: transition({x!r}, {y!r}) is "
            f"non-deterministic: {result!r} then {repeat!r}")
    return result


def _check_outputs(protocol: PopulationProtocol,
                   states: Iterable[State]) -> None:
    for state in states:
        value = protocol.output(state)
        if value is not UNDECIDED and value not in (0, 1):
            raise ProtocolError(
                f"{protocol.name}: output({state!r}) must be 0, 1, or "
                f"UNDECIDED, got {value!r}")


def _configurations(num_states: int, max_agents: int):
    for total in range(2, max_agents + 1):
        for cuts in itertools.combinations_with_replacement(
                range(num_states), total):
            config = [0] * num_states
            for index in cuts:
                config[index] += 1
            yield tuple(config)


def _check_is_settled(protocol: PopulationProtocol, max_agents: int,
                      states: tuple[State, ...]) -> None:
    # Majority-style protocols settle on a unanimous output; other
    # protocols (e.g. leader election) settle when every agent's
    # output is final.  Both oracles are exact on small systems.
    majority_style = (isinstance(protocol, MajorityProtocol)
                      or getattr(protocol, "unanimity_settles", False))
    oracle = (brute_force_is_settled if majority_style
              else brute_force_output_stable)
    support_verdicts: dict[frozenset, bool] = {}
    for config in _configurations(len(states), max_agents):
        sparse = {states[i]: c for i, c in enumerate(config) if c}
        claimed = protocol.is_settled(sparse)
        actual = oracle(protocol, sparse)
        if claimed and not actual:
            raise ProtocolError(
                f"{protocol.name}: is_settled claims {sparse} is settled "
                "but a reachable configuration changes some output")
        if getattr(protocol, "unanimity_settles", False):
            outputs = {protocol.output(s) for s in sparse}
            unanimous = (UNDECIDED not in outputs and len(outputs) == 1)
            if claimed != unanimous:
                raise ProtocolError(
                    f"{protocol.name}: declares unanimity_settles but "
                    f"is_settled({sparse}) = {claimed} while unanimity "
                    f"= {unanimous}")
        if getattr(protocol, "settled_support_only", True):
            support = frozenset(sparse)
            previous = support_verdicts.setdefault(support, claimed)
            if previous != claimed:
                raise ProtocolError(
                    f"{protocol.name}: declares settled_support_only but "
                    f"is_settled differs across counts with support "
                    f"{set(support)}")


def validate_protocol(protocol: PopulationProtocol, *,
                      max_agents: int = 4,
                      initial: Mapping[State, int] | None = None) -> None:
    """Exhaustively validate ``protocol`` on populations up to
    ``max_agents``.

    With ``initial`` given (a configuration or any state->count
    mapping; counts are ignored), the checks cover exactly the
    transition-reachable closure of its support — the slice of the
    state space a run starting there can visit — so large structured
    protocols validate in time proportional to what they actually use.
    With ``initial=None`` the closure is seeded from every declared
    state, reproducing the historic full ``Q x Q`` sweep.

    The settledness cross-check costs ``O(r^max_agents)`` for a
    reachable set of size ``r`` — keep ``max_agents`` small for large
    state spaces.  Raises :class:`ProtocolError` on the first
    violation; returns ``None`` when everything checks out.
    """
    if max_agents < 2:
        raise ProtocolError("max_agents must be >= 2 to validate")
    if initial is not None:
        seeds = list(initial)
        closure = reachable_closure(protocol, seeds)
        # Deterministic order for the settledness sweep: seeds first,
        # discoveries sorted by their repr (states need not be
        # mutually comparable).
        discovered = sorted(closure - set(seeds), key=repr)
        states: tuple[State, ...] = tuple(seeds) + tuple(discovered)
    else:
        states = protocol.states
        if len(states) < 1:
            raise ProtocolError(f"{protocol.name}: empty state space")
        if len(set(states)) != len(states):
            raise ProtocolError(f"{protocol.name}: duplicate states")
        reachable_closure(protocol, states)
    _check_outputs(protocol, states)
    _check_is_settled(protocol, max_agents, states)
