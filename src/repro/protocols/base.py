"""Core abstractions for population protocols.

A *population protocol* [AAD+06] is a finite state machine executed by
``n`` indistinguishable agents.  In each discrete step the scheduler
draws an ordered pair of distinct agents uniformly at random; both
agents update their state through the deterministic transition function
``delta: Q x Q -> Q x Q``.  An output function ``gamma: Q -> Y`` maps
states to outputs.

This module defines:

* :class:`PopulationProtocol` -- the abstract interface every protocol
  in the library implements.  States may be arbitrary hashable objects;
  engines address them through dense integer indices for speed.
* :class:`StructuredProtocol` -- protocols whose states are tuples of
  typed fields (``phase x level x opinion``-style products), with the
  state space declared as :class:`FieldSpec` domains plus a validity
  predicate and enumerated lazily on first use.
* :class:`MajorityProtocol` -- the specialization for two-input majority
  (inputs ``"A"`` / ``"B"``, outputs ``1`` / ``0``), with helpers to
  build initial configurations from ``(n, epsilon)`` or ``(count_a,
  count_b)``.

State enumeration is *lazy*: subclasses implement
:meth:`PopulationProtocol.enumerate_states` and the ``states`` tuple,
index maps, dense transition tables, and output arrays are
materialized on demand and cached.  Materializing the states tuple
emits a ``protocol.states_materialized`` telemetry counter, so sweeps
can audit which protocols ever paid for eager enumeration.
Overriding the ``states`` property directly (the historical eager
pattern) still works through a compatibility shim but raises
:class:`DeprecationWarning` at class-definition time.

Engines never call :meth:`PopulationProtocol.transition` directly in
their inner loops; they use :meth:`transition_index`, which is memoized
per ordered index pair (the sparse path — only reachable pairs are
ever computed), or :meth:`transition_matrix`, which materializes the
full ``s x s`` table for vectorized engines and is guarded by
:data:`MAX_DENSE_STATES` so structured products too large to densify
fail fast with a capability error instead of allocating gigabytes.
"""

from __future__ import annotations

import itertools
import warnings
from abc import ABC, abstractmethod
from collections.abc import Hashable, Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError, InvalidStateError, ProtocolError
from ..telemetry.context import current as current_telemetry

__all__ = [
    "State",
    "FieldSpec",
    "PopulationProtocol",
    "StructuredProtocol",
    "MajorityProtocol",
    "MAJORITY_A",
    "MAJORITY_B",
    "UNDECIDED",
    "MAX_DENSE_STATES",
]

State = Hashable

#: Largest state space for which the dense ``s x s`` transition tables
#: may be materialized.  Structured products beyond this stay on the
#: sparse per-pair path (:meth:`PopulationProtocol.transition_index`);
#: engines that require dense tables reject such protocols with a
#: capability error (see :meth:`PopulationProtocol.supports_dense_tables`).
MAX_DENSE_STATES = 4096

# Output conventions for majority protocols (the paper's Y = {0, 1}).
MAJORITY_A = 1  #: output value meaning "initial majority was A"
MAJORITY_B = 0  #: output value meaning "initial majority was B"
UNDECIDED = None  #: pseudo-output for states that do not yet map to a decision


class PopulationProtocol(ABC):
    """Abstract base class for population protocols.

    Subclasses provide the state space through
    :meth:`enumerate_states` (lazy — nothing is materialized until an
    engine asks), the transition function, and the output function.
    The base class derives index-based views used by all simulation
    engines.

    Subclasses should treat their state space as immutable after
    construction: the index maps and memoized transition tables are
    built lazily and never invalidated.
    """

    #: Human-readable protocol name (subclasses override).
    name: str = "protocol"

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        # Compatibility shim for the historical eager pattern: a
        # subclass that overrides the ``states`` property directly
        # (instead of implementing enumerate_states) keeps working
        # bit-identically — its property simply shadows the lazy base
        # accessor — but the pattern is deprecated.
        if "states" in cls.__dict__ and "enumerate_states" not in cls.__dict__:
            warnings.warn(
                f"{cls.__name__} overrides PopulationProtocol.states "
                f"directly; implement enumerate_states() instead — "
                f"direct states-tuple construction is deprecated "
                f"(see docs/protocols.md)",
                DeprecationWarning, stacklevel=2)

    #: True when :meth:`is_settled` is exactly "all agents share one
    #: defined output".  Lets engines track convergence in O(1) per
    #: interaction; see :mod:`repro.sim.convergence`.
    unanimity_settles: bool = False

    #: True (the default contract) when :meth:`is_settled` depends only
    #: on the *support* of the configuration — which states are
    #: present, not their exact counts.  Engines then only re-evaluate
    #: it when the support changes.  Protocols whose settledness is
    #: count-sensitive (e.g. leader election's "exactly one leader")
    #: must set this to False.
    settled_support_only: bool = True

    # ------------------------------------------------------------------
    # Interface to implement
    # ------------------------------------------------------------------

    def enumerate_states(self) -> Iterable[State]:
        """Yield every state in index order (lazy, computed on demand).

        The enumeration order is the contract: it defines the dense
        index of every state, which in turn pins the RNG streams of
        every engine.  Implementations must be deterministic.
        """
        raise NotImplementedError(
            f"{type(self).__name__} must implement enumerate_states() "
            "(or, deprecated, override the states property)")

    @abstractmethod
    def transition(self, x: State, y: State) -> tuple[State, State]:
        """Apply the transition function ``delta`` to an ordered pair.

        Returns the updated ordered pair ``(x', y')``.  Must be
        deterministic and total on ``states x states``.
        """

    @abstractmethod
    def output(self, state: State):
        """The output ``gamma(state)``; ``UNDECIDED`` if not yet mapped."""

    @abstractmethod
    def is_settled(self, counts: Mapping[State, int]) -> bool:
        """Whether a configuration has irrevocably converged.

        ``counts`` maps states to agent counts (states with zero count
        may be omitted).  Must return ``True`` only when every agent has
        the same, well-defined output *and* no reachable configuration
        can ever show a different output.  Each implementation justifies
        its predicate in its docstring and is cross-checked against
        brute-force reachability in the test suite for small systems.
        """

    # ------------------------------------------------------------------
    # Derived index-based views (shared by all engines)
    # ------------------------------------------------------------------

    @property
    def states(self) -> tuple[State, ...]:
        """The ordered tuple of all states (defines index order).

        Materialized lazily from :meth:`enumerate_states` on first
        access and cached; the materialization is reported through the
        ``protocol.states_materialized`` telemetry counter so sweeps
        can audit eager enumeration.  Code that only needs membership
        or reachability should prefer :meth:`is_state` and the sparse
        accessors, which never force the full tuple.
        """
        cached = getattr(self, "_states_cache", None)
        if cached is None:
            cached = tuple(self.enumerate_states())
            self._states_cache = cached
            telemetry = current_telemetry()
            if telemetry.enabled:
                telemetry.count("protocol.states_materialized",
                                len(cached), protocol=self.name)
        return cached

    @property
    def num_states(self) -> int:
        """Number of states ``s = |Q|``."""
        return len(self.states)

    def is_state(self, state: State) -> bool:
        """Whether ``state`` belongs to the state space.

        The default materializes the index map; structured protocols
        override this with a field-domain check so reachability walks
        (see :func:`repro.protocols.validate.reachable_closure`) never
        force the full product.
        """
        return state in self.state_index

    @property
    def supports_dense_tables(self) -> bool:
        """Whether the ``s x s`` dense tables may be materialized.

        Engines that vectorize through :meth:`transition_matrix`
        (ensemble family, JIT kernels) check this up front and reject
        oversized protocols with a capability error, steering callers
        to the sparse count/agent paths.
        """
        return self.num_states <= MAX_DENSE_STATES

    @property
    def state_index(self) -> dict[State, int]:
        """Mapping from state object to its dense index."""
        cached = getattr(self, "_state_index_cache", None)
        if cached is None:
            cached = {state: i for i, state in enumerate(self.states)}
            if len(cached) != len(self.states):
                raise ProtocolError(
                    f"{self.name}: duplicate states in state space")
            self._state_index_cache = cached
        return cached

    def index_of(self, state: State) -> int:
        """Dense index of ``state``; raises if unknown."""
        try:
            return self.state_index[state]
        except KeyError:
            raise InvalidStateError(
                f"{state!r} is not a state of protocol {self.name}") from None

    def transition_index(self, i: int, j: int) -> tuple[int, int]:
        """Index-space transition, memoized per ordered pair.

        Memoization keeps engines fast for protocols whose transition is
        computed (AVC) rather than tabulated, without ever materializing
        the full ``s^2`` table for large state spaces.
        """
        cache = getattr(self, "_transition_cache", None)
        if cache is None:
            cache = {}
            self._transition_cache = cache
        key = (i, j)
        result = cache.get(key)
        if result is None:
            states = self.states
            new_x, new_y = self.transition(states[i], states[j])
            result = (self.index_of(new_x), self.index_of(new_y))
            cache[key] = result
        return result

    def transition_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialize the full transition table as two ``s x s`` arrays.

        Returns ``(out_x, out_y)`` where ``out_x[i, j]`` / ``out_y[i,
        j]`` are the indices of the updated states when an agent in
        state ``i`` initiates with an agent in state ``j``.  Intended
        for protocols with small state spaces; guarded to avoid
        accidentally allocating gigantic tables.

        The tables are memoized on the instance (states are immutable
        after construction) and returned read-only, so every engine
        construction and ``run()`` call shares one copy.
        """
        cached = getattr(self, "_transition_matrix_cache", None)
        if cached is None:
            s = self.num_states
            if not self.supports_dense_tables:
                raise ProtocolError(
                    f"{self.name}: refusing to materialize a {s}x{s} "
                    f"transition table (> {MAX_DENSE_STATES} states); "
                    "use transition_index() or iter_transition_rows() "
                    "for large state spaces")
            out_x = np.empty((s, s), dtype=np.int64)
            out_y = np.empty((s, s), dtype=np.int64)
            for i in range(s):
                for j in range(s):
                    out_x[i, j], out_y[i, j] = self.transition_index(i, j)
            out_x.setflags(write=False)
            out_y.setflags(write=False)
            cached = (out_x, out_y)
            self._transition_matrix_cache = cached
        return cached

    def iter_transition_rows(self, block: int = 256
                             ) -> Iterator[tuple[slice, np.ndarray,
                                                 np.ndarray]]:
        """Chunked transition-table rows: ``(rows, out_x, out_y)``.

        Yields blocks of at most ``block`` initiator rows with the
        corresponding ``(len(rows), s)`` index tables.  Peak memory is
        ``O(block * s)`` instead of ``O(s^2)``, so consumers that scan
        the table once (validators, sparse analyses, out-of-core
        kernels) can handle structured products beyond the
        :data:`MAX_DENSE_STATES` dense guard.
        """
        if block < 1:
            raise InvalidParameterError(
                f"block must be >= 1, got {block}")
        s = self.num_states
        for start in range(0, s, block):
            stop = min(start + block, s)
            out_x = np.empty((stop - start, s), dtype=np.int64)
            out_y = np.empty((stop - start, s), dtype=np.int64)
            for i in range(start, stop):
                for j in range(s):
                    out_x[i - start, j], out_y[i - start, j] = \
                        self.transition_index(i, j)
            yield slice(start, stop), out_x, out_y

    def make_batch_kernel(self):
        """A vectorized pairwise-transition kernel, memoized per instance.

        Returns a callable mapping two equal-length arrays of state
        indices to the arrays of updated indices.  Subclasses customize
        the kernel by overriding :meth:`_build_batch_kernel`; the
        memoization here makes repeated engine constructions free.
        """
        cached = getattr(self, "_batch_kernel_cache", None)
        if cached is None:
            cached = self._build_batch_kernel()
            self._batch_kernel_cache = cached
        return cached

    def _build_batch_kernel(self):
        """Construct the kernel behind :meth:`make_batch_kernel`.

        The default implementation fancy-indexes the dense transition
        table and is only suitable for small state spaces; protocols
        with large or structured state spaces (AVC) override it with
        arithmetic kernels.
        """
        out_x, out_y = self.transition_matrix()

        def kernel(index_x, index_y):
            return out_x[index_x, index_y], out_y[index_x, index_y]

        return kernel

    def output_array(self) -> np.ndarray:
        """Outputs per state index, with ``UNDECIDED`` encoded as ``-1``.

        Memoized on the instance and returned read-only; trackers and
        engines index it but never write.
        """
        cached = getattr(self, "_output_array_cache", None)
        if cached is None:
            cached = np.empty(self.num_states, dtype=np.int64)
            for i, state in enumerate(self.states):
                value = self.output(state)
                cached[i] = -1 if value is UNDECIDED else int(value)
            cached.setflags(write=False)
            self._output_array_cache = cached
        return cached

    # ------------------------------------------------------------------
    # Count-vector helpers
    # ------------------------------------------------------------------

    def counts_to_vector(self, counts: Mapping[State, int]) -> np.ndarray:
        """Convert a state->count mapping into a dense count vector."""
        vector = np.zeros(self.num_states, dtype=np.int64)
        for state, count in counts.items():
            if count < 0:
                raise InvalidParameterError(
                    f"negative count {count} for state {state!r}")
            vector[self.index_of(state)] = count
        return vector

    def vector_to_counts(self, vector: Sequence[int]) -> dict[State, int]:
        """Convert a dense count vector back into a sparse mapping."""
        if len(vector) != self.num_states:
            raise InvalidParameterError(
                f"count vector has length {len(vector)}, "
                f"expected {self.num_states}")
        states = self.states
        return {states[i]: int(c) for i, c in enumerate(vector) if c}

    def is_settled_vector(self, vector: Sequence[int]) -> bool:
        """:meth:`is_settled` on a dense count vector."""
        return self.is_settled(self.vector_to_counts(vector))

    def __getstate__(self):
        """Drop the lazily built caches when pickling.

        The batch kernel may be a closure (unpicklable), and the dense
        tables rebuild cheaply on first use — shipping them to worker
        processes would only bloat the payload.
        """
        state = self.__dict__.copy()
        for key in ("_states_cache", "_state_index_cache",
                    "_transition_cache", "_transition_matrix_cache",
                    "_output_array_cache", "_batch_kernel_cache"):
            state.pop(key, None)
        return state

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} s={self.num_states}>"


@dataclass(frozen=True)
class FieldSpec:
    """One typed field of a structured state: a name and its domain.

    The domain order matters: composite states enumerate in
    lexicographic field order, which pins the dense index order and
    therefore every engine's RNG stream.
    """

    name: str
    values: tuple

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise InvalidParameterError(
                f"field name must be a non-empty string, "
                f"got {self.name!r}")
        values = tuple(self.values)
        if not values:
            raise InvalidParameterError(
                f"field {self.name!r} has an empty domain")
        if len(set(values)) != len(values):
            raise InvalidParameterError(
                f"field {self.name!r} has duplicate domain values")
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return len(self.values)


class StructuredProtocol(PopulationProtocol):
    """A protocol whose states are tuples of typed fields.

    Modern phase-clocked protocols carry product states such as
    ``(clock, opinion, level)``; enumerating the full product eagerly
    explodes for ``O(log n)``-per-field domains.  This base class
    declares the state space as a tuple of :class:`FieldSpec` domains
    plus an optional validity predicate and derives everything else
    lazily:

    * :meth:`enumerate_states` walks the field product in
      lexicographic order, keeping only :meth:`is_valid_state`
      combinations — the pruned set is what engines index;
    * :meth:`is_state` checks field membership *without* materializing
      anything, so reachable-set validation stays cheap;
    * the dense tables (:meth:`transition_matrix` and friends) remain
      lazy and guarded exactly as for flat protocols.

    Subclasses call ``super().__init__(fields)`` with their field
    specs and implement ``transition`` / ``output`` / ``is_settled``
    over plain state tuples (unpack the fields positionally).
    """

    def __init__(self, fields: Sequence[FieldSpec]):
        fields = tuple(fields)
        if not fields:
            raise InvalidParameterError(
                f"{type(self).__name__}: at least one field is required")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise InvalidParameterError(
                f"{type(self).__name__}: duplicate field names {names}")
        self._fields = fields
        self._field_pos = {f.name: i for i, f in enumerate(fields)}
        self._field_sets = tuple(frozenset(f.values) for f in fields)

    @property
    def fields(self) -> tuple[FieldSpec, ...]:
        """The typed fields, in tuple-position order."""
        return self._fields

    def is_valid_state(self, state: tuple) -> bool:
        """Whether a field combination is part of the state space.

        Override to prune the raw product (e.g. role-dependent fields
        where a follower carries no clock).  Must be deterministic.
        """
        return True

    def enumerate_states(self) -> Iterator[tuple]:
        """Lazily yield valid field tuples in lexicographic order."""
        domains = [f.values for f in self._fields]
        return (state for state in itertools.product(*domains)
                if self.is_valid_state(state))

    def is_state(self, state: State) -> bool:
        """Field-domain membership check; never materializes states."""
        if not isinstance(state, tuple) or len(state) != len(self._fields):
            return False
        if any(value not in domain
               for value, domain in zip(state, self._field_sets)):
            return False
        return self.is_valid_state(state)

    @property
    def product_size(self) -> int:
        """Size of the *unpruned* field product (cheap, closed form).

        ``num_states <= product_size``; the gap is what the validity
        predicate prunes.  Useful for deciding whether enumeration is
        affordable before forcing it.
        """
        size = 1
        for field in self._fields:
            size *= len(field)
        return size

    # ------------------------------------------------------------------
    # Field helpers (used by tests, analysis, and protocol authors)
    # ------------------------------------------------------------------

    def field_index(self, name: str) -> int:
        """Tuple position of the field called ``name``."""
        try:
            return self._field_pos[name]
        except KeyError:
            raise InvalidParameterError(
                f"{self.name}: unknown field {name!r}; fields are "
                f"{[f.name for f in self._fields]}") from None

    def field_value(self, state: tuple, name: str):
        """The value of field ``name`` inside a state tuple."""
        return state[self.field_index(name)]

    def make_state(self, **field_values) -> tuple:
        """Build (and validate) a state tuple from named field values."""
        unknown = set(field_values) - set(self._field_pos)
        if unknown:
            raise InvalidParameterError(
                f"{self.name}: unknown field(s) {sorted(unknown)}")
        missing = set(self._field_pos) - set(field_values)
        if missing:
            raise InvalidParameterError(
                f"{self.name}: missing field(s) {sorted(missing)}")
        state = tuple(field_values[f.name] for f in self._fields)
        if not self.is_state(state):
            raise InvalidStateError(
                f"{state!r} is not a state of protocol {self.name}")
        return state

    def marginal_counts(self, counts: Mapping[State, int],
                        name: str) -> dict:
        """Project a configuration onto one field (summing counts)."""
        position = self.field_index(name)
        marginal: dict = {}
        for state, count in counts.items():
            key = state[position]
            marginal[key] = marginal.get(key, 0) + count
        return marginal


class MajorityProtocol(PopulationProtocol):
    """A population protocol computing two-input majority.

    Inputs are the symbols ``"A"`` and ``"B"``; the goal output is
    :data:`MAJORITY_A` (= 1) when strictly more agents start in A, and
    :data:`MAJORITY_B` (= 0) when strictly more start in B.
    """

    INPUT_A = "A"
    INPUT_B = "B"

    @abstractmethod
    def initial_state(self, symbol: str) -> State:
        """The starting state for an agent with input ``symbol``."""

    # ------------------------------------------------------------------
    # Initial-configuration builders
    # ------------------------------------------------------------------

    def initial_counts(self, count_a: int, count_b: int) -> dict[State, int]:
        """Initial configuration with ``count_a`` A-agents, ``count_b`` B."""
        if count_a < 0 or count_b < 0:
            raise InvalidParameterError(
                f"counts must be non-negative, got ({count_a}, {count_b})")
        state_a = self.initial_state(self.INPUT_A)
        state_b = self.initial_state(self.INPUT_B)
        if state_a == state_b:
            raise ProtocolError(
                f"{self.name}: inputs A and B map to the same state")
        counts: dict[State, int] = {}
        if count_a:
            counts[state_a] = count_a
        if count_b:
            counts[state_b] = count_b
        return counts

    def initial_counts_for_margin(self, n: int, epsilon: float,
                                  majority: str = "A") -> dict[State, int]:
        """Initial configuration of ``n`` agents with relative advantage
        ``epsilon`` in favour of ``majority``.

        The advantage in *agents* is ``round(epsilon * n)`` and must be
        at least 1 and at most ``n``, with ``n + advantage`` even so the
        split is integral (choose ``n`` odd for ``epsilon = 1/n``).
        """
        if n <= 0:
            raise InvalidParameterError(f"n must be positive, got {n}")
        if majority not in (self.INPUT_A, self.INPUT_B):
            raise InvalidParameterError(
                f"majority must be 'A' or 'B', got {majority!r}")
        advantage = round(epsilon * n)
        if advantage < 1 or advantage > n:
            raise InvalidParameterError(
                f"epsilon={epsilon} gives advantage {advantage} "
                f"outside [1, {n}]")
        if (n + advantage) % 2:
            raise InvalidParameterError(
                f"n={n} with advantage {advantage} does not split into "
                "integer counts; adjust n or epsilon")
        larger = (n + advantage) // 2
        smaller = n - larger
        if majority == self.INPUT_A:
            return self.initial_counts(larger, smaller)
        return self.initial_counts(smaller, larger)

    # ------------------------------------------------------------------
    # Decision inspection
    # ------------------------------------------------------------------

    def decision(self, counts: Mapping[State, int]):
        """The unanimous output of a configuration, if any.

        Returns :data:`MAJORITY_A`, :data:`MAJORITY_B`, or
        :data:`UNDECIDED` when agents disagree or some agent's state has
        no output yet.  States with zero count are ignored.
        """
        seen = None
        for state, count in counts.items():
            if not count:
                continue
            value = self.output(state)
            if value is UNDECIDED:
                return UNDECIDED
            if seen is None:
                seen = value
            elif value != seen:
                return UNDECIDED
        return seen
