"""Leader election protocols — the paper's closing open question.

Section 6 asks "whether the average-and-conquer technique would also
be useful in the context of other problems, such as leader election in
population protocols".  This module provides the baseline protocols
that question is asked against:

* :class:`PairwiseLeaderElection` — the folklore two-state protocol:
  everyone starts as a leader; when two leaders meet, the responder is
  demoted.  Exactly one leader survives (leaders can only disappear in
  pairs minus one), after expected ``Theta(n)`` parallel time: the
  last two leaders need ``~n^2 / 2`` interactions to find each other.
* :class:`LeveledLeaderElection` — leaders additionally carry a level
  in ``0 .. levels-1``.  A higher-level leader demotes a lower-level
  one on contact; two same-level leaders promote the initiator (up to
  the cap) and demote the responder.  Followers remember nothing.
  Levels thin the leader population faster early on (a known
  heuristic from the leader-election literature), but the final
  leader-meets-leader coupon still costs ``Theta(n)`` — matching the
  intuition that averaging-style tricks speed the *bulk* phase, not
  the *endgame*.

Unlike the majority protocols, settledness here is *count-sensitive*
("exactly one leader"), so these classes set
``settled_support_only = False`` (see
:class:`~repro.protocols.base.PopulationProtocol`).
"""

from __future__ import annotations

from collections.abc import Mapping

from ..errors import InvalidParameterError
from .base import PopulationProtocol, State

__all__ = ["PairwiseLeaderElection", "LeveledLeaderElection",
           "FOLLOWER", "LEADER_OUTPUT", "FOLLOWER_OUTPUT"]

FOLLOWER = "F"
LEADER_OUTPUT = 1
FOLLOWER_OUTPUT = 0


class _LeaderElectionBase(PopulationProtocol):
    """Shared scaffolding: outputs, settledness, initial configs."""

    unanimity_settles = False
    settled_support_only = False

    def is_leader(self, state: State) -> bool:
        return state != FOLLOWER

    def output(self, state: State):
        return LEADER_OUTPUT if self.is_leader(state) else FOLLOWER_OUTPUT

    def initial_counts(self, n: int) -> dict[State, int]:
        """Everyone starts as a (level-0) leader."""
        if n < 1:
            raise InvalidParameterError(f"n must be >= 1, got {n}")
        return {self.initial_state(): n}

    def initial_state(self) -> State:
        raise NotImplementedError

    def num_leaders(self, counts: Mapping[State, int]) -> int:
        """Number of agents currently in a leader state."""
        return sum(count for state, count in counts.items()
                   if self.is_leader(state) and count)

    def is_settled(self, counts: Mapping[State, int]) -> bool:
        """Settled iff exactly one leader remains.

        Leader-leader interactions are the only transitions, and each
        removes exactly one leader, so the leader count is
        non-increasing, never skips below one, and a single leader can
        never be demoted — one leader is absorbing and exact.
        """
        return self.num_leaders(counts) == 1


class PairwiseLeaderElection(_LeaderElectionBase):
    """Two states: leader or follower; leaders demote each other."""

    name = "leader-election"

    _LEADER = "L"
    _STATES = (_LEADER, FOLLOWER)

    def enumerate_states(self):
        return self._STATES

    def initial_state(self) -> State:
        return self._LEADER

    def transition(self, x: State, y: State) -> tuple[State, State]:
        if x == self._LEADER and y == self._LEADER:
            return self._LEADER, FOLLOWER
        return x, y


class LeveledLeaderElection(_LeaderElectionBase):
    """Leaders carry levels; higher level wins, ties promote.

    ``levels`` is the number of distinct leader levels (``1`` recovers
    :class:`PairwiseLeaderElection` up to state names).
    """

    def __init__(self, levels: int = 4):
        if levels < 1:
            raise InvalidParameterError(
                f"levels must be >= 1, got {levels}")
        self.levels = levels
        self.name = f"leader-election(levels={levels})"

    def enumerate_states(self):
        return tuple(f"L{k}" for k in range(self.levels)) + (FOLLOWER,)

    def initial_state(self) -> State:
        return "L0"

    def _level(self, state: State) -> int:
        return int(state[1:])

    def transition(self, x: State, y: State) -> tuple[State, State]:
        if not (self.is_leader(x) and self.is_leader(y)):
            return x, y
        level_x, level_y = self._level(x), self._level(y)
        if level_x > level_y:
            return x, FOLLOWER
        if level_y > level_x:
            return FOLLOWER, y
        promoted = min(level_x + 1, self.levels - 1)
        return f"L{promoted}", FOLLOWER
