"""Population protocol definitions: the abstract interface and baselines.

The paper's own contribution (AVC) lives in :mod:`repro.core`; this
package holds the shared :class:`~repro.protocols.base.PopulationProtocol`
abstraction, the published baselines it is compared against, and
table-driven protocols for ad-hoc definitions.
"""

from . import registry
from .base import (
    MAJORITY_A,
    MAJORITY_B,
    UNDECIDED,
    FieldSpec,
    MajorityProtocol,
    PopulationProtocol,
    StructuredProtocol,
)
from .compose import ProductProtocol
from .dsl import parse_protocol
from .four_state import FourStateProtocol
from .interval_consensus import IntervalConsensusProtocol
from .leader_election import LeveledLeaderElection, PairwiseLeaderElection
from .successors import LogStateMajorityProtocol, PhaseDoublingProtocol
from .table import MajorityTableProtocol, TableProtocol
from .three_state import ThreeStateProtocol
from .validate import validate_protocol
from .voter import VoterProtocol

__all__ = [
    "MAJORITY_A",
    "MAJORITY_B",
    "UNDECIDED",
    "FieldSpec",
    "PopulationProtocol",
    "StructuredProtocol",
    "MajorityProtocol",
    "ThreeStateProtocol",
    "FourStateProtocol",
    "IntervalConsensusProtocol",
    "PairwiseLeaderElection",
    "LeveledLeaderElection",
    "VoterProtocol",
    "TableProtocol",
    "MajorityTableProtocol",
    "PhaseDoublingProtocol",
    "LogStateMajorityProtocol",
    "validate_protocol",
    "parse_protocol",
    "ProductProtocol",
    "registry",
]
