"""The protocol registry: name -> protocol factory.

Mirrors :mod:`repro.sim.engines`: protocols register themselves under
a name, experiment CLIs and the HTTP service resolve ``name + params``
through :func:`create` instead of hard-coding constructors, and
third-party code plugs in with :func:`register`.

:class:`~repro.sim.run.RunSpec` accepts a registered name (or a
``(name, params)`` pair) directly in its ``protocol`` field, and the
service wire form accepts ``{"protocol": {"name": ..., "params":
{...}}}`` — unknown names fail with
:class:`~repro.errors.InvalidParameterError` listing the valid ones,
which the service maps onto HTTP 422.

Registry construction never changes fingerprints: :func:`create`
returns ordinary protocol instances, and the run-store key is computed
from :func:`repro.serialize.protocol_to_dict` of the *instance*, so
``create("avc", {"m": 63})`` addresses exactly the same cache entries
as ``AVCProtocol(m=63)``.

Example — plugging in a custom protocol::

    from repro.protocols import registry

    registry.register("mine", lambda levels=3: MyProtocol(levels))
    simulate(RunSpec(protocol=("mine", {"levels": 5}), ...))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import InvalidParameterError
from .base import PopulationProtocol

__all__ = [
    "ProtocolEntry",
    "register",
    "unregister",
    "get",
    "available",
    "create",
]


@dataclass(frozen=True)
class ProtocolEntry:
    """One registry row: a factory plus a one-line description."""

    name: str
    factory: Callable
    description: str = ""


_REGISTRY: dict[str, ProtocolEntry] = {}


def register(name: str, factory: Callable, *, description: str = "",
             replace: bool = False) -> None:
    """Register ``factory`` as the protocol called ``name``.

    ``factory(**params)`` must return a
    :class:`~repro.protocols.base.PopulationProtocol`.  Re-registering
    an existing name requires ``replace=True`` (guards against
    accidental shadowing of the built-ins).
    """
    if not name or not isinstance(name, str):
        raise InvalidParameterError(
            f"protocol name must be a non-empty string, got {name!r}")
    if not replace and name in _REGISTRY:
        raise InvalidParameterError(
            f"protocol {name!r} is already registered; pass "
            "replace=True to override it")
    _REGISTRY[name] = ProtocolEntry(name=name, factory=factory,
                                    description=description)


def unregister(name: str) -> None:
    """Remove ``name`` from the registry (primarily for tests)."""
    if name not in _REGISTRY:
        raise InvalidParameterError(f"protocol {name!r} is not registered")
    del _REGISTRY[name]


def get(name: str) -> ProtocolEntry:
    """The registry entry for ``name``; raises with the valid names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown protocol {name!r}; choose from {available()}"
        ) from None


def available() -> tuple[str, ...]:
    """All registered protocol names, sorted."""
    return tuple(sorted(_REGISTRY))


def create(name: str, params: dict | None = None) -> PopulationProtocol:
    """Instantiate the protocol ``name`` with keyword ``params``.

    Bad parameter *names* (a typo'd key, a missing required argument)
    surface as :class:`InvalidParameterError` naming the protocol, so
    service payloads fail with a 422 instead of a 500.
    """
    entry = get(name)
    params = dict(params or {})
    for key in params:
        if not isinstance(key, str):
            raise InvalidParameterError(
                f"protocol {name!r}: parameter names must be strings, "
                f"got {key!r}")
    try:
        protocol = entry.factory(**params)
    except TypeError as error:
        raise InvalidParameterError(
            f"protocol {name!r} rejected params {sorted(params)}: "
            f"{error}") from None
    if not isinstance(protocol, PopulationProtocol):
        raise InvalidParameterError(
            f"protocol factory {name!r} returned "
            f"{type(protocol).__name__}, not a PopulationProtocol")
    return protocol


# ----------------------------------------------------------------------
# Built-in protocols
# ----------------------------------------------------------------------

def _make_avc(**params):
    # Imported lazily: repro.core pulls in the vectorized AVC kernels,
    # which callers resolving only baseline protocols should not pay
    # for (and the late import keeps the package import graph acyclic).
    from ..core.avc import AVCProtocol

    return AVCProtocol(**params)


def _make_ben_or(**params):
    from ..consensus.algorithms import BenOrConsensus

    return BenOrConsensus(**params)


def _make_epsilon_agreement(**params):
    from ..consensus.algorithms import EpsilonAgreementConsensus

    return EpsilonAgreementConsensus(**params)


def _register_builtins() -> None:
    from .four_state import FourStateProtocol
    from .interval_consensus import IntervalConsensusProtocol
    from .leader_election import (
        LeveledLeaderElection,
        PairwiseLeaderElection,
    )
    from .successors import (
        LogStateMajorityProtocol,
        PhaseDoublingProtocol,
    )
    from .three_state import ThreeStateProtocol
    from .voter import VoterProtocol

    register("avc", _make_avc,
             description="Average-and-Conquer exact majority "
                         "(the paper's protocol; params m, d)")
    register("three-state", ThreeStateProtocol,
             description="3-state approximate majority [AAE08, PVV09]")
    register("four-state", FourStateProtocol,
             description="4-state exact majority [DV12, MNRS14]")
    register("interval-consensus", IntervalConsensusProtocol,
             description="general-graph exact 4-state majority [DV12]")
    register("voter", VoterProtocol,
             description="2-state voter model baseline")
    register("leader-election", PairwiseLeaderElection,
             description="folklore pairwise leader election")
    register("leveled-leader-election", LeveledLeaderElection,
             description="leveled leader election (param levels)")
    register("phase-doubling", PhaseDoublingProtocol,
             description="phase-clocked cancellation/doubling exact "
                         "majority [arXiv:1805.05157] "
                         "(params levels, theta)")
    register("log-state", LogStateMajorityProtocol,
             description="role-partitioned O(log n)-state exact "
                         "majority [arXiv:2011.12633] "
                         "(params levels, phase_len)")
    register("ben-or", _make_ben_or,
             description="round-based randomized binary byzantine "
                         "consensus [Ben-Or, PODC 1983]")
    register("epsilon-agreement", _make_epsilon_agreement,
             description="round-based deterministic approximate "
                         "agreement by trimmed averaging [JACM 1986] "
                         "(param epsilon_agree)")


_register_builtins()
