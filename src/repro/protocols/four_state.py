"""The four-state *exact* majority protocol [DV12, MNRS14].

Each agent carries a sign (its tentative opinion) and a binary weight:
*strong* states ``+1`` / ``-1`` and *weak* states ``+0`` / ``-0``.
Agents start strong.  The dynamics:

====================  =====================
interaction (x, y)    result (x', y')
====================  =====================
(+1, -1) / (-1, +1)   both downgraded to weak, keeping their signs
(s0, +1)              (+0, +1)  -- a weak agent adopts a strong sign
(s0, -1)              (-0, -1)
anything else         unchanged
====================  =====================

where ``s0`` is any weak state.  The total signed sum of values is
invariant, so the protocol never converges to the initial minority;
convergence takes ``O(log n / eps)`` expected parallel time on the
clique [DV12] — *linear* in ``n`` when the margin is one agent
(``eps = 1/n``), which is exactly the regime Figure 3 exercises.

This protocol coincides with the AVC protocol at ``m = 1, d = 1`` (see
``tests/core/test_avc_four_state_equiv.py`` for the machine-checked
equivalence).
"""

from __future__ import annotations

from collections.abc import Mapping

from .base import MAJORITY_A, MAJORITY_B, MajorityProtocol, State

__all__ = [
    "FourStateProtocol",
    "STRONG_PLUS",
    "STRONG_MINUS",
    "WEAK_PLUS",
    "WEAK_MINUS",
]

STRONG_PLUS = "+1"
STRONG_MINUS = "-1"
WEAK_PLUS = "+0"
WEAK_MINUS = "-0"

_STATES = (STRONG_PLUS, STRONG_MINUS, WEAK_PLUS, WEAK_MINUS)
_SIGN = {STRONG_PLUS: 1, WEAK_PLUS: 1, STRONG_MINUS: -1, WEAK_MINUS: -1}
_STRONG = {STRONG_PLUS, STRONG_MINUS}
_WEAK = {WEAK_PLUS, WEAK_MINUS}


class FourStateProtocol(MajorityProtocol):
    """Exact majority with four states [DV12, MNRS14]."""

    name = "four-state"
    unanimity_settles = True

    def enumerate_states(self):
        return _STATES

    def initial_state(self, symbol: str) -> State:
        if symbol == self.INPUT_A:
            return STRONG_PLUS
        if symbol == self.INPUT_B:
            return STRONG_MINUS
        raise ValueError(f"unknown input symbol {symbol!r}")

    def transition(self, x: State, y: State) -> tuple[State, State]:
        if {x, y} == _STRONG:
            # Opposite strong states annihilate into weak states.
            return (WEAK_PLUS if x == STRONG_PLUS else WEAK_MINUS,
                    WEAK_PLUS if y == STRONG_PLUS else WEAK_MINUS)
        if x in _WEAK and y in _STRONG:
            return (WEAK_PLUS if y == STRONG_PLUS else WEAK_MINUS), y
        if y in _WEAK and x in _STRONG:
            return x, (WEAK_PLUS if x == STRONG_PLUS else WEAK_MINUS)
        return x, y

    def output(self, state: State):
        return MAJORITY_A if _SIGN[state] > 0 else MAJORITY_B

    def sign(self, state: State) -> int:
        """The sign (+1 / -1) carried by ``state``."""
        return _SIGN[state]

    def value(self, state: State) -> int:
        """The signed value (weight times sign) encoded by ``state``."""
        weight = 1 if state in _STRONG else 0
        return _SIGN[state] * weight

    def is_settled(self, counts: Mapping[State, int]) -> bool:
        """Settled iff all agents carry the same sign.

        An all-positive configuration only contains ``+1`` and ``+0``;
        the only non-trivial interactions require a strong and a weak
        state of *opposite* signs or two opposite strong states, so the
        configuration is absorbing (symmetrically for all-negative).
        Conversely, while both signs are present the outputs disagree.
        The predicate is therefore exact.
        """
        positive = counts.get(STRONG_PLUS, 0) + counts.get(WEAK_PLUS, 0)
        negative = counts.get(STRONG_MINUS, 0) + counts.get(WEAK_MINUS, 0)
        return (positive == 0) != (negative == 0)
