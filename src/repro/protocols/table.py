"""Table-driven population protocols.

:class:`TableProtocol` turns an explicit transition table into a
full :class:`~repro.protocols.base.PopulationProtocol`, which makes it
easy to

* define small custom protocols without writing a class,
* wrap the candidate protocols enumerated by the four-state census
  (:mod:`repro.lowerbounds.four_state_search`) so they can be run on
  any simulation engine, and
* express protocols from the literature verbatim from their published
  rule lists.

Unspecified pairs default to the identity interaction.  Transitions may
be given for *unordered* pairs (``symmetric=True``, the common case in
the population-protocols literature): the table entry for ``{x, y}``
is applied with the initiator receiving the first output state.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..errors import InvalidParameterError, InvalidStateError
from .base import MAJORITY_A, MAJORITY_B, MajorityProtocol, State, UNDECIDED

__all__ = ["TableProtocol", "MajorityTableProtocol"]


def _normalize_table(states, table, symmetric):
    """Expand a (possibly unordered) transition table to ordered form."""
    state_set = set(states)
    ordered: dict[tuple[State, State], tuple[State, State]] = {}
    for (x, y), (new_x, new_y) in table.items():
        for state in (x, y, new_x, new_y):
            if state not in state_set:
                raise InvalidStateError(
                    f"transition table mentions unknown state {state!r}")
        ordered[(x, y)] = (new_x, new_y)
        if symmetric and (y, x) not in table:
            ordered[(y, x)] = (new_y, new_x)
    return ordered


class TableProtocol(MajorityProtocol):
    """A population protocol defined by an explicit transition table.

    Parameters
    ----------
    states:
        The ordered state space.
    transitions:
        Mapping from ordered (or unordered, with ``symmetric=True``)
        state pairs to updated state pairs.  Missing pairs are no-ops.
    outputs:
        Mapping from state to output (0, 1, or ``None`` for undecided).
        Missing states are undecided.
    name:
        Optional protocol name for diagnostics.
    symmetric:
        Whether ``transitions`` keys denote unordered pairs.
    """

    def __init__(self, states, transitions, outputs, *,
                 name: str = "table", symmetric: bool = True):
        self._states = tuple(states)
        if len(set(self._states)) != len(self._states):
            raise InvalidParameterError("duplicate states in state space")
        self._table = _normalize_table(self._states, transitions, symmetric)
        self._outputs = dict(outputs)
        self.name = name

    def enumerate_states(self):
        return self._states

    def initial_state(self, symbol: str) -> State:
        raise InvalidParameterError(
            f"{self.name}: plain TableProtocol has no designated inputs; "
            "use MajorityTableProtocol for majority experiments")

    def transition(self, x: State, y: State) -> tuple[State, State]:
        return self._table.get((x, y), (x, y))

    def output(self, state: State):
        return self._outputs.get(state, UNDECIDED)

    # ------------------------------------------------------------------
    # Settledness via support closure
    # ------------------------------------------------------------------

    def support_closure(self, support: frozenset) -> frozenset:
        """All states that can ever appear given the present states.

        The closure of ``support`` under pairwise transitions is a
        superset of every state occurring in any reachable
        configuration (it ignores counts, so it may be strict).
        """
        closure = set(support)
        frontier = list(closure)
        while frontier:
            next_frontier = []
            snapshot = list(closure)
            for x in frontier:
                for y in snapshot:
                    for pair in ((x, y), (y, x)):
                        for new in self._table.get(pair, pair):
                            if new not in closure:
                                closure.add(new)
                                next_frontier.append(new)
            frontier = next_frontier
        return frozenset(closure)

    def is_settled(self, counts: Mapping[State, int]) -> bool:
        """Sound (possibly conservative) settledness test.

        Settled when every state in the *support closure* of the
        present states carries the same defined output: then no
        reachable configuration can ever show a different output.  The
        test ignores counts, so it can report ``False`` for
        configurations that are settled only for counting reasons; for
        exact answers on small systems use
        :mod:`repro.lowerbounds.reachability`.
        """
        support = frozenset(s for s, c in counts.items() if c)
        if not support:
            return False
        closure = self.support_closure(support)
        outputs = {self._outputs.get(state, UNDECIDED) for state in closure}
        if UNDECIDED in outputs:
            return False
        return len(outputs) == 1


class MajorityTableProtocol(TableProtocol):
    """A :class:`TableProtocol` with designated majority inputs.

    ``input_a`` / ``input_b`` are the starting states for inputs A / B;
    their outputs must be :data:`MAJORITY_A` / :data:`MAJORITY_B` (as
    required for correctness on a single-agent population).
    """

    def __init__(self, states, transitions, outputs, *,
                 input_a: State, input_b: State,
                 name: str = "table-majority", symmetric: bool = True):
        super().__init__(states, transitions, outputs,
                         name=name, symmetric=symmetric)
        if input_a not in self._states or input_b not in self._states:
            raise InvalidStateError("designated inputs must be states")
        if input_a == input_b:
            raise InvalidParameterError("inputs A and B must differ")
        if self.output(input_a) != MAJORITY_A:
            raise InvalidParameterError(
                f"gamma({input_a!r}) must be {MAJORITY_A} (output for A)")
        if self.output(input_b) != MAJORITY_B:
            raise InvalidParameterError(
                f"gamma({input_b!r}) must be {MAJORITY_B} (output for B)")
        self._input_a = input_a
        self._input_b = input_b

    def initial_state(self, symbol: str) -> State:
        if symbol == self.INPUT_A:
            return self._input_a
        if symbol == self.INPUT_B:
            return self._input_b
        raise ValueError(f"unknown input symbol {symbol!r}")
