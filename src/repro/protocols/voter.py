"""The two-state voter model [HP99, Lig85].

The simplest conceivable majority dynamics: when two agents interact,
the responder adopts the initiator's opinion.  On the clique this is
the classical voter model; it converges to consensus with probability 1
but the consensus value is a *coin flip weighted by the initial
fractions* — the error probability equals the initial minority
fraction ``(1 - eps) / 2`` and the expected parallel convergence time
is ``Theta(n)`` [HP99].  Included as the historical baseline that
motivates everything else in the paper.
"""

from __future__ import annotations

from collections.abc import Mapping

from .base import MAJORITY_A, MAJORITY_B, MajorityProtocol, State

__all__ = ["VoterProtocol"]

_STATES = ("A", "B")


class VoterProtocol(MajorityProtocol):
    """Two-state voter model: the responder copies the initiator."""

    name = "voter"
    unanimity_settles = True

    def enumerate_states(self):
        return _STATES

    def initial_state(self, symbol: str) -> State:
        if symbol in _STATES:
            return symbol
        raise ValueError(f"unknown input symbol {symbol!r}")

    def transition(self, x: State, y: State) -> tuple[State, State]:
        return x, x

    def output(self, state: State):
        return MAJORITY_A if state == "A" else MAJORITY_B

    def is_settled(self, counts: Mapping[State, int]) -> bool:
        """Settled iff unanimous; both consensus states are absorbing."""
        a = counts.get("A", 0)
        b = counts.get("B", 0)
        return (a == 0) != (b == 0)
