"""The three-state *approximate* majority protocol [AAE08, PVV09].

States are ``"A"``, ``"B"``, and the undecided blank state ``"_"``.
When an A meets a B, the initiator converts the responder to blank;
when a decided agent meets a blank, the blank adopts the decided
agent's opinion:

====================  =====================
interaction (x, y)    result (x', y')
====================  =====================
(A, B)                (A, _)
(B, A)                (B, _)
(A, _) / (_, A)       (A, A)
(B, _) / (_, B)       (B, B)
anything else         unchanged
====================  =====================

The protocol converges in ``O(log n)`` parallel time w.h.p. when the
initial margin is ``eps*n = omega(sqrt(n log n))`` but *may converge to
the wrong opinion*: the error probability is
``exp(-n * D((1+eps)/2 || 1/2))`` [PVV09], which is sizable for small
margins.  Figure 3 (right) of the paper measures exactly this error
fraction; :func:`repro.analysis.theory.three_state_error_probability`
implements the closed form.
"""

from __future__ import annotations

from collections.abc import Mapping

from .base import MAJORITY_A, MAJORITY_B, UNDECIDED, MajorityProtocol, State

__all__ = ["ThreeStateProtocol", "STATE_A", "STATE_B", "STATE_BLANK"]

STATE_A = "A"
STATE_B = "B"
STATE_BLANK = "_"

_STATES = (STATE_A, STATE_B, STATE_BLANK)


class ThreeStateProtocol(MajorityProtocol):
    """Approximate majority with three states [AAE08, PVV09]."""

    name = "three-state"
    unanimity_settles = True

    def enumerate_states(self):
        return _STATES

    def initial_state(self, symbol: str) -> State:
        if symbol == self.INPUT_A:
            return STATE_A
        if symbol == self.INPUT_B:
            return STATE_B
        raise ValueError(f"unknown input symbol {symbol!r}")

    def transition(self, x: State, y: State) -> tuple[State, State]:
        if x == STATE_A and y == STATE_B:
            return STATE_A, STATE_BLANK
        if x == STATE_B and y == STATE_A:
            return STATE_B, STATE_BLANK
        if y == STATE_BLANK and x in (STATE_A, STATE_B):
            return x, x
        if x == STATE_BLANK and y in (STATE_A, STATE_B):
            return y, y
        return x, y

    def output(self, state: State):
        if state == STATE_A:
            return MAJORITY_A
        if state == STATE_B:
            return MAJORITY_B
        return UNDECIDED

    def is_settled(self, counts: Mapping[State, int]) -> bool:
        """Settled iff every agent is A, or every agent is B.

        Both all-A and all-B configurations are absorbing (every
        interaction among equal decided states is a no-op), and any
        configuration containing two different states among {A, B, _}
        still has state-changing interactions available, so this
        predicate is exact.  Note that "settled" does not imply
        *correct*: the protocol may settle on the initial minority.
        """
        a = counts.get(STATE_A, 0)
        b = counts.get(STATE_B, 0)
        blank = counts.get(STATE_BLANK, 0)
        return blank == 0 and (a == 0 or b == 0) and (a + b) > 0
