"""Binary interval consensus: the general-graph exact 4-state protocol.

The paper describes the four-state protocol in its clique form (weak
agents flip their sign *in place* when meeting a strong agent).  That
form is exact on the complete graph but **not** on general graphs:
on a star, two opposite strong *leaves* can never interact, so the
configuration deadlocks with both signs present
(``tests/sim/test_agent_engine.py`` demonstrates this).

[DV12] analyze the general-graph protocol — *binary interval
consensus* — in which strong states travel: when a strong agent meets
a weak one, the strong token **moves** to the weak agent's node (and
the vacated node keeps a weak state of the strong sign):

====================  =====================
interaction (x, y)    result (x', y')
====================  =====================
(+1, -1) / (-1, +1)   (+0, -0) / (-0, +0)  — annihilation
(+1, w)  for weak w   (+0, +1)             — the token random-walks
(-1, w)  for weak w   (-0, -1)
(w, +1)               (+1, +0)
(w, -1)               (-1, -0)
anything else         unchanged
====================  =====================

On the clique the chain on *configurations* is exactly the paper's
four-state protocol (tokens are interchangeable), so all clique
results carry over; on a general connected graph the strong tokens
perform random walks, guaranteeing the eventual meetings the proof of
exactness needs.  [DV12] bound the convergence time by the spectral
gap of the interaction-rate matrices.
"""

from __future__ import annotations

from collections.abc import Mapping

from .base import MAJORITY_A, MAJORITY_B, MajorityProtocol, State
from .four_state import (
    STRONG_MINUS,
    STRONG_PLUS,
    WEAK_MINUS,
    WEAK_PLUS,
)

__all__ = ["IntervalConsensusProtocol"]

_STATES = (STRONG_PLUS, STRONG_MINUS, WEAK_PLUS, WEAK_MINUS)
_SIGN = {STRONG_PLUS: 1, WEAK_PLUS: 1, STRONG_MINUS: -1, WEAK_MINUS: -1}
_STRONG = {STRONG_PLUS, STRONG_MINUS}
_WEAK = {WEAK_PLUS, WEAK_MINUS}


class IntervalConsensusProtocol(MajorityProtocol):
    """Exact majority on arbitrary connected graphs [DV12]."""

    name = "interval-consensus"
    unanimity_settles = True

    def enumerate_states(self):
        return _STATES

    def initial_state(self, symbol: str) -> State:
        if symbol == self.INPUT_A:
            return STRONG_PLUS
        if symbol == self.INPUT_B:
            return STRONG_MINUS
        raise ValueError(f"unknown input symbol {symbol!r}")

    def transition(self, x: State, y: State) -> tuple[State, State]:
        if {x, y} == _STRONG:
            return (WEAK_PLUS if x == STRONG_PLUS else WEAK_MINUS,
                    WEAK_PLUS if y == STRONG_PLUS else WEAK_MINUS)
        if x in _STRONG and y in _WEAK:
            return (WEAK_PLUS if x == STRONG_PLUS else WEAK_MINUS), x
        if y in _STRONG and x in _WEAK:
            return y, (WEAK_PLUS if y == STRONG_PLUS else WEAK_MINUS)
        return x, y

    def output(self, state: State):
        return MAJORITY_A if _SIGN[state] > 0 else MAJORITY_B

    def sign(self, state: State) -> int:
        """The sign (+1 / -1) carried by ``state``."""
        return _SIGN[state]

    def is_settled(self, counts: Mapping[State, int]) -> bool:
        """Settled iff all agents carry the same sign.

        Same argument as for the clique four-state protocol: an
        all-positive configuration only permits annihilation-free,
        sign-preserving interactions (token moves between same-sign
        agents), so it is absorbing on every graph.
        """
        positive = counts.get(STRONG_PLUS, 0) + counts.get(WEAK_PLUS, 0)
        negative = counts.get(STRONG_MINUS, 0) + counts.get(WEAK_MINUS, 0)
        return (positive == 0) != (negative == 0)
