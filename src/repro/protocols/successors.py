"""Phase-clocked successors of AVC: the modern exact-majority zoo.

The paper's AVC protocol (PODC 2015) opened a line of work that drove
exact majority down to poly-logarithmic time with ``O(log n)`` states.
The successors are all *phase-clocked*: agents carry a product state
``clock x opinion x level`` in which a leaderless (or junta-driven)
phase clock alternates **cancellation** phases (opposite tokens of
equal weight annihilate) with **doubling** phases (surviving tokens
split into two half-weight copies, recruiting idle agents), so the
minority token mass halves every phase pair.  This module implements
two of them on :class:`~repro.protocols.base.StructuredProtocol`:

* :class:`PhaseDoublingProtocol` — the cancellation/doubling dynamics
  of Berenbrink, Elsaesser, Friedetzky, Kaaser, Kling
  (arXiv:1805.05157, ``O(log^{5/3} n)`` time), with a leaderless
  circular-max phase clock carried by every agent.
* :class:`LogStateMajorityProtocol` — the role-partitioned
  ``O(log n)``-state design of Ben-Nun, Kopelowitz, Kraus, Porat
  (arXiv:2011.12633, ``O(log^{3/2} n)`` time), in which *cancelled*
  agents become the clock population (a synthetic junta), so the state
  space is an additive union of roles instead of a full product —
  exercised here as the showcase for ``is_valid_state`` pruning.

Both are **exact**: every rule preserves the signed token mass

    ``W = sum over tokens of  opinion * 2^(levels - level)``

which starts at ``(count_a - count_b) * 2^levels != 0``, so a unanimous
*minority* configuration is unreachable (it would need ``sign(W)``
flipped) and tokens can never vanish entirely (that would need
``W = 0``).  Cancellation and merging are deliberately *ungated* by the
phase clock — the clock only gates splits — so correctness never
depends on clock synchrony; the clock is purely an accelerant, exactly
as in the source papers' "backup slow protocol" compositions.

Both stabilize by unanimity: once every agent carries one opinion, no
rule can reintroduce the other (cancellation needs opposite opinions,
every other rule copies or keeps opinions), so ``unanimity_settles``
holds and engines use their O(1) convergence tracking.

These are faithful *dynamics* reproductions at simulation scale, not
line-by-line transcriptions: the papers' w.h.p. analyses pick
``levels ~ log2 n`` and clock constants from union bounds, which the
classmethod :meth:`~PhaseDoublingProtocol.for_population` mirrors.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from ..errors import InvalidParameterError
from .base import (
    MAJORITY_A,
    MAJORITY_B,
    FieldSpec,
    MajorityProtocol,
    State,
    StructuredProtocol,
)

__all__ = [
    "PhaseDoublingProtocol",
    "LogStateMajorityProtocol",
    "FOLLOWER_LEVEL",
    "OPINION_A",
    "OPINION_B",
    "ROLE_TOKEN",
    "ROLE_FOLLOWER",
    "ROLE_CLOCK",
]

OPINION_A = 1
OPINION_B = -1

#: Sentinel level marking an agent that carries no token (a follower):
#: it remembers an opinion for output purposes but owns zero weight.
FOLLOWER_LEVEL = -1

ROLE_TOKEN = "T"
ROLE_FOLLOWER = "F"
ROLE_CLOCK = "C"


def _circular_clock(clock_x: int, clock_y: int, period: int) -> int:
    """Leaderless phase-clock update: circular max with tick-on-equal.

    Both agents move to the returned value.  On the circle
    ``0 .. period-1`` the agent at most ``period // 2`` ahead (in
    forward distance) wins; equal clocks tick forward by one.  Lagging
    agents therefore catch up epidemically in ``O(log n)`` parallel
    time while synchronized populations advance one tick per meeting —
    the classic leaderless clock of the phase-doubling papers.
    """
    diff = (clock_y - clock_x) % period
    if diff == 0:
        return (clock_x + 1) % period
    if diff <= period // 2:
        return clock_y
    return clock_x


class PhaseDoublingProtocol(MajorityProtocol, StructuredProtocol):
    """Exact majority by phase-clocked cancellation/doubling
    [Berenbrink et al., arXiv:1805.05157].

    States are ``(clock, opinion, level)`` tuples:

    * ``clock`` in ``0 .. 2*theta - 1`` — the leaderless phase clock;
      ``clock // theta`` is the current phase (0 = cancellation,
      1 = doubling), so each phase lasts ``theta`` ticks.
    * ``opinion`` in ``{+1, -1}`` — the agent's current output.
    * ``level`` in ``{-1, 0 .. levels}`` — token weight exponent: a
      level-``l`` token weighs ``2^(levels - l)``; ``level == -1``
      marks a weightless follower.

    Dynamics (clock updates first, on every interaction; the phase
    below is the *updated* common phase):

    * **cancel** (any phase): opposite-opinion tokens of equal level
      both become followers, keeping their opinions for output.
    * **merge** (any phase): same-opinion tokens of equal level
      ``l >= 1`` combine — the initiator rises to level ``l - 1``
      (doubling its weight), the responder becomes a follower.
    * **split** (doubling phase only): a token at level ``l < levels``
      meeting a follower splits into two level-``l + 1`` tokens of its
      opinion.
    * **recruit** (otherwise): a follower meeting a token adopts the
      token's opinion.

    All four rules preserve the signed mass
    :meth:`total_signed_weight`; see the module docstring for why that
    makes the protocol exact and unanimity absorbing.
    """

    unanimity_settles = True

    def __init__(self, levels: int = 6, theta: int = 4):
        if levels < 1:
            raise InvalidParameterError(
                f"levels must be >= 1, got {levels}")
        if theta < 1:
            raise InvalidParameterError(
                f"theta must be >= 1, got {theta}")
        self.levels = levels
        self.theta = theta
        self.name = f"phase-doubling(L={levels},theta={theta})"
        super().__init__((
            FieldSpec("clock", tuple(range(2 * theta))),
            FieldSpec("opinion", (OPINION_A, OPINION_B)),
            FieldSpec("level", tuple(range(-1, levels + 1))),
        ))

    @classmethod
    def for_population(cls, n: int, theta: int = 4
                       ) -> "PhaseDoublingProtocol":
        """The paper's parameterization: ``levels ~ log2 n``."""
        if n < 2:
            raise InvalidParameterError(f"n must be >= 2, got {n}")
        return cls(levels=max(1, math.ceil(math.log2(n))), theta=theta)

    def initial_state(self, symbol: str) -> State:
        if symbol == self.INPUT_A:
            return (0, OPINION_A, 0)
        if symbol == self.INPUT_B:
            return (0, OPINION_B, 0)
        raise ValueError(f"unknown input symbol {symbol!r}")

    def transition(self, x: State, y: State) -> tuple[State, State]:
        clock_x, opinion_x, level_x = x
        clock_y, opinion_y, level_y = y
        clock = _circular_clock(clock_x, clock_y, 2 * self.theta)
        doubling = clock >= self.theta

        x_token = level_x >= 0
        y_token = level_y >= 0
        if x_token and y_token:
            if level_x == level_y and opinion_x != opinion_y:
                # Cancel: equal weights annihilate; both keep their
                # opinion as followers so the output stays defined.
                return ((clock, opinion_x, FOLLOWER_LEVEL),
                        (clock, opinion_y, FOLLOWER_LEVEL))
            if level_x == level_y >= 1 and opinion_x == opinion_y:
                # Merge: two half-weights combine into one token a
                # level up; the responder is freed as a follower.
                return ((clock, opinion_x, level_x - 1),
                        (clock, opinion_y, FOLLOWER_LEVEL))
            return (clock, opinion_x, level_x), (clock, opinion_y, level_y)
        if x_token != y_token:
            opinion = opinion_x if x_token else opinion_y
            level = level_x if x_token else level_y
            if doubling and level < self.levels:
                # Split: the token halves onto the follower.
                return ((clock, opinion, level + 1),
                        (clock, opinion, level + 1))
            # Recruit: the follower adopts the token's opinion.
            return ((clock, opinion_x, level_x) if x_token
                    else (clock, opinion, FOLLOWER_LEVEL),
                    (clock, opinion, FOLLOWER_LEVEL) if x_token
                    else (clock, opinion_y, level_y))
        # Two followers: clocks sync, opinions spread only from tokens.
        return (clock, opinion_x, level_x), (clock, opinion_y, level_y)

    def output(self, state: State):
        return MAJORITY_A if state[1] > 0 else MAJORITY_B

    def is_settled(self, counts: Mapping[State, int]) -> bool:
        """Settled iff every agent carries the same opinion.

        Unanimity is absorbing: cancellation needs opposite opinions,
        and every other rule copies or preserves opinions (the clock
        field keeps churning, but outputs depend on opinion alone).
        While both opinions are present the outputs disagree.
        """
        seen = 0
        for state, count in counts.items():
            if not count:
                continue
            if seen == 0:
                seen = state[1]
            elif state[1] != seen:
                return False
        return seen != 0

    def total_signed_weight(self, counts: Mapping[State, int]) -> int:
        """The conserved signed token mass ``sum o * 2^(levels - l)``.

        Followers contribute nothing; the value equals
        ``(count_a - count_b) * 2^levels`` in every reachable
        configuration (the exactness invariant).
        """
        total = 0
        for (unused_clock, opinion, level), count in counts.items():
            if level >= 0:
                total += count * opinion * (1 << (self.levels - level))
        return total


class LogStateMajorityProtocol(MajorityProtocol, StructuredProtocol):
    """Exact majority with an additive ``O(log n)`` state space
    [Ben-Nun et al., arXiv:2011.12633].

    The state space is a *role-partitioned union*, not a product —
    the defining trick of the ``O(log n)``-state constructions.  Raw
    field tuples are ``(role, opinion, level, clock)`` but
    :meth:`is_valid_state` prunes role-irrelevant combinations:

    * **tokens** ``("T", o, l, p)`` with ``p in {0, 1}`` — weight
      ``2^(levels - l)`` and a one-bit local view of the phase
      (``4 * (levels + 1)`` states);
    * **followers** ``("F", o, 0, 0)`` — weightless, opinion only
      (2 states);
    * **clocks** ``("C", o, 0, c)`` with ``c in 0 .. 2*phase_len - 1``
      — the synthetic junta driving phases (``4 * phase_len`` states).

    Total: ``4*(levels + 1) + 2 + 4*phase_len`` — *additive* in the
    field sizes where a naive product is multiplicative.

    Clock agents are *recruited from cancellations*: the population
    starts all-token with no clock at all, and every annihilated pair
    joins the clock junta.  Clocks run the same circular-max/tick rule
    among themselves; tokens learn the phase bit ``c // phase_len``
    on contact.  Splits fire when a token whose phase bit is 1 meets a
    follower or a clock agent (consuming it).  Cancel/merge stay
    ungated, so the same signed-mass invariant as
    :class:`PhaseDoublingProtocol` gives exactness.
    """

    unanimity_settles = True

    def __init__(self, levels: int = 6, phase_len: int = 4):
        if levels < 1:
            raise InvalidParameterError(
                f"levels must be >= 1, got {levels}")
        if phase_len < 1:
            raise InvalidParameterError(
                f"phase_len must be >= 1, got {phase_len}")
        self.levels = levels
        self.phase_len = phase_len
        self.name = f"log-state(L={levels},B={phase_len})"
        super().__init__((
            FieldSpec("role", (ROLE_TOKEN, ROLE_FOLLOWER, ROLE_CLOCK)),
            FieldSpec("opinion", (OPINION_A, OPINION_B)),
            FieldSpec("level", tuple(range(levels + 1))),
            FieldSpec("clock", tuple(range(2 * phase_len))),
        ))

    @classmethod
    def for_population(cls, n: int, phase_len: int = 4
                       ) -> "LogStateMajorityProtocol":
        """The paper's parameterization: ``levels ~ log2 n``."""
        if n < 2:
            raise InvalidParameterError(f"n must be >= 2, got {n}")
        return cls(levels=max(1, math.ceil(math.log2(n))),
                   phase_len=phase_len)

    def is_valid_state(self, state: tuple) -> bool:
        role, unused_opinion, level, clock = state
        if role == ROLE_TOKEN:
            return clock <= 1
        if role == ROLE_FOLLOWER:
            return level == 0 and clock == 0
        return level == 0  # clock agents carry no token level

    def initial_state(self, symbol: str) -> State:
        if symbol == self.INPUT_A:
            return (ROLE_TOKEN, OPINION_A, 0, 0)
        if symbol == self.INPUT_B:
            return (ROLE_TOKEN, OPINION_B, 0, 0)
        raise ValueError(f"unknown input symbol {symbol!r}")

    def transition(self, x: State, y: State) -> tuple[State, State]:
        role_x = x[0]
        role_y = y[0]
        if role_x == ROLE_TOKEN and role_y == ROLE_TOKEN:
            return self._token_token(x, y)
        if role_x == ROLE_TOKEN:
            new_y, new_x = self._token_other(x, y)
            return new_x, new_y
        if role_y == ROLE_TOKEN:
            return self._token_other(y, x)
        if role_x == ROLE_CLOCK and role_y == ROLE_CLOCK:
            clock = _circular_clock(x[3], y[3], 2 * self.phase_len)
            return (ROLE_CLOCK, x[1], 0, clock), (ROLE_CLOCK, y[1], 0, clock)
        # Clock/follower pairs exchange nothing: opinions spread only
        # from tokens, which always exist (the invariant is nonzero).
        return x, y

    def _token_token(self, x: State, y: State) -> tuple[State, State]:
        unused_role_x, opinion_x, level_x, phase_x = x
        unused_role_y, opinion_y, level_y, phase_y = y
        if level_x == level_y and opinion_x != opinion_y:
            # Cancel — and the freed pair *joins the clock junta*.
            return ((ROLE_CLOCK, opinion_x, 0, 0),
                    (ROLE_CLOCK, opinion_y, 0, 0))
        if level_x == level_y >= 1 and opinion_x == opinion_y:
            # Merge: initiator doubles its weight, responder follows.
            return ((ROLE_TOKEN, opinion_x, level_x - 1, phase_x),
                    (ROLE_FOLLOWER, opinion_y, 0, 0))
        return x, y

    def _token_other(self, token: State, other: State
                     ) -> tuple[State, State]:
        """Token meets follower or clock; returns ``(other', token')``."""
        unused_role, opinion, level, phase = token
        other_role = other[0]
        if other_role == ROLE_CLOCK:
            phase = other[3] // self.phase_len  # learn the clock phase
        if phase == 1 and level < self.levels:
            # Split: the partner is consumed into a half-weight copy.
            half = (ROLE_TOKEN, opinion, level + 1, 1)
            return half, half
        if other_role == ROLE_CLOCK:
            # The clock adopts the token's opinion for output; the
            # token records the learned phase bit.
            return ((ROLE_CLOCK, opinion, 0, other[3]),
                    (ROLE_TOKEN, opinion, level, phase))
        # Recruit: the follower adopts the token's opinion.
        return (ROLE_FOLLOWER, opinion, 0, 0), token

    def output(self, state: State):
        return MAJORITY_A if state[1] > 0 else MAJORITY_B

    def is_settled(self, counts: Mapping[State, int]) -> bool:
        """Settled iff every agent carries the same opinion.

        Same argument as :meth:`PhaseDoublingProtocol.is_settled`:
        cancellation is the only opinion-destroying rule and needs
        both opinions; everything else copies or preserves them.
        """
        seen = 0
        for state, count in counts.items():
            if not count:
                continue
            if seen == 0:
                seen = state[1]
            elif state[1] != seen:
                return False
        return seen != 0

    def total_signed_weight(self, counts: Mapping[State, int]) -> int:
        """The conserved signed token mass (exactness invariant)."""
        total = 0
        for (role, opinion, level, unused_clock), count in counts.items():
            if role == ROLE_TOKEN:
                total += count * opinion * (1 << (self.levels - level))
        return total
