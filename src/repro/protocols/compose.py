"""Parallel composition of population protocols.

A standard construction in the population-protocols literature
[AAD+06]: two protocols run "in parallel" on the same interaction
sequence by giving every agent a *pair* of states, updated
componentwise.  Composition is how richer computations are assembled
from primitives — e.g. electing a leader while simultaneously
computing a majority, which is how phased protocols bootstrap.

:class:`ProductProtocol` implements the construction generically.  Its
output (and settledness) is delegated to one designated component; the
other runs along silently.  Settledness of the product is the
settledness of *both* components when ``require_both`` is set — handy
when downstream logic needs both results.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..errors import InvalidParameterError
from .base import PopulationProtocol, State

__all__ = ["ProductProtocol"]


class ProductProtocol(PopulationProtocol):
    """Componentwise product of two protocols.

    Parameters
    ----------
    first / second:
        The component protocols.
    output_from:
        Which component provides ``output`` (0 or 1).
    require_both:
        If True, ``is_settled`` requires both components settled;
        otherwise only the output component must settle.
    """

    def __init__(self, first: PopulationProtocol,
                 second: PopulationProtocol, *, output_from: int = 0,
                 require_both: bool = False):
        if output_from not in (0, 1):
            raise InvalidParameterError(
                f"output_from must be 0 or 1, got {output_from}")
        self.first = first
        self.second = second
        self.output_from = output_from
        self.require_both = require_both
        self.name = f"product({first.name}, {second.name})"
        # The product settles by unanimity only if the output
        # component does AND the other side never blocks settledness.
        self.unanimity_settles = False
        self.settled_support_only = (
            getattr(first, "settled_support_only", True)
            and getattr(second, "settled_support_only", True))

    def enumerate_states(self):
        """Lazily yield component pairs in lexicographic order."""
        return ((a, b) for a in self.first.states
                for b in self.second.states)

    def is_state(self, state: State) -> bool:
        return (isinstance(state, tuple) and len(state) == 2
                and self.first.is_state(state[0])
                and self.second.is_state(state[1]))

    def transition(self, x: State, y: State) -> tuple[State, State]:
        (first_x, second_x), (first_y, second_y) = x, y
        new_first_x, new_first_y = self.first.transition(first_x, first_y)
        new_second_x, new_second_y = self.second.transition(second_x,
                                                            second_y)
        return (new_first_x, new_second_x), (new_first_y, new_second_y)

    def output(self, state: State):
        component = state[self.output_from]
        owner = self.first if self.output_from == 0 else self.second
        return owner.output(component)

    def _marginal(self, counts: Mapping[State, int], index: int) -> dict:
        marginal: dict = {}
        for (a, b), count in counts.items():
            key = a if index == 0 else b
            marginal[key] = marginal.get(key, 0) + count
        return marginal

    def is_settled(self, counts: Mapping[State, int]) -> bool:
        """Settled per the component predicates on the marginals.

        Sound because a product interaction applies the component
        transitions to the component marginals exactly as the
        components' own executions would: any output change reachable
        in a marginal is reachable in the product.
        """
        first_ok = self.first.is_settled(self._marginal(counts, 0))
        second_ok = self.second.is_settled(self._marginal(counts, 1))
        if self.require_both:
            return first_ok and second_ok
        return (first_ok, second_ok)[self.output_from]

    def pair_counts(self, first_counts: Mapping, second_counts: Mapping,
                    *, rng=None) -> dict:
        """Random pairing of two single-protocol configurations.

        Builds a product configuration whose marginals are the two
        inputs, pairing component states uniformly at random (both
        configurations must describe the same population size).
        """
        from ..rng import ensure_rng

        first_list = [s for s, c in first_counts.items()
                      for _ in range(c)]
        second_list = [s for s, c in second_counts.items()
                       for _ in range(c)]
        if len(first_list) != len(second_list):
            raise InvalidParameterError(
                f"population mismatch: {len(first_list)} vs "
                f"{len(second_list)}")
        generator = ensure_rng(rng)
        generator.shuffle(second_list)
        counts: dict = {}
        for pair in zip(first_list, second_list):
            counts[pair] = counts.get(pair, 0) + 1
        return counts
