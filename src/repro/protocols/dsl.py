"""A tiny textual DSL for population protocols.

Protocols in the literature are published as short rule lists; this
module lets you paste them nearly verbatim::

    from repro.protocols.dsl import parse_protocol

    THREE_STATE = '''
    # [AAE08, PVV09] approximate majority
    states:  A B _
    inputs:  A B
    outputs: A=1 B=0

    A + B -> A + _
    B + A -> B + _
    A + _ -> A + A
    B + _ -> B + B
    '''
    protocol = parse_protocol(THREE_STATE, name="three-state-dsl")

Format:

* ``states:`` — whitespace-separated state names (required, first);
* ``inputs:`` — the starting states for inputs A and B (optional;
  with it you get a :class:`~repro.protocols.table.MajorityTableProtocol`,
  without it a plain :class:`~repro.protocols.table.TableProtocol`);
* ``outputs:`` — ``state=0`` / ``state=1`` assignments (states not
  listed are undecided);
* rule lines ``X + Y -> X' + Y''`` — **ordered** (initiator first).
  Pairs without a rule are no-ops; writing both orientations (as
  above) expresses a symmetric rule explicitly, or use ``X + Y <->
  X' + Y''`` as shorthand for the rule plus its mirrored orientation
  ``Y + X -> Y'' + X'``;
* ``#`` starts a comment; blank lines are ignored.
"""

from __future__ import annotations

import re

from ..errors import ProtocolError
from .table import MajorityTableProtocol, TableProtocol

__all__ = ["parse_protocol"]

_RULE = re.compile(
    r"^(?P<x>\S+)\s*\+\s*(?P<y>\S+)\s*(?P<arrow><->|->)\s*"
    r"(?P<new_x>\S+)\s*\+\s*(?P<new_y>\S+)$")
_OUTPUT = re.compile(r"^(?P<state>\S+)\s*=\s*(?P<value>[01])$")


def _strip(line: str) -> str:
    return line.split("#", 1)[0].strip()


def parse_protocol(text: str, *, name: str = "dsl"):
    """Parse a protocol description; see the module docstring.

    Returns a :class:`MajorityTableProtocol` when ``inputs:`` is
    given, else a :class:`TableProtocol`.  Raises
    :class:`~repro.errors.ProtocolError` with the offending line on
    any syntax or consistency problem.
    """
    states: tuple[str, ...] | None = None
    inputs: tuple[str, str] | None = None
    outputs: dict[str, int] = {}
    transitions: dict[tuple[str, str], tuple[str, str]] = {}

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip(raw_line)
        if not line:
            continue

        def fail(message: str):
            raise ProtocolError(
                f"{name}: line {line_number}: {message}: {raw_line!r}")

        if line.startswith("states:"):
            if states is not None:
                fail("duplicate states: declaration")
            states = tuple(line[len("states:"):].split())
            if not states:
                fail("states: needs at least one state")
            continue
        if states is None:
            fail("states: must come before everything else")
        if line.startswith("inputs:"):
            parts = line[len("inputs:"):].split()
            if len(parts) != 2:
                fail("inputs: needs exactly two states (for A and B)")
            inputs = (parts[0], parts[1])
            continue
        if line.startswith("outputs:"):
            for assignment in line[len("outputs:"):].split():
                match = _OUTPUT.match(assignment)
                if not match:
                    fail(f"bad output assignment {assignment!r}")
                outputs[match["state"]] = int(match["value"])
            continue
        match = _RULE.match(line)
        if not match:
            fail("expected 'X + Y -> X' + Y'' (or <->)")
        rule_states = (match["x"], match["y"],
                       match["new_x"], match["new_y"])
        for state in rule_states:
            if state not in states:
                fail(f"unknown state {state!r}")
        key = (match["x"], match["y"])
        value = (match["new_x"], match["new_y"])
        if key in transitions and transitions[key] != value:
            fail(f"conflicting rule for {key}")
        transitions[key] = value
        if match["arrow"] == "<->":
            mirror_key = (match["y"], match["x"])
            mirror_value = (match["new_y"], match["new_x"])
            if mirror_key in transitions \
                    and transitions[mirror_key] != mirror_value:
                fail(f"conflicting mirrored rule for {mirror_key}")
            transitions[mirror_key] = mirror_value

    if states is None:
        raise ProtocolError(f"{name}: missing states: declaration")
    if inputs is not None:
        return MajorityTableProtocol(
            states, transitions, outputs,
            input_a=inputs[0], input_b=inputs[1],
            name=name, symmetric=False)
    return TableProtocol(states, transitions, outputs, name=name,
                         symmetric=False)
