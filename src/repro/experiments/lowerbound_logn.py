"""thm-c1: the Omega(log n) information-propagation experiment.

Measures the parallel time for the ``K_t`` knowledge set of a 3-agent
seed to cover the whole population (Claim C.2).  Expected shape: the
simulated and closed-form times agree, and ``time / ln(n)`` stays
bounded away from zero — every exact-majority protocol must pay at
least this propagation time on the worst-case inputs of Theorem C.1.
"""

from __future__ import annotations

import argparse
import math

from ..lowerbounds.info_propagation import (
    expected_propagation_steps,
    simulate_propagation,
)
from ..rng import spawn_many
from .config import Scale, resolve_scale
from .io import default_output_dir, format_table, write_csv
from .runner import add_telemetry_arguments, telemetry_session

__all__ = ["propagation_rows", "main"]

DEFAULT_SEED = 20150718


def propagation_rows(scale: Scale, *,
                     seed: int = DEFAULT_SEED) -> list[dict]:
    """One row per population size."""
    rows = []
    for index, n in enumerate(scale.propagation_populations):
        trials = scale.propagation_trials
        samples = [
            simulate_propagation(n, rng=child).parallel_time
            for child in spawn_many(seed + index, trials)
        ]
        mean_time = sum(samples) / len(samples)
        exact = expected_propagation_steps(n) / n
        rows.append({
            "n": n,
            "trials": trials,
            "mean_parallel_time": mean_time,
            "exact_expected_parallel_time": exact,
            "log_n": math.log(n),
            "time_over_log_n": mean_time / math.log(n),
        })
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro info-propagation", description=__doc__.split("\n")[0])
    parser.add_argument("--scale", default=None)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--output-dir", default=None)
    add_telemetry_arguments(parser)
    args = parser.parse_args(argv)

    scale = resolve_scale(args.scale)
    with telemetry_session(args, session=f"info_propagation_"
                                         f"{scale.name}"):
        return _run_sweep(args, scale)


def _run_sweep(args, scale: Scale) -> int:
    rows = propagation_rows(scale, seed=args.seed)
    print(format_table(
        rows, title=f"Information propagation / Omega(log n) "
                    f"(scale={scale.name})"))
    output_dir = (default_output_dir() if args.output_dir is None
                  else args.output_dir)
    path = write_csv(f"{output_dir}/info_propagation_{scale.name}.csv",
                     rows)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
