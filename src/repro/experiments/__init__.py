"""Experiment harness regenerating every figure of the paper.

One module per experiment (see the per-experiment index in DESIGN.md):

* :mod:`repro.experiments.figure3` — Figure 3, both panels;
* :mod:`repro.experiments.figure4` — Figure 4, both panels;
* :mod:`repro.experiments.ablation_d` — the d > 1 ablation (abl-d);
* :mod:`repro.experiments.lowerbound_logn` — Theorem C.1 (thm-c1);
* :mod:`repro.experiments.four_state_census` — Theorem B.1 (thm-b1);
* :mod:`repro.experiments.cli` — the ``python -m repro`` dispatcher.
"""

from .config import SCALES, Scale, resolve_scale
from .io import default_output_dir, format_table, write_csv
from .runner import measure_majority_point

__all__ = [
    "Scale",
    "SCALES",
    "resolve_scale",
    "measure_majority_point",
    "write_csv",
    "format_table",
    "default_output_dir",
]
