"""Shared sweep machinery for the experiment modules.

Every sweep point funnels through a :class:`~repro.sim.run.RunSpec`
and :func:`repro.sim.run.simulate`, so trial fan-out inherits its
engine routing: ``engine="ensemble"`` (or an eligible ``"auto"``
resolution) advances all trials of the point simultaneously on the
vectorized ensemble engine instead of looping the single-run engines
trial by trial.

The experiment ``main``s run their sweeps through a
:class:`~repro.runstore.Orchestrator` built by
:func:`sweep_orchestrator`: completed points are committed to the
content-addressed run store under ``<output-dir>/.runstore/`` and a
re-invocation with unchanged parameters never re-enters a simulation
engine; ``--resume`` additionally replays mid-point chunk checkpoints
left by an interrupted sweep.

Telemetry: every sweep ``main`` also accepts ``--telemetry`` (print
an end-of-run metrics summary) and ``--trace-file PATH`` (write the
raw JSONL trace).  :func:`telemetry_session` activates the ambient
:class:`~repro.telemetry.Telemetry` for the sweep body, so engines,
the trial fan-out, and the orchestrator's cache/journal machinery all
report without any explicit threading.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from ..protocols.base import MajorityProtocol
from ..runstore import Orchestrator, RunStore
from ..sim.results import TrialStats
from ..sim.run import RunSpec, simulate
from ..telemetry import JsonlTraceSink, SummarySink, Telemetry
from ..telemetry.context import activate, deactivate
from .io import default_output_dir

__all__ = ["measure_majority_point", "add_sweep_arguments",
           "add_telemetry_arguments", "telemetry_session",
           "sweep_orchestrator", "finish_sweep"]


def measure_majority_point(protocol: MajorityProtocol, *, n: int,
                           epsilon: float, trials: int, seed: int,
                           engine: str = "auto",
                           max_parallel_time: float | None = None,
                           batch_fraction: float = 0.05) -> dict:
    """Run one sweep point and return a flat result row.

    The row carries everything a figure needs: the mean/std parallel
    convergence time over settled trials, the error fraction (settled
    runs that decided for the initial minority), and bookkeeping
    columns (protocol, engine, trial count, wall time).
    """
    started = time.perf_counter()
    spec = RunSpec(protocol, n=n, epsilon=epsilon, num_trials=trials,
                   seed=seed, engine=engine,
                   max_parallel_time=max_parallel_time,
                   batch_fraction=batch_fraction)
    stats: TrialStats = simulate(spec, stats=True)
    elapsed = time.perf_counter() - started
    return {
        "protocol": protocol.name,
        "engine": engine,
        "n": n,
        "epsilon": epsilon,
        "trials": stats.num_trials,
        "settled_fraction": stats.settled_fraction,
        "mean_parallel_time": stats.mean_parallel_time,
        "std_parallel_time": stats.std_parallel_time,
        "min_parallel_time": stats.min_parallel_time,
        "max_parallel_time": stats.max_parallel_time,
        "error_fraction": stats.error_fraction,
        "wall_seconds": elapsed,
    }


def add_sweep_arguments(parser) -> None:
    """The run-store flags every sweep ``main`` shares."""
    parser.add_argument("--output-dir", default=None,
                        help="directory for CSVs and the run store "
                             "(default: results/ or $REPRO_OUTPUT_DIR)")
    parser.add_argument("--resume", action="store_true",
                        help="replay chunk checkpoints an interrupted "
                             "sweep left in the journal")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every point even when the run "
                             "store already holds it")


def add_telemetry_arguments(parser) -> None:
    """The telemetry flags every sweep ``main`` shares."""
    parser.add_argument("--telemetry", action="store_true",
                        help="collect engine/runstore metrics and print "
                             "a summary when the sweep finishes")
    parser.add_argument("--trace-file", default=None, metavar="PATH",
                        help="write the raw telemetry records as a JSONL "
                             "trace to PATH (implies --telemetry; "
                             "validate with 'python -m repro.telemetry')")


@contextmanager
def telemetry_session(args, *, session: str = "sweep"):
    """Activate ambient telemetry for a sweep body per the CLI flags.

    Yields the active :class:`~repro.telemetry.Telemetry` (or ``None``
    when neither ``--telemetry`` nor ``--trace-file`` was given).  On
    exit the summary is printed, the trace file is flushed and closed,
    and the ambient activation is popped even on error — a crashed
    sweep still leaves a readable trace prefix.
    """
    trace_file = getattr(args, "trace_file", None)
    if not (getattr(args, "telemetry", False) or trace_file):
        yield None
        return
    summary = SummarySink()
    sinks = [summary]
    if trace_file:
        sinks.append(JsonlTraceSink(trace_file))
    telemetry = Telemetry(sinks)
    activate(telemetry)
    telemetry.event("session.start", session=session)
    try:
        yield telemetry
    finally:
        telemetry.event("session.end", session=session)
        deactivate(telemetry)
        telemetry.close()
        print()
        print(summary.render())
        if trace_file:
            print(f"wrote trace {trace_file}")


def sweep_orchestrator(sweep: str, args, *, progress=None):
    """Build ``(orchestrator, output_dir)`` for one sweep ``main``."""
    output_dir = (default_output_dir() if args.output_dir is None
                  else args.output_dir)
    store = RunStore.for_output_dir(output_dir)
    orchestrator = Orchestrator(
        store, sweep=sweep, resume=args.resume,
        use_cache=not args.no_cache, progress=progress)
    return orchestrator, output_dir


def finish_sweep(orchestrator: Orchestrator) -> str:
    """Retire the sweep journal; return a one-line cache summary."""
    counters = orchestrator.counters
    orchestrator.finish()
    return (f"runstore: {counters['cached']} cached, "
            f"{counters['computed']} computed "
            f"({counters['resumed_chunks']} chunk(s) resumed, "
            f"{counters['retries']} retries)")
