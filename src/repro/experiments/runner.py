"""Shared sweep machinery for the experiment modules.

Every sweep point funnels through a :class:`~repro.sim.run.RunSpec`
and :func:`repro.sim.run.simulate`, so trial fan-out inherits its
engine routing: ``engine="ensemble"`` (or an eligible ``"auto"``
resolution) advances all trials of the point simultaneously on the
vectorized ensemble engine instead of looping the single-run engines
trial by trial.

The experiment ``main``s run their sweeps through a
:class:`~repro.runstore.Orchestrator` built by
:func:`sweep_orchestrator`: completed points are committed to the
content-addressed run store under ``<output-dir>/.runstore/`` and a
re-invocation with unchanged parameters never re-enters a simulation
engine; ``--resume`` additionally replays mid-point chunk checkpoints
left by an interrupted sweep.

Telemetry: every sweep ``main`` also accepts ``--telemetry`` (print
an end-of-run metrics summary) and ``--trace-file PATH`` (write the
raw JSONL trace).  :func:`telemetry_session` activates the ambient
:class:`~repro.telemetry.Telemetry` for the sweep body, so engines,
the trial fan-out, and the orchestrator's cache/journal machinery all
report without any explicit threading.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from ..errors import ExperimentError
from ..protocols.base import MajorityProtocol
from ..runstore import (
    LeaseManager,
    Orchestrator,
    RunStore,
    WorkerStatus,
    lease_ttl_from_env,
    new_worker_id,
    read_worker_statuses,
)
from ..runstore.workers_cli import WorkerFleet
from ..sim.results import TrialStats
from ..sim.run import RunSpec, simulate
from ..telemetry import JsonlTraceSink, SummarySink, Telemetry
from ..telemetry.context import activate, deactivate
from .io import default_output_dir

__all__ = ["measure_majority_point", "add_sweep_arguments",
           "add_telemetry_arguments", "telemetry_session",
           "sweep_orchestrator", "finish_sweep"]


def measure_majority_point(protocol: MajorityProtocol, *, n: int,
                           epsilon: float, trials: int, seed: int,
                           engine: str = "auto",
                           max_parallel_time: float | None = None,
                           batch_fraction: float = 0.05) -> dict:
    """Run one sweep point and return a flat result row.

    The row carries everything a figure needs: the mean/std parallel
    convergence time over settled trials, the error fraction (settled
    runs that decided for the initial minority), and bookkeeping
    columns (protocol, engine, trial count, wall time).
    """
    started = time.perf_counter()
    spec = RunSpec(protocol, n=n, epsilon=epsilon, num_trials=trials,
                   seed=seed, engine=engine,
                   max_parallel_time=max_parallel_time,
                   batch_fraction=batch_fraction)
    stats: TrialStats = simulate(spec, stats=True)
    elapsed = time.perf_counter() - started
    return {
        "protocol": protocol.name,
        "engine": engine,
        "n": n,
        "epsilon": epsilon,
        "trials": stats.num_trials,
        "settled_fraction": stats.settled_fraction,
        "mean_parallel_time": stats.mean_parallel_time,
        "std_parallel_time": stats.std_parallel_time,
        "min_parallel_time": stats.min_parallel_time,
        "max_parallel_time": stats.max_parallel_time,
        "error_fraction": stats.error_fraction,
        "wall_seconds": elapsed,
    }


def add_sweep_arguments(parser, *, workers: bool = False) -> None:
    """The run-store flags every sweep ``main`` shares.

    ``workers=True`` additionally exposes the distributed-execution
    flags; only sweeps whose ``*_rows`` function drains the work queue
    (figure3/figure4/robustness/successors/byzantine) may enable it.
    """
    parser.add_argument("--output-dir", default=None,
                        help="directory for CSVs and the run store "
                             "(default: results/ or $REPRO_OUTPUT_DIR)")
    parser.add_argument("--resume", action="store_true",
                        help="replay chunk checkpoints an interrupted "
                             "sweep left in the journal")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every point even when the run "
                             "store already holds it")
    if workers:
        parser.add_argument(
            "--workers", type=int, default=1, metavar="N",
            help="drain the grid with N cooperating worker processes "
                 "(this one plus N-1 forked helpers) claiming points "
                 "via leases on the run store; outputs are "
                 "byte-identical to a single-process sweep")
        parser.add_argument(
            "--lease-ttl", type=float, default=None, metavar="SECONDS",
            help="stale-lease TTL for --workers > 1 (default: "
                 "$REPRO_LEASE_TTL or 600); a worker silent for this "
                 "long is presumed dead and its point is reclaimed")


def add_telemetry_arguments(parser) -> None:
    """The telemetry flags every sweep ``main`` shares."""
    parser.add_argument("--telemetry", action="store_true",
                        help="collect engine/runstore metrics and print "
                             "a summary when the sweep finishes")
    parser.add_argument("--trace-file", default=None, metavar="PATH",
                        help="write the raw telemetry records as a JSONL "
                             "trace to PATH (implies --telemetry; "
                             "validate with 'python -m repro.telemetry')")


@contextmanager
def telemetry_session(args, *, session: str = "sweep"):
    """Activate ambient telemetry for a sweep body per the CLI flags.

    Yields the active :class:`~repro.telemetry.Telemetry` (or ``None``
    when neither ``--telemetry`` nor ``--trace-file`` was given).  On
    exit the summary is printed, the trace file is flushed and closed,
    and the ambient activation is popped even on error — a crashed
    sweep still leaves a readable trace prefix.
    """
    trace_file = getattr(args, "trace_file", None)
    if not (getattr(args, "telemetry", False) or trace_file):
        yield None
        return
    summary = SummarySink()
    sinks = [summary]
    if trace_file:
        sinks.append(JsonlTraceSink(trace_file))
    telemetry = Telemetry(sinks)
    activate(telemetry)
    telemetry.event("session.start", session=session)
    try:
        yield telemetry
    finally:
        telemetry.event("session.end", session=session)
        deactivate(telemetry)
        telemetry.close()
        print()
        print(summary.render())
        if trace_file:
            print(f"wrote trace {trace_file}")


def sweep_orchestrator(sweep: str, args, *, progress=None):
    """Build ``(orchestrator, output_dir)`` for one sweep ``main``.

    With ``--workers N > 1`` the orchestrator comes back in
    distributed work-queue mode: point calls return placeholder rows,
    and the first :meth:`~repro.runstore.Orchestrator.drain` publishes
    the work manifest, forks ``N - 1`` helper worker processes, and
    computes the grid cooperatively with them under per-point leases.
    ``finish_sweep`` joins the helpers and audits for duplicate
    simulations.
    """
    output_dir = (default_output_dir() if args.output_dir is None
                  else args.output_dir)
    store = RunStore.for_output_dir(output_dir)
    workers = int(getattr(args, "workers", 1) or 1)
    if workers <= 1:
        orchestrator = Orchestrator(
            store, sweep=sweep, resume=args.resume,
            use_cache=not args.no_cache, progress=progress)
        return orchestrator, output_dir
    if args.no_cache:
        raise ExperimentError(
            "--no-cache is incompatible with --workers > 1: the "
            "content-addressed cache is how cooperating workers "
            "exchange results")
    worker_id = new_worker_id("lead")
    leases = LeaseManager(store.leases_dir, worker_id,
                          ttl=lease_ttl_from_env(
                              getattr(args, "lease_ttl", None)))
    status = WorkerStatus(store.workers_dir, worker_id, sweep=sweep)
    if not args.resume:
        # A fresh (non-resume) distributed sweep must not replay any
        # prior run's checkpoints — clear every worker's journal, not
        # just our own.
        store.clear_sweep_journals(sweep)
    fleet = WorkerFleet(sweep=sweep, output_dir=output_dir,
                        count=workers - 1,
                        lease_ttl=getattr(args, "lease_ttl", None))

    def on_drain(orch):
        entries = orch.manifest()
        orch.queued_points = len(entries)
        if not entries:
            return
        store.write_manifest(sweep, entries)
        if progress is not None:
            progress(f"{sweep}: {len(entries)} point(s) queued; "
                     f"forking {fleet.count} helper worker(s)")
        fleet.launch(store)

    orchestrator = Orchestrator(
        store, sweep=sweep, resume=True, progress=progress,
        leases=leases, worker=worker_id, defer=True, status=status,
        on_drain=on_drain)
    orchestrator.fleet = fleet
    orchestrator.fleet_epoch = status.started_at
    return orchestrator, output_dir


def finish_sweep(orchestrator: Orchestrator) -> str:
    """Retire the sweep journal; return a one-line cache summary.

    For a distributed sweep this also joins the helper fleet, clears
    the sweep's journals and manifest, and appends a fleet line with
    the duplicate-simulation audit: total points computed across every
    worker minus distinct points queued — pinned at 0 when the lease
    protocol did its job (and never affecting correctness otherwise,
    since duplicate commits are byte-identical).
    """
    counters = orchestrator.counters
    fleet = getattr(orchestrator, "fleet", None)
    extra = ""
    orchestrator.finish()
    if fleet is not None:
        failures = fleet.join()
        store, sweep = orchestrator.store, orchestrator.sweep
        store.clear_sweep_journals(sweep)
        store.clear_manifest(sweep)
        # Only this run's workers: status files of an earlier run of
        # the same sweep (not yet gc'd) predate the lead's epoch and
        # must not pollute the duplicate audit.
        epoch = getattr(orchestrator, "fleet_epoch", 0.0)
        statuses = [status for status in
                    read_worker_statuses(store.workers_dir)
                    if status.get("sweep") == sweep
                    and status.get("started_at", 0.0) >= epoch]
        fleet_computed = sum(
            status.get("counters", {}).get("computed", 0)
            for status in statuses)
        queued = getattr(orchestrator, "queued_points", None)
        duplicates = (max(0, fleet_computed - queued)
                      if queued is not None else 0)
        reclaims = sum(
            status.get("counters", {}).get("lease_reclaims", 0)
            for status in statuses)
        extra = (f"\nfleet: {len(statuses)} worker(s), "
                 f"{0 if queued is None else queued} point(s) queued, "
                 f"{fleet_computed} computed across the fleet, "
                 f"{duplicates} duplicate simulation(s), "
                 f"{reclaims} lease(s) reclaimed")
        if failures:
            extra += f", {failures} helper(s) failed"
    return (f"runstore: {counters['cached']} cached, "
            f"{counters['computed']} computed "
            f"({counters['resumed_chunks']} chunk(s) resumed, "
            f"{counters['retries']} retries)" + extra)
