"""Shared sweep machinery for the experiment modules.

Every sweep point funnels through :func:`repro.sim.run.run_trials`,
so trial fan-out inherits its engine routing: ``engine="ensemble"``
(or an eligible ``"auto"`` resolution) advances all trials of the
point simultaneously on the vectorized ensemble engine instead of
looping the single-run engines trial by trial.
"""

from __future__ import annotations

import time

from ..protocols.base import MajorityProtocol
from ..sim.results import TrialStats
from ..sim.run import run_trials

__all__ = ["measure_majority_point"]


def measure_majority_point(protocol: MajorityProtocol, *, n: int,
                           epsilon: float, trials: int, seed: int,
                           engine: str = "auto",
                           max_parallel_time: float | None = None,
                           batch_fraction: float = 0.05) -> dict:
    """Run one sweep point and return a flat result row.

    The row carries everything a figure needs: the mean/std parallel
    convergence time over settled trials, the error fraction (settled
    runs that decided for the initial minority), and bookkeeping
    columns (protocol, engine, trial count, wall time).
    """
    started = time.perf_counter()
    stats: TrialStats = run_trials(
        protocol, num_trials=trials, seed=seed, stats=True,
        n=n, epsilon=epsilon, engine=engine,
        max_parallel_time=max_parallel_time,
        batch_fraction=batch_fraction)
    elapsed = time.perf_counter() - started
    return {
        "protocol": protocol.name,
        "engine": engine,
        "n": n,
        "epsilon": epsilon,
        "trials": stats.num_trials,
        "settled_fraction": stats.settled_fraction,
        "mean_parallel_time": stats.mean_parallel_time,
        "std_parallel_time": stats.std_parallel_time,
        "min_parallel_time": stats.min_parallel_time,
        "max_parallel_time": stats.max_parallel_time,
        "error_fraction": stats.error_fraction,
        "wall_seconds": elapsed,
    }
