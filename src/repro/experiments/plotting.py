"""Terminal (ASCII) charts for the figure experiments.

The original figures are log-log plots; this module renders the same
series as monospace scatter charts so ``python -m repro figure3``
shows the *picture*, not just the table, without any plotting
dependency.  Output is deterministic, making the charts assertable in
tests.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from ..errors import ExperimentError

__all__ = ["ascii_chart"]

_MARKERS = "ox*+#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ExperimentError(
                f"log-scale axis cannot show non-positive value {value}")
        return math.log10(value)
    return value


def _format_tick(value: float, log: bool) -> str:
    if log:
        return f"1e{value:+.1f}" if value % 1 else f"1e{int(value):+d}"
    return f"{value:.3g}"


def ascii_chart(series: Mapping[str, Sequence[tuple[float, float]]], *,
                width: int = 64, height: int = 18,
                log_x: bool = True, log_y: bool = True,
                title: str | None = None,
                x_label: str = "x", y_label: str = "y") -> str:
    """Render named ``(x, y)`` series as a monospace scatter chart.

    Each series gets a marker from a fixed cycle (shown in the
    legend); later series overwrite earlier ones on collisions.
    """
    if not series or all(not points for points in series.values()):
        raise ExperimentError("nothing to plot")
    if width < 16 or height < 4:
        raise ExperimentError(
            f"chart needs width >= 16 and height >= 4, got "
            f"{width}x{height}")

    transformed: dict[str, list[tuple[float, float]]] = {}
    for name, points in series.items():
        transformed[name] = [
            (_transform(x, log_x), _transform(y, log_y))
            for x, y in points
        ]
    xs = [x for points in transformed.values() for x, _ in points]
    ys = [y for points in transformed.values() for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, points) in enumerate(transformed.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in points:
            column = round((x - x_low) / x_span * (width - 1))
            row = round((y - y_low) / y_span * (height - 1))
            grid[height - 1 - row][column] = marker

    lines = []
    if title:
        lines.append(title)
    top_tick = _format_tick(y_high, log_y)
    bottom_tick = _format_tick(y_low, log_y)
    gutter = max(len(top_tick), len(bottom_tick), len(y_label)) + 1
    lines.append(f"{y_label:>{gutter}}")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_tick
        elif row_index == height - 1:
            label = bottom_tick
        else:
            label = ""
        lines.append(f"{label:>{gutter}} |" + "".join(row))
    lines.append(" " * gutter + " +" + "-" * width)
    left_tick = _format_tick(x_low, log_x)
    right_tick = _format_tick(x_high, log_x)
    padding = width - len(left_tick) - len(right_tick)
    lines.append(" " * gutter + "  " + left_tick + " " * max(1, padding)
                 + right_tick)
    lines.append(" " * gutter + f"  ({x_label})   legend: "
                 + "  ".join(legend))
    return "\n".join(lines)
