"""Robustness: recovery from injected faults, protocol by protocol.

The paper's protocols are self-stabilizing in different degrees: AVC
and the four-state protocol decide *exactly* and re-converge after
transient corruption (Lemma A.1's argument — unanimous configurations
are absorbing and every reachable configuration leads back to one),
while the three-state protocol is approximate and can be pushed to the
wrong answer.  This experiment quantifies that story with the
:mod:`repro.faults` subsystem: for each per-interaction fault rate we
inject faults for a fixed window (the *horizon*, in parallel-time
units) and measure

* **recovery time** — parallel time from the end of the fault window
  to settlement, averaged over settled runs (rate ``0.0`` is the
  fault-free baseline, where this is ordinary convergence time),
* **residual error** — the fraction of runs that end on the wrong (or
  no) decision despite the protocol's dynamics.

Three fault kinds, selected with ``--fault-kind``:

* ``flip`` — uniform transient state corruption at the given
  per-interaction rate;
* ``churn`` — agent crashes and joins, each at half the given rate,
  so the expected population drift is zero while its variance grows;
* ``drop`` — message-level faults: dropped interactions at the given
  rate plus one-way (initiator-only) deliveries at half of it.

Every point runs through the sweep orchestrator: points are cached by
the fingerprint of (protocol, population, fault model, seed, ...), so
re-invocations complete from the run store and ``--resume`` replays
chunk checkpoints after a crash.
"""

from __future__ import annotations

import argparse

from ..core.avc import AVCProtocol
from ..faults import FaultSpec
from ..protocols.four_state import FourStateProtocol
from ..protocols.three_state import ThreeStateProtocol
from ..runstore import Orchestrator
from .config import Scale, resolve_scale
from .io import format_table, write_csv
from .plotting import ascii_chart
from .runner import (
    add_sweep_arguments,
    add_telemetry_arguments,
    finish_sweep,
    sweep_orchestrator,
    telemetry_session,
)

__all__ = ["FAULT_KINDS", "fault_spec_for", "robustness_rows", "main"]

#: Root seed; every (rate, protocol) point derives its own stream.
DEFAULT_SEED = 20150901

FAULT_KINDS = ("flip", "churn", "drop")


def fault_spec_for(kind: str, rate: float,
                   horizon: int) -> FaultSpec | None:
    """The :class:`FaultSpec` for one sweep cell; ``None`` at rate 0.

    Rate ``0.0`` deliberately returns ``None`` rather than a null
    spec: the fault-free baseline then shares its fingerprint with
    ordinary majority runs, so a warm run store serves it without
    re-simulation.
    """
    if rate == 0.0:
        return None
    if kind == "flip":
        return FaultSpec(flip_prob=rate, horizon=horizon)
    if kind == "churn":
        return FaultSpec(crash_prob=rate / 2, join_prob=rate / 2,
                         horizon=horizon)
    if kind == "drop":
        return FaultSpec(drop_prob=rate, oneway_prob=rate / 2,
                         horizon=horizon)
    raise ValueError(
        f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}")


def _protocols():
    return (AVCProtocol(m=15, d=1), FourStateProtocol(),
            ThreeStateProtocol())


def _advantage(n: int) -> int:
    """A 10% initial advantage, rounded to keep ``count_a`` integral."""
    adv = max(1, int(0.1 * n))
    if (n + adv) % 2:
        adv += 1
    return adv


def robustness_rows(scale: Scale, *, fault_kind: str = "flip",
                    seed: int = DEFAULT_SEED, progress=None,
                    orchestrator: Orchestrator | None = None
                    ) -> list[dict]:
    """Compute the robustness sweep; one row per (rate, protocol).

    With an ``orchestrator``, every point is served from the run store
    when cached and checkpointed to the sweep journal while computing;
    without one the rows are computed identically, just not persisted.
    """
    if fault_kind not in FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {fault_kind!r}; choose from "
            f"{FAULT_KINDS}")
    orch = Orchestrator() if orchestrator is None else orchestrator
    n = scale.robustness_population
    epsilon = _advantage(n) / n
    horizon = int(scale.robustness_horizon * n)
    rows = []
    for rate_index, rate in enumerate(scale.robustness_rates):
        faults = fault_spec_for(fault_kind, rate, horizon)
        describe = ("fault-free" if faults is None
                    else f"{fault_kind}@{rate:g}")
        for proto_index, protocol in enumerate(_protocols()):
            if progress is not None:
                progress(f"robustness: {describe} "
                         f"protocol={protocol.name}")
            row = orch.robustness_point(
                protocol, n=n, epsilon=epsilon,
                trials=scale.robustness_trials,
                seed=seed + 1000 * rate_index + proto_index,
                faults=faults, max_steps=scale.robustness_budget,
                describe=describe)
            # In place, not dict(row, ...): in work-queue mode `row`
            # is a placeholder filled by drain(), and the store hands
            # out fresh copies, so augmenting it is safe either way.
            row["fault_kind"] = fault_kind
            row["fault_rate"] = rate
            rows.append(row)
    orch.drain()
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro robustness", description=__doc__.split("\n")[0])
    parser.add_argument("--scale", default=None,
                        help="smoke | default | paper")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--fault-kind", default="flip",
                        choices=FAULT_KINDS,
                        help="which fault class to sweep")
    add_sweep_arguments(parser, workers=True)
    add_telemetry_arguments(parser)
    args = parser.parse_args(argv)

    scale = resolve_scale(args.scale)
    progress = lambda msg: print(f"  [{msg}]", flush=True)  # noqa: E731
    sweep = f"robustness_{args.fault_kind}_{scale.name}"
    with telemetry_session(args, session=sweep):
        orchestrator, output_dir = sweep_orchestrator(
            sweep, args, progress=progress)
        rows = robustness_rows(scale, fault_kind=args.fault_kind,
                               seed=args.seed, progress=progress,
                               orchestrator=orchestrator)
        columns = ("fault_rate", "protocol", "mean_recovery_time",
                   "residual_error", "settled_fraction",
                   "mean_fault_events", "std_recovery_time",
                   "mean_parallel_time", "trials", "n", "fault_kind",
                   "fault_model", "engine")
        print(format_table(rows, columns=columns,
                           title=f"Robustness ({args.fault_kind}, "
                                 f"scale={scale.name}, "
                                 f"n={scale.robustness_population})"))
        series: dict[str, list[tuple[float, float]]] = {}
        for row in rows:
            if row["mean_recovery_time"] is None:
                continue
            kind = row["protocol"].split("(")[0]
            series.setdefault(kind, []).append(
                (row["fault_rate"], row["mean_recovery_time"]))
        print()
        # Linear x: the sweep includes the fault-free rate 0.0.
        print(ascii_chart(series, log_x=False,
                          title=f"Recovery time vs {args.fault_kind} "
                                "rate",
                          x_label="rate", y_label="time"))
        path = write_csv(f"{output_dir}/{sweep}.csv", rows,
                         columns=columns)
        print(f"\nwrote {path}")
        print(finish_sweep(orchestrator))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
