"""thm-b1: the four-state census experiment.

Runs :func:`repro.lowerbounds.four_state_search.run_census` at the
scale's size/limit settings and prints Theorem B.1's conclusions:

* how many candidates were machine-checked and how many are correct;
* that **every** surviving (correct) candidate carries the discrepancy
  invariant of Claim B.8 — the structural property forcing
  ``Omega(1/eps)`` convergence;
* that no survivor carries a Claim B.9 conserved potential;
* an empirical scaling table for the canonical surviving protocol,
  showing convergence time growing like ``1/eps``.

At ``--scale paper`` the census enumerates all ``4 x 10^6``
candidates (same-state interactions fixed to no-ops; see the module
docstring of :mod:`repro.lowerbounds.four_state_search` for why this
restriction loses no correct protocol) against populations 3, 5 and 7
— a few minutes of compute.
"""

from __future__ import annotations

import argparse
import time

from ..lowerbounds.four_state_search import (
    paper_four_state_candidate,
    run_census,
)
from ..sim.run import RunSpec, simulate
from .config import Scale, resolve_scale
from .io import default_output_dir, format_table, write_csv
from .runner import add_telemetry_arguments, telemetry_session

__all__ = ["census_summary", "scaling_rows", "main"]

DEFAULT_SEED = 20150719


def census_summary(scale: Scale, *, progress=None) -> dict:
    """Run the census and return the headline numbers."""
    started = time.perf_counter()
    result = run_census(sizes=scale.census_sizes,
                        limit=scale.census_limit, progress=progress)
    from ..lowerbounds.four_state_search import check_candidate
    paper = paper_four_state_candidate()
    return {
        "sizes": "x".join(str(s) for s in result.sizes),
        "num_checked": result.num_checked,
        "num_survivors": result.num_survivors,
        "all_survivors_slow": result.all_survivors_slow,
        "no_conserved_potentials": result.no_survivor_has_conserved_potential,
        "paper_candidate_correct": check_candidate(paper,
                                                   scale.census_sizes),
        "wall_seconds": time.perf_counter() - started,
    }, result


def scaling_rows(scale: Scale, *, seed: int = DEFAULT_SEED) -> list[dict]:
    """Empirical Omega(1/eps) scaling of the canonical survivor."""
    protocol = paper_four_state_candidate().to_protocol()
    rows = []
    for index, n in enumerate(scale.census_scaling_populations):
        epsilon = 5 / n if n >= 10 else 1 / n
        stats = simulate(
            RunSpec(protocol, n=n, epsilon=epsilon,
                    num_trials=scale.census_scaling_trials,
                    seed=seed + index),
            stats=True)
        rows.append({
            "n": n,
            "epsilon": epsilon,
            "one_over_epsilon": 1 / epsilon,
            "mean_parallel_time": stats.mean_parallel_time,
            "error_fraction": stats.error_fraction,
            "trials": stats.num_trials,
        })
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro four-state-census", description=__doc__.split("\n")[0])
    parser.add_argument("--scale", default=None)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--output-dir", default=None)
    parser.add_argument("--show-survivors", action="store_true",
                        help="print every surviving rule set")
    add_telemetry_arguments(parser)
    args = parser.parse_args(argv)

    scale = resolve_scale(args.scale)
    with telemetry_session(args, session=f"four_state_census_"
                                         f"{scale.name}"):
        return _run_sweep(args, scale)


def _run_sweep(args, scale: Scale) -> int:
    def progress(count):
        print(f"  [census: {count} candidates checked]", flush=True)

    summary, result = census_summary(scale, progress=progress)
    print(format_table([summary],
                       title=f"Four-state census (scale={scale.name})"))
    if args.show_survivors:
        for candidate in result.survivors:
            print("  survivor:", candidate.describe())

    rows = scaling_rows(scale, seed=args.seed)
    print()
    print(format_table(
        rows, title="Empirical Omega(1/eps) scaling of the canonical "
                    "correct 4-state protocol"))
    output_dir = (default_output_dir() if args.output_dir is None
                  else args.output_dir)
    path = write_csv(f"{output_dir}/four_state_census_{scale.name}.csv",
                     rows)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
