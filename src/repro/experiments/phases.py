"""abl-phases: watching the proof of Theorem 4.1 on real runs.

Records an AVC execution and reports the phase structure the analysis
predicts:

* the extremal weights halve at roughly evenly spaced parallel times
  (Claim A.2's geometric decay — each halving costs ``O(log n)``);
* the conserved sum never moves (Invariant 4.3);
* once only unit weights remain, the positive surplus sweeps the
  remaining minority agents (Claims 4.5 / A.4).

Not a figure of the paper, but a direct empirical check of the three
lemmas the convergence bound is assembled from.
"""

from __future__ import annotations

import argparse

from ..analysis.trajectory import analyze_avc_trajectory
from ..core.avc import AVCProtocol
from ..runstore import Orchestrator
from ..serialize import protocol_to_dict
from ..sim.observers import RuleCensus, avc_rule_classifier
from ..sim.record import TrajectoryRecorder
from ..sim.run import RunSpec, run_majority
from .config import Scale, resolve_scale
from .io import format_table, write_csv
from .runner import (
    add_sweep_arguments,
    add_telemetry_arguments,
    finish_sweep,
    sweep_orchestrator,
    telemetry_session,
)

__all__ = ["phase_rows", "main"]

DEFAULT_SEED = 20150720


def _compute_phase_rows(protocol: AVCProtocol, n: int,
                        seed: int) -> list[dict]:
    """The recorded run + trajectory analysis behind :func:`phase_rows`."""
    recorder = TrajectoryRecorder(interval_steps=max(1, n // 10))
    census = RuleCensus(avc_rule_classifier(protocol))
    result = run_majority(RunSpec(protocol, n=n, epsilon=1.0 / n,
                                  seed=seed, engine="count",
                                  recorder=recorder,
                                  event_observer=census))
    steps, matrix = recorder.as_matrix()
    trajectory = analyze_avc_trajectory(protocol, steps, matrix)
    assert trajectory.sum_invariant_holds

    rows = []
    halvings = trajectory.halving_times(sign=-1)
    previous_time = 0.0
    for threshold, time in halvings:
        rows.append({
            "n": n,
            "m": protocol.m,
            "minority_max_weight_below": threshold,
            "parallel_time": time,
            "time_since_previous": time - previous_time,
            "total_convergence_time": result.parallel_time,
        })
        previous_time = time
    mix = census.fractions()
    for row in rows:
        for label in ("averaging", "neutralization", "follow", "shift"):
            row[f"frac_{label}"] = mix.get(label, 0.0)
    return rows


def phase_rows(scale: Scale, *, seed: int = DEFAULT_SEED,
               orchestrator: Orchestrator | None = None) -> list[dict]:
    """One row per weight-halving threshold of the minority side.

    The whole instrumented run is one cacheable point: per-interaction
    recording cannot be chunk-checkpointed, but an unchanged
    (protocol, n, seed) re-invocation is served from the run store.
    """
    orch = Orchestrator() if orchestrator is None else orchestrator
    n = scale.ablation_d_population
    protocol = AVCProtocol(m=scale.ablation_d_m, d=1)
    params = {"protocol": protocol_to_dict(protocol), "n": n,
              "seed": seed}
    return orch.point(
        "phases", params,
        lambda: _compute_phase_rows(protocol, n, seed),
        label=f"phases n={n}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro phases", description=__doc__.split("\n")[0])
    parser.add_argument("--scale", default=None)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    add_sweep_arguments(parser)
    add_telemetry_arguments(parser)
    args = parser.parse_args(argv)

    scale = resolve_scale(args.scale)
    with telemetry_session(args, session=f"phases_{scale.name}"):
        return _run_sweep(args, scale)


def _run_sweep(args, scale: Scale) -> int:
    orchestrator, output_dir = sweep_orchestrator(
        f"phases_{scale.name}", args,
        progress=lambda msg: print(f"  [{msg}]", flush=True))
    rows = phase_rows(scale, seed=args.seed, orchestrator=orchestrator)
    print(format_table(
        rows, title=f"AVC phase structure / Claim A.2 "
                    f"(scale={scale.name})"))
    print("\nEvenly spaced 'time_since_previous' entries are Claim "
          "A.2's geometric weight decay; the run's total time is "
          "dominated by the final unit-weight sweep (Claim A.4).")
    mix = {key[5:]: value for key, value in rows[0].items()
           if key.startswith("frac_")}
    print("rule mix over the whole run:",
          ", ".join(f"{label}={value:.2f}" for label, value in mix.items()))
    path = write_csv(f"{output_dir}/phases_{scale.name}.csv", rows)
    print(f"\nwrote {path}")
    print(finish_sweep(orchestrator))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
