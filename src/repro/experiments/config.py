"""Experiment scales: smoke / default / paper.

The paper's sweeps (Appendix D) run 101 trials per point with ``n`` up
to ``100001``.  That is hours of compute; day-to-day benchmarking wants
the same *shape* in seconds-to-minutes.  Each experiment therefore
reads its parameters from a named :class:`Scale`:

* ``smoke`` — seconds; CI-sized sanity sweep.
* ``default`` — a few minutes; resolves every qualitative claim
  (orderings, slopes, crossovers).
* ``paper`` — the full grids from Appendix D (Figure 3's
  ``n = 100001`` row and Figure 4's 16340-state curve take hours).

Select with ``--scale`` on the CLI or the ``REPRO_SCALE`` environment
variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..errors import ExperimentError

__all__ = ["Scale", "SCALES", "resolve_scale"]


@dataclass(frozen=True)
class Scale:
    """All tunable sizes for the experiment suite."""

    name: str

    #: Figure 3: population sizes (margin is always one agent).
    figure3_populations: tuple[int, ...] = (11, 101, 1001)
    figure3_trials: int = 25

    #: Figure 4: fixed population, state counts, margins-per-point.
    figure4_population: int = 1001
    figure4_num_states: tuple[int, ...] = (4, 6, 12, 34, 130)
    figure4_margins_per_decade: int = 2
    figure4_trials: int = 15

    #: abl-d: intermediate-level sweep.
    ablation_d_population: int = 501
    ablation_d_m: int = 63
    ablation_d_levels: tuple[int, ...] = (1, 2, 4, 8, 16)
    ablation_d_trials: int = 15

    #: thm-c1: information propagation.
    propagation_populations: tuple[int, ...] = (100, 1000, 10_000)
    propagation_trials: int = 50

    #: thm-b1: four-state census.
    census_sizes: tuple[int, ...] = (3, 5)
    census_limit: int | None = 100_000
    census_scaling_populations: tuple[int, ...] = (25, 125)
    census_scaling_trials: int = 25

    #: robustness: fault-injection recovery sweep.  Rates are
    #: per-interaction fault probabilities (0.0 = fault-free
    #: baseline); the horizon is in parallel-time units (multiplied by
    #: ``n`` to get the armed interaction window) and the budget caps
    #: interactions per run so saturated fault rates cannot hang a
    #: sweep.
    robustness_population: int = 201
    robustness_trials: int = 25
    robustness_rates: tuple[float, ...] = (0.0, 0.002, 0.005, 0.01,
                                           0.02, 0.05)
    robustness_horizon: float = 8.0
    robustness_budget: int = 200_000

    #: byzantine: corruption budgets ``f`` for the exactness-breakdown
    #: sweep.  Shares the robustness sweep's population / trials /
    #: budget (so the ``f = 0`` controls share fingerprints with the
    #: rate-0.0 robustness controls); the budgets bracket the initial
    #: advantage, where exactness is expected to break.
    byzantine_budgets: tuple[int, ...] = (0, 1, 2, 5, 10, 21, 42)

    #: successors: AVC vs. phase-clocked successor protocols.
    #: Populations are even multiples of 20 so ``epsilon * n`` splits
    #: into integer counts at every scale's margin.
    successors_populations: tuple[int, ...] = (200, 2000, 20_000)
    successors_trials: int = 25
    successors_epsilon: float = 0.1


SCALES: dict[str, Scale] = {
    "smoke": Scale(
        name="smoke",
        figure3_populations=(11, 101),
        figure3_trials=5,
        figure4_population=101,
        figure4_num_states=(4, 12, 34),
        figure4_margins_per_decade=1,
        figure4_trials=5,
        ablation_d_population=101,
        ablation_d_m=15,
        ablation_d_levels=(1, 2, 4),
        ablation_d_trials=5,
        propagation_populations=(100, 1000),
        propagation_trials=20,
        census_sizes=(3,),
        census_limit=5_000,
        census_scaling_populations=(15, 45),
        census_scaling_trials=10,
        robustness_population=61,
        robustness_trials=6,
        robustness_rates=(0.0, 0.01, 0.05),
        robustness_horizon=4.0,
        robustness_budget=20_000,
        byzantine_budgets=(0, 2, 7),
        successors_populations=(100, 400),
        successors_trials=5,
        successors_epsilon=0.2,
    ),
    "default": Scale(name="default"),
    "paper": Scale(
        name="paper",
        figure3_populations=(11, 101, 1001, 10_001, 100_001),
        figure3_trials=101,
        figure4_population=100_001,
        figure4_num_states=(4, 6, 12, 24, 34, 66, 130, 258, 514, 1026,
                            2050, 4098, 16340),
        figure4_margins_per_decade=3,
        figure4_trials=101,
        ablation_d_population=10_001,
        ablation_d_m=255,
        ablation_d_levels=(1, 2, 4, 8, 16, 32, 64),
        ablation_d_trials=101,
        propagation_populations=(100, 1000, 10_000, 100_000),
        propagation_trials=101,
        census_sizes=(3, 5, 7),
        census_limit=None,
        census_scaling_populations=(25, 125, 625),
        census_scaling_trials=101,
        robustness_population=1001,
        robustness_trials=101,
        robustness_rates=(0.0, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05),
        robustness_horizon=10.0,
        robustness_budget=2_000_000,
        byzantine_budgets=(0, 2, 5, 10, 25, 50, 101, 202),
        successors_populations=(200, 2000, 20_000, 200_000),
        successors_trials=101,
        successors_epsilon=0.1,
    ),
}


def resolve_scale(name: str | None = None) -> Scale:
    """Look up a scale by name, falling back to ``REPRO_SCALE``."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "default")
    try:
        return SCALES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scale {name!r}; choose from {sorted(SCALES)}"
        ) from None
