"""Result output: CSV files and aligned console tables."""

from __future__ import annotations

import csv
from collections.abc import Mapping, Sequence
from pathlib import Path

from ..errors import ExperimentError

__all__ = ["write_csv", "format_table", "default_output_dir"]


def default_output_dir() -> Path:
    """Where experiment CSVs land unless overridden."""
    return Path("results")


def write_csv(path, rows: Sequence[Mapping], *,
              columns: Sequence[str] | None = None) -> Path:
    """Write dict rows to ``path`` (parents created), return the path."""
    if not rows:
        raise ExperimentError("refusing to write an empty result set")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if columns is None:
        columns = list(rows[0].keys())
    with open(target, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns))
        writer.writeheader()
        for row in rows:
            writer.writerow({key: row.get(key, "") for key in columns})
    return target


def _format_cell(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Mapping], *,
                 columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render dict rows as an aligned monospace table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_format_cell(row.get(col, "")) for col in columns]
                for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in rendered))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i])
                       for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(line)))
    return "\n".join(lines)
