"""Result output: CSV files and aligned console tables.

CSV writes are crash-safe: rows are serialized to a temp file in the
target directory and atomically renamed into place, so an interrupted
sweep leaves either the previous file or the complete new one — never
a truncated CSV.
"""

from __future__ import annotations

import csv
import io
import os
import tempfile
from collections.abc import Mapping, Sequence
from pathlib import Path

from ..errors import ExperimentError

__all__ = ["write_csv", "format_table", "default_output_dir"]


def default_output_dir() -> Path:
    """Where experiment CSVs (and the run store) land unless overridden.

    ``REPRO_OUTPUT_DIR`` redirects the whole suite; the per-command
    ``--output-dir`` flag wins over both.
    """
    return Path(os.environ.get("REPRO_OUTPUT_DIR") or "results")


def write_csv(path, rows: Sequence[Mapping], *,
              columns: Sequence[str] | None = None) -> Path:
    """Atomically write dict rows to ``path``, return the path.

    With explicit ``columns``, an empty ``rows`` produces a header-only
    CSV (an incremental or resumed sweep may legitimately flush before
    its first row); without ``columns`` an empty write has no schema to
    emit and is rejected.
    """
    if not rows and columns is None:
        raise ExperimentError("refusing to write an empty result set "
                              "without explicit columns")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns))
    writer.writeheader()
    for row in rows:
        writer.writerow({key: row.get(key, "") for key in columns})
    handle = tempfile.NamedTemporaryFile(
        "w", newline="", dir=target.parent,
        prefix=target.name + ".", suffix=".tmp", delete=False)
    try:
        with handle:
            handle.write(buffer.getvalue())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, target)
    except BaseException:
        os.unlink(handle.name)
        raise
    return target


def _format_cell(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Mapping], *,
                 columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render dict rows as an aligned monospace table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_format_cell(row.get(col, "")) for col in columns]
                for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in rendered))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i])
                       for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for line in rendered:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(line)))
    return "\n".join(lines)
