"""abl-d: does the number of intermediate levels ``d`` matter?

Section 6 of the paper: "The above experiments were performed setting
d = 1 ... The multiple levels of 1 and -1 are necessary in the
analysis; however, setting d > 1 does not significantly affect the
running time of the protocol in the experiments."

This ablation fixes ``m`` and the population and sweeps ``d``.  Note
that raising ``d`` also raises the state count ``s = m + 2d + 1``, so
a flat curve here genuinely isolates ``d`` (states added as levels
buy nothing, unlike states added as weights via ``m``).
"""

from __future__ import annotations

import argparse

from ..core.avc import AVCProtocol
from ..runstore import Orchestrator
from .config import Scale, resolve_scale
from .io import format_table, write_csv
from .runner import (
    add_sweep_arguments,
    add_telemetry_arguments,
    finish_sweep,
    sweep_orchestrator,
    telemetry_session,
)

__all__ = ["ablation_d_rows", "main"]

DEFAULT_SEED = 20150717


def ablation_d_rows(scale: Scale, *, seed: int = DEFAULT_SEED,
                    progress=None,
                    orchestrator: Orchestrator | None = None) -> list[dict]:
    """One row per ``d``, at margin one agent (the hardest input)."""
    orch = Orchestrator() if orchestrator is None else orchestrator
    n = scale.ablation_d_population
    epsilon = 1.0 / n
    rows = []
    for index, d in enumerate(scale.ablation_d_levels):
        protocol = AVCProtocol(m=scale.ablation_d_m, d=d)
        if progress is not None:
            progress(f"ablation-d: d={d} (s={protocol.num_states})")
        row = orch.majority_point(
            protocol, n=n, epsilon=epsilon,
            trials=scale.ablation_d_trials,
            seed=seed + index, engine="count")
        row["d"] = d
        row["m"] = scale.ablation_d_m
        row["s"] = protocol.num_states
        rows.append(row)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro ablation-d", description=__doc__.split("\n")[0])
    parser.add_argument("--scale", default=None)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    add_sweep_arguments(parser)
    add_telemetry_arguments(parser)
    args = parser.parse_args(argv)

    scale = resolve_scale(args.scale)
    with telemetry_session(args, session=f"ablation_d_{scale.name}"):
        return _run_sweep(args, scale)


def _run_sweep(args, scale: Scale) -> int:
    progress = lambda msg: print(f"  [{msg}]", flush=True)  # noqa: E731
    orchestrator, output_dir = sweep_orchestrator(
        f"ablation_d_{scale.name}", args, progress=progress)
    rows = ablation_d_rows(scale, seed=args.seed, progress=progress,
                           orchestrator=orchestrator)
    columns = ("d", "m", "s", "n", "epsilon", "mean_parallel_time",
               "std_parallel_time", "trials", "error_fraction")
    print(format_table(rows, columns=columns,
                       title=f"d-ablation (scale={scale.name})"))
    path = write_csv(f"{output_dir}/ablation_d_{scale.name}.csv", rows)
    print(f"\nwrote {path}")
    print(finish_sweep(orchestrator))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
