"""abl-topology: exact majority beyond the clique ([DV12]'s setting).

The paper analyzes the clique; [DV12] study the four-state dynamics on
arbitrary connected graphs and bound convergence by a spectral
quantity.  This experiment runs the graph-correct exact protocol
(interval consensus) across topologies with wildly different spectral
gaps, alongside AVC (whose correctness — never deciding for the
minority — follows from the sum invariant on *any* graph), and prints
measured times next to the spectral prediction ``(log n + 1)/(eps *
gap)``.

Expected shape: measured times order exactly as the predictions do —
clique ≈ expander « torus « ring — and no run ever errs.

The sweep also demonstrates a *negative* result this library
surfaced: AVC's termination argument is clique-specific.  On sparse
graphs a non-zero-weight agent can become spatially separated from
the remaining weak agents by a sea of weight-0 neighbours (weak-weak
interactions are no-ops), freezing the run with mixed signs.  AVC
rows are therefore reported on the clique (where it shines) and on
the ring (where ``settled_fraction`` collapses to 0 — the
demonstration).  Exactness is unaffected: the sum invariant holds on
any graph, so AVC still never *errs*; it just may not terminate off
the clique.
"""

from __future__ import annotations

import argparse

from ..analysis.spectral import dv12_style_bound, spectral_gap
from ..core.avc import AVCProtocol
from ..graphs import (
    complete_graph,
    cycle_graph,
    grid_graph,
    random_regular_graph,
)
from ..protocols.interval_consensus import IntervalConsensusProtocol
from ..rng import spawn_many
from ..runstore import Orchestrator
from ..serialize import protocol_to_dict
from ..sim.agent_engine import AgentEngine
from ..sim.results import TrialStats
from .config import Scale, resolve_scale
from .io import format_table, write_csv
from .runner import (
    add_sweep_arguments,
    add_telemetry_arguments,
    finish_sweep,
    sweep_orchestrator,
    telemetry_session,
)

__all__ = ["topology_rows", "main"]

DEFAULT_SEED = 20150721


def _topologies(n: int, seed: int):
    side = max(2, int(round(n ** 0.5)))
    return (
        ("clique", complete_graph(n)),
        ("random-4-regular", random_regular_graph(n, 4, rng=seed)),
        ("torus", grid_graph(side, side, periodic=True)),
        ("ring", cycle_graph(n)),
    )


def _measure_topology_cell(name, graph, protocol, *, count_a, epsilon,
                           budget, trials, trial_seed,
                           placement="random") -> dict:
    """One (topology, protocol) cell — pure function of its inputs."""
    nodes = graph.number_of_nodes()
    engine = AgentEngine(protocol, graph=graph, placement=placement)
    results = [
        engine.run(protocol.initial_counts(count_a, nodes - count_a),
                   rng=child, expected=1,
                   max_parallel_time=budget)
        for child in spawn_many(trial_seed, trials)
    ]
    stats = TrialStats.from_results(results)
    return {
        "topology": name,
        "protocol": protocol.name,
        "n": nodes,
        "epsilon": epsilon,
        "spectral_gap": spectral_gap(graph),
        "predicted_time": dv12_style_bound(graph, epsilon),
        "mean_parallel_time": stats.mean_parallel_time,
        "error_fraction": stats.error_fraction,
        "settled_fraction": stats.settled_fraction,
        "trials": trials,
    }


def topology_rows(scale: Scale, *, seed: int = DEFAULT_SEED,
                  placement: str = "random", progress=None,
                  orchestrator: Orchestrator | None = None) -> list[dict]:
    """One row per (topology, protocol).

    ``placement`` selects how opinions are laid out over the graph's
    nodes: ``"random"`` (a uniform shuffle) or ``"clustered"`` (the
    adversarial contiguous-block layout of
    :func:`repro.workloads.clustered_placement` — on the ring and the
    torus, opinions must cross a community boundary to mix, which is
    where the spectral bound bites hardest).
    """
    if placement not in ("random", "clustered"):
        raise ValueError(
            f"placement must be 'random' or 'clustered', "
            f"got {placement!r}")
    orch = Orchestrator() if orchestrator is None else orchestrator
    n = scale.ablation_d_population
    if n % 2 == 0:
        n += 1
    advantage = max(1, int(0.1 * n) | 1)
    trials = scale.ablation_d_trials
    avc = AVCProtocol(m=15, d=1)
    rows = []
    for topo_index, (name, graph) in enumerate(_topologies(n, seed)):
        nodes = graph.number_of_nodes()
        count_a = (nodes + advantage) // 2
        epsilon = (2 * count_a - nodes) / nodes
        protocols = [IntervalConsensusProtocol()]
        if name in ("clique", "ring"):
            # AVC on the clique (its model) and on the ring (the
            # deadlock demonstration; budget kept modest on purpose).
            protocols.append(avc)
        for proto_index, protocol in enumerate(protocols):
            if progress is not None:
                progress(f"topology: {name} / {protocol.name}")
            budget = (20_000.0 if protocol is avc and name != "clique"
                      else 200_000.0)
            trial_seed = seed + 97 * topo_index + proto_index
            # The graph seed pins the random-regular topology, the
            # trial seed pins the runs — together with the protocol
            # they define the cell completely.
            params = {"topology": name, "graph_seed": seed,
                      "protocol": protocol_to_dict(protocol),
                      "n": nodes, "count_a": count_a, "budget": budget,
                      "trials": trials, "trial_seed": trial_seed}
            if placement != "random":
                # Only non-default placements extend the key, so every
                # cell cached before the flag existed stays addressable.
                params["placement"] = placement
            row = orch.point(
                "topology-cell", params,
                lambda name=name, graph=graph, protocol=protocol,
                count_a=count_a, epsilon=epsilon, budget=budget,
                trial_seed=trial_seed: _measure_topology_cell(
                    name, graph, protocol, count_a=count_a,
                    epsilon=epsilon, budget=budget, trials=trials,
                    trial_seed=trial_seed, placement=placement),
                label=f"topology {name}/{protocol.name}")
            rows.append(dict(row, placement=placement))
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro topology", description=__doc__.split("\n")[0])
    parser.add_argument("--scale", default=None)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--placement", default="random",
                        choices=("random", "clustered"),
                        help="initial opinion layout over graph nodes "
                             "(clustered = contiguous adversarial "
                             "blocks)")
    add_sweep_arguments(parser)
    add_telemetry_arguments(parser)
    args = parser.parse_args(argv)

    scale = resolve_scale(args.scale)
    with telemetry_session(args, session=f"topology_{scale.name}"):
        return _run_sweep(args, scale)


def _run_sweep(args, scale: Scale) -> int:
    progress = lambda msg: print(f"  [{msg}]", flush=True)  # noqa: E731
    suffix = ("" if args.placement == "random"
              else f"_{args.placement}")
    orchestrator, output_dir = sweep_orchestrator(
        f"topology_{scale.name}{suffix}", args, progress=progress)
    rows = topology_rows(scale, seed=args.seed,
                         placement=args.placement, progress=progress,
                         orchestrator=orchestrator)
    columns = ("topology", "protocol", "n", "spectral_gap",
               "predicted_time", "mean_parallel_time", "error_fraction",
               "settled_fraction", "trials", "placement")
    print(format_table(rows, columns=columns,
                       title=f"Topology sweep (scale={scale.name}, "
                             f"placement={args.placement})"))
    path = write_csv(
        f"{output_dir}/topology_{scale.name}{suffix}.csv", rows)
    print(f"\nwrote {path}")
    print(finish_sweep(orchestrator))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
