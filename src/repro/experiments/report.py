"""Aggregate report: collect every CSV in ``results/`` into Markdown.

``python -m repro report`` renders all experiment outputs produced so
far (any scale, any subset) into one ``results/REPORT.md`` with a
table per CSV — the artifact to attach when sharing a reproduction
run.
"""

from __future__ import annotations

import argparse
import csv
from datetime import datetime, timezone
from pathlib import Path

from ..errors import ExperimentError
from .io import default_output_dir, format_table

__all__ = ["collect_rows", "render_report", "main"]


def collect_rows(csv_path: Path) -> list[dict]:
    """Load one experiment CSV back into typed rows."""
    with open(csv_path) as handle:
        raw_rows = list(csv.DictReader(handle))
    rows = []
    for raw in raw_rows:
        row = {}
        for key, value in raw.items():
            if value is None or value == "":
                row[key] = ""
                continue
            try:
                number = float(value)
                row[key] = int(number) if number.is_integer() \
                    and "." not in value and "e" not in value.lower() \
                    else number
            except ValueError:
                row[key] = value
        rows.append(row)
    return rows


def render_report(output_dir: Path) -> str:
    """Markdown report over every ``*.csv`` under ``output_dir``."""
    csv_paths = sorted(Path(output_dir).glob("*.csv"))
    if not csv_paths:
        raise ExperimentError(
            f"no CSV results under {output_dir}; run some experiments "
            "first (python -m repro all)")
    stamp = datetime.now(timezone.utc).strftime("%Y-%m-%d %H:%M UTC")
    sections = [
        "# Reproduction report",
        "",
        f"Generated {stamp} from {len(csv_paths)} result file(s) in "
        f"`{output_dir}`.  See EXPERIMENTS.md for the paper-vs-measured "
        "discussion and DESIGN.md for the experiment index.",
    ]
    for path in csv_paths:
        rows = collect_rows(path)
        sections.append("")
        sections.append(f"## {path.stem}")
        sections.append("")
        sections.append("```")
        sections.append(format_table(rows))
        sections.append("```")
    return "\n".join(sections) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro report", description=__doc__.split("\n")[0])
    parser.add_argument("--output-dir", default=None)
    # Accepted for interface uniformity with the other subcommands
    # (so `repro all --scale smoke` can forward its arguments here).
    parser.add_argument("--scale", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--seed", type=int, default=None,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    output_dir = Path(default_output_dir() if args.output_dir is None
                      else args.output_dir)
    report = render_report(output_dir)
    target = output_dir / "REPORT.md"
    target.write_text(report)
    print(f"wrote {target} ({len(report.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
