"""Successors: AVC vs. phase-clocked exact-majority descendants.

The paper's average-and-conquer (AVC) protocol settled the
``O(log^2 n)``-time exact-majority question in 2015; the next
generation of protocols reached the same guarantee with
``O(log n)``-ish *state* budgets by replacing AVC's value-averaging
with phase-clocked cancellation/doubling tournaments.  This sweep
runs AVC head-to-head against two such successors from the registry:

* ``phase-doubling`` — Berenbrink et al.'s
  cancellation/doubling tournament (arXiv:1805.05157): opinions carry
  power-of-two weights, equal-weight opposites cancel, and a shared
  leaderless clock paces the doubling rounds;
* ``log-state`` — a role-partitioned ``O(log n)``-state protocol in
  the style of Ben-Nun et al. (arXiv:2011.12633): cancelled pairs
  retire into a clock junta that paces the survivors' tournament.

For each population size ``n`` every protocol is sized for that
population (``levels = ceil(log2 n)``; AVC keeps the paper's
``m = 63`` workhorse) and we report mean parallel time-to-stabilize
together with the protocol's state count ``s`` — the time-vs-``n``
and time-vs-``s`` trade-off in one table.  All engines are exact, so
``error_fraction`` must be 0.0 for every row.

Protocols are resolved **by name** through
:mod:`repro.protocols.registry`, exactly as the JSON wire form does —
the sweep doubles as an end-to-end exercise of the registry path, and
its run-store keys are shared with any client that requests the same
points by name.
"""

from __future__ import annotations

import argparse
import math

from ..protocols import registry
from ..runstore import Orchestrator
from .config import Scale, resolve_scale
from .io import format_table, write_csv
from .plotting import ascii_chart
from .runner import (
    add_sweep_arguments,
    add_telemetry_arguments,
    finish_sweep,
    sweep_orchestrator,
    telemetry_session,
)

__all__ = ["successor_specs", "successors_rows", "main"]

#: Root seed; every (n, protocol) point derives its own stream.
DEFAULT_SEED = 20180514


def successor_specs(n: int) -> tuple[tuple[str, dict], ...]:
    """Registry ``(name, params)`` pairs for a population of ``n``.

    The successors are sized for ``n`` (``levels = ceil(log2 n)``, the
    smallest level budget whose total token weight can represent any
    initial margin); AVC uses the paper's fixed ``m = 63`` instance.
    """
    levels = max(1, math.ceil(math.log2(n)))
    return (
        ("avc", {"m": 63, "d": 1}),
        ("phase-doubling", {"levels": levels, "theta": 4}),
        ("log-state", {"levels": levels, "phase_len": 4}),
    )


def successors_rows(scale: Scale, *, seed: int = DEFAULT_SEED,
                    engine: str = "auto", progress=None,
                    orchestrator: Orchestrator | None = None
                    ) -> list[dict]:
    """One row per (n, protocol), augmented with the state count.

    With an ``orchestrator``, every point is served from the run store
    when cached and checkpointed to the sweep journal while computing;
    without one the rows are computed identically, just not persisted.
    """
    orch = Orchestrator() if orchestrator is None else orchestrator
    rows = []
    for point_index, n in enumerate(scale.successors_populations):
        for proto_index, (name, params) in enumerate(successor_specs(n)):
            protocol = registry.create(name, params)
            if progress is not None:
                progress(f"successors: n={n} protocol={protocol.name} "
                         f"s={protocol.num_states}")
            row = orch.majority_point(
                protocol, n=n, epsilon=scale.successors_epsilon,
                trials=scale.successors_trials,
                seed=seed + 1000 * point_index + proto_index,
                engine=engine)
            # In place, not dict(row): in work-queue mode `row` is a
            # placeholder filled by drain(), and the store hands out
            # fresh copies, so augmenting it is safe either way.
            row["num_states"] = protocol.num_states
            rows.append(row)
    orch.drain()
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro successors", description=__doc__.split("\n")[0])
    parser.add_argument("--scale", default=None,
                        help="smoke | default | paper")
    parser.add_argument("--smoke", action="store_true",
                        help="shorthand for --scale smoke")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--engine", default="auto",
                        help="engine (or policy) for every run; the "
                             "default picks an exact engine per point")
    add_sweep_arguments(parser, workers=True)
    add_telemetry_arguments(parser)
    args = parser.parse_args(argv)

    scale_name = "smoke" if args.smoke else args.scale
    scale = resolve_scale(scale_name)
    progress = lambda msg: print(f"  [{msg}]", flush=True)  # noqa: E731
    with telemetry_session(args, session=f"successors_{scale.name}"):
        orchestrator, output_dir = sweep_orchestrator(
            f"successors_{scale.name}", args, progress=progress)
        rows = successors_rows(scale, seed=args.seed,
                               engine=args.engine, progress=progress,
                               orchestrator=orchestrator)
        columns = ("n", "protocol", "num_states", "mean_parallel_time",
                   "std_parallel_time", "error_fraction", "trials",
                   "settled_fraction", "engine")
        print(format_table(rows, columns=columns,
                           title=f"Successors (scale={scale.name}, "
                                 f"eps={scale.successors_epsilon})"))
        series: dict[str, list[tuple[float, float]]] = {}
        for row in rows:
            kind = row["protocol"].split("(")[0]
            series.setdefault(kind, []).append(
                (row["n"], row["mean_parallel_time"]))
        print()
        print(ascii_chart(series, title="Successors: parallel "
                                        "time-to-stabilize vs n",
                          x_label="n", y_label="time"))
        path = write_csv(f"{output_dir}/successors_{scale.name}.csv",
                         rows)
        print(f"\nwrote {path}")
        print(finish_sweep(orchestrator))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
