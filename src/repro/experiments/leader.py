"""abl-leader: leader election baselines (the paper's open question).

Section 6 closes by asking whether average-and-conquer-style tricks
help leader election.  This experiment provides the measurement such
work would be compared against: election time of the folklore pairwise
protocol and the leveled variant across population sizes.

Expected shape: both protocols elect exactly one leader in every run,
and election time grows ~linearly with ``n`` for both — the final
two-leaders coupon dominates so completely that the leveled variant's
extra states buy essentially nothing.  That measured flatness is the
point: it quantifies why the paper's question is hard — the
average-and-conquer trick speeds the *bulk* phase of majority, but
leader election's cost sits entirely in the endgame.
"""

from __future__ import annotations

import argparse

from ..protocols.leader_election import (
    LeveledLeaderElection,
    PairwiseLeaderElection,
)
from ..rng import spawn_many
from ..sim.results import TrialStats
from ..sim.run import make_engine
from .config import Scale, resolve_scale
from .io import default_output_dir, format_table, write_csv
from .runner import add_telemetry_arguments, telemetry_session

__all__ = ["leader_rows", "main"]

DEFAULT_SEED = 20150722


def leader_rows(scale: Scale, *, seed: int = DEFAULT_SEED,
                progress=None) -> list[dict]:
    """One row per (n, protocol)."""
    populations = scale.propagation_populations[:3]
    trials = scale.ablation_d_trials
    rows = []
    for n_index, n in enumerate(populations):
        for p_index, protocol in enumerate((PairwiseLeaderElection(),
                                            LeveledLeaderElection(levels=8))):
            if progress is not None:
                progress(f"leader: n={n} {protocol.name}")
            engine = make_engine(protocol, "auto")
            results = [
                engine.run(protocol.initial_counts(n), rng=child)
                for child in spawn_many(seed + 31 * n_index + p_index,
                                        trials)
            ]
            stats = TrialStats.from_results(results)
            assert stats.settled_fraction == 1.0
            rows.append({
                "protocol": protocol.name,
                "n": n,
                "trials": trials,
                "mean_parallel_time": stats.mean_parallel_time,
                "std_parallel_time": stats.std_parallel_time,
                "time_over_n": stats.mean_parallel_time / n,
            })
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro leader-election", description=__doc__.split("\n")[0])
    parser.add_argument("--scale", default=None)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--output-dir", default=None)
    add_telemetry_arguments(parser)
    args = parser.parse_args(argv)

    scale = resolve_scale(args.scale)
    with telemetry_session(args, session=f"leader_{scale.name}"):
        return _run_sweep(args, scale)


def _run_sweep(args, scale: Scale) -> int:
    rows = leader_rows(scale, seed=args.seed,
                       progress=lambda msg: print(f"  [{msg}]",
                                                  flush=True))
    print(format_table(rows,
                       title=f"Leader election (scale={scale.name})"))
    print("\n'time_over_n' flat across n = Theta(n) election time; the "
          "leveled protocol's advantage is the constant, not the rate.")
    output_dir = (default_output_dir() if args.output_dir is None
                  else args.output_dir)
    path = write_csv(f"{output_dir}/leader_{scale.name}.csv", rows)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
