"""Command-line entry point: ``python -m repro <experiment>``.

Subcommands regenerate the paper's figures and the lower-bound
experiments; ``all`` runs everything at the chosen scale.  Every
subcommand accepts ``--scale smoke|default|paper`` (or the
``REPRO_SCALE`` environment variable).  CSVs land under the output
directory — ``results/`` by default, overridable globally with
``--output-dir`` or the ``REPRO_OUTPUT_DIR`` environment variable.

Sweeps are resumable: completed points are committed to a
content-addressed run store under ``<output-dir>/.runstore/``
(inspect with ``python -m repro runs list|status|gc``), re-invocations
with an unchanged configuration complete from cache, and ``--resume``
additionally replays mid-point chunk checkpoints after a crash.
"""

from __future__ import annotations

import argparse
import sys

from . import (
    ablation_d,
    byzantine,
    leader,
    report,
    phases,
    robustness,
    successors,
    topology,
    figure3,
    figure4,
    four_state_census,
    lowerbound_logn,
)
from ..runstore import cli as runs_cli
from ..runstore import workers_cli
from ..service import cli as serve_cli

__all__ = ["main"]

_SUBCOMMANDS = {
    "figure3": figure3.main,
    "figure4": figure4.main,
    "ablation-d": ablation_d.main,
    "info-propagation": lowerbound_logn.main,
    "four-state-census": four_state_census.main,
    "phases": phases.main,
    "robustness": robustness.main,
    "byzantine": byzantine.main,
    "successors": successors.main,
    "topology": topology.main,
    "leader-election": leader.main,
    "report": report.main,
    "runs": runs_cli.main,
    "serve": serve_cli.main,
    "workers": workers_cli.main,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction experiments for 'Fast and Exact "
                    "Majority in Population Protocols' (PODC 2015).")
    parser.add_argument(
        "experiment",
        choices=sorted(_SUBCOMMANDS) + ["all"],
        help="which experiment to run (see DESIGN.md for the index)")
    parser.add_argument(
        "--output-dir", default=None,
        help="directory for CSVs and the run store (default: results/ "
             "or $REPRO_OUTPUT_DIR)")
    args, rest = parser.parse_known_args(argv)

    if args.output_dir is not None:
        rest = ["--output-dir", args.output_dir] + rest

    if args.experiment == "all":
        status = 0
        for name in ("figure3", "figure4", "ablation-d", "phases",
                     "topology", "robustness", "byzantine", "successors",
                     "leader-election", "info-propagation",
                     "four-state-census", "report"):
            print(f"\n=== {name} ===", flush=True)
            status = _SUBCOMMANDS[name](list(rest)) or status
        return status
    return _SUBCOMMANDS[args.experiment](rest)


if __name__ == "__main__":
    raise SystemExit(main())
