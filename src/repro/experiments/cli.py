"""Command-line entry point: ``python -m repro <experiment>``.

Subcommands regenerate the paper's figures and the lower-bound
experiments; ``all`` runs everything at the chosen scale.  Every
subcommand accepts ``--scale smoke|default|paper`` (or the
``REPRO_SCALE`` environment variable) and writes a CSV under
``results/``.
"""

from __future__ import annotations

import argparse
import sys

from . import (
    ablation_d,
    leader,
    report,
    phases,
    topology,
    figure3,
    figure4,
    four_state_census,
    lowerbound_logn,
)

__all__ = ["main"]

_SUBCOMMANDS = {
    "figure3": figure3.main,
    "figure4": figure4.main,
    "ablation-d": ablation_d.main,
    "info-propagation": lowerbound_logn.main,
    "four-state-census": four_state_census.main,
    "phases": phases.main,
    "topology": topology.main,
    "leader-election": leader.main,
    "report": report.main,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction experiments for 'Fast and Exact "
                    "Majority in Population Protocols' (PODC 2015).")
    parser.add_argument(
        "experiment",
        choices=sorted(_SUBCOMMANDS) + ["all"],
        help="which experiment to run (see DESIGN.md for the index)")
    args, rest = parser.parse_known_args(argv)

    if args.experiment == "all":
        status = 0
        for name in ("figure3", "figure4", "ablation-d", "phases",
                     "topology", "leader-election",
                     "info-propagation", "four-state-census", "report"):
            print(f"\n=== {name} ===", flush=True)
            status = _SUBCOMMANDS[name](list(rest)) or status
        return status
    return _SUBCOMMANDS[args.experiment](rest)


if __name__ == "__main__":
    raise SystemExit(main())
