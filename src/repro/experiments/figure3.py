"""Figure 3: 3-state vs 4-state vs n-state AVC at margin one agent.

Reproduces both panels of the paper's Figure 3.  For each population
size ``n`` (odd, with ``eps = 1/n`` — the majority decided by a single
agent) and each protocol we report:

* **left panel** — mean parallel convergence time,
* **right panel** — the fraction of runs converging to the wrong
  final state (non-zero only for the approximate 3-state protocol).

Protocol/engine choices:

* three-state and four-state run on the exact null-skipping engine
  (the 4-state protocol at ``eps = 1/n`` needs ``Theta(n)`` parallel
  time = ``Theta(n^2)`` interactions, almost all null — skipping them
  is what makes ``n = 100001`` runnable);
* "n-state AVC" uses ``s = n + 1`` states (``m = n - 2``, ``d = 1``):
  the paper's odd ``n`` values make exactly-``n`` states inadmissible
  for ``d = 1`` since ``s = m + 3`` must be even, so we take the
  nearest admissible count.  It runs on the exact vectorized ensemble
  engine by default (all trials of a point advanced at once); pass
  ``engine="count"`` for the sequential exact engine or
  ``engine="batch"`` for the approximate vectorized engine at paper
  scale.

Expected shape (see EXPERIMENTS.md for measured values): the 4-state
protocol's time grows linearly in ``n`` (orders of magnitude above the
rest by ``n = 10^4``), the 3-state and AVC times stay
poly-logarithmic and comparable, and the 3-state error fraction is
large (close to 1/2 at ``eps = 1/n``) while AVC and 4-state never err.
"""

from __future__ import annotations

import argparse

from ..core.avc import AVCProtocol
from ..protocols.four_state import FourStateProtocol
from ..protocols.three_state import ThreeStateProtocol
from ..runstore import Orchestrator, RunStore
from .config import Scale, resolve_scale
from .io import format_table, write_csv
from .plotting import ascii_chart
from .runner import (
    add_sweep_arguments,
    add_telemetry_arguments,
    finish_sweep,
    sweep_orchestrator,
    telemetry_session,
)

__all__ = ["avc_n_state", "figure3_rows", "main"]

#: Root seed; every (n, protocol) point derives its own stream.
DEFAULT_SEED = 20150715


def avc_n_state(n: int, d: int = 1) -> AVCProtocol:
    """The "n-state" AVC instance for a population of ``n`` agents.

    Returns the protocol with the smallest admissible state count
    ``>= n`` for the given ``d`` (``n + 1`` for odd ``n``, ``d = 1``).
    """
    s = n
    while True:
        m = s - 2 * d - 1
        if m >= 1 and m % 2 == 1:
            return AVCProtocol(m=m, d=d)
        s += 1


def _protocols_for(n: int, avc_engine: str):
    return (
        (ThreeStateProtocol(), "null-skipping"),
        (FourStateProtocol(), "null-skipping"),
        (avc_n_state(n), avc_engine),
    )


def figure3_rows(scale: Scale, *, seed: int = DEFAULT_SEED,
                 avc_engine: str = "ensemble", progress=None,
                 orchestrator: Orchestrator | None = None) -> list[dict]:
    """Compute both Figure 3 panels; one row per (n, protocol).

    With an ``orchestrator``, every point is served from the run store
    when cached and checkpointed to the sweep journal while computing;
    without one the rows are computed identically, just not persisted.
    """
    orch = Orchestrator() if orchestrator is None else orchestrator
    rows = []
    for point_index, n in enumerate(scale.figure3_populations):
        epsilon = 1.0 / n
        for proto_index, (protocol, engine) in enumerate(
                _protocols_for(n, avc_engine)):
            if progress is not None:
                progress(f"figure3: n={n} protocol={protocol.name}")
            row = orch.majority_point(
                protocol, n=n, epsilon=epsilon,
                trials=scale.figure3_trials,
                seed=seed + 1000 * point_index + proto_index,
                engine=engine)
            rows.append(row)
    orch.drain()
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro figure3", description=__doc__.split("\n")[0])
    parser.add_argument("--scale", default=None,
                        help="smoke | default | paper")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--avc-engine", default="ensemble",
                        choices=("ensemble", "count", "batch", "agent"),
                        help="engine for the n-state AVC runs")
    add_sweep_arguments(parser, workers=True)
    add_telemetry_arguments(parser)
    args = parser.parse_args(argv)

    scale = resolve_scale(args.scale)
    progress = lambda msg: print(f"  [{msg}]", flush=True)  # noqa: E731
    with telemetry_session(args, session=f"figure3_{scale.name}"):
        orchestrator, output_dir = sweep_orchestrator(
            f"figure3_{scale.name}", args, progress=progress)
        rows = figure3_rows(scale, seed=args.seed,
                            avc_engine=args.avc_engine,
                            progress=progress, orchestrator=orchestrator)
        columns = ("n", "protocol", "mean_parallel_time",
                   "error_fraction", "std_parallel_time", "trials",
                   "settled_fraction", "engine")
        print(format_table(rows, columns=columns,
                           title=f"Figure 3 (scale={scale.name}, "
                                 f"eps=1/n)"))
        series: dict[str, list[tuple[float, float]]] = {}
        for row in rows:
            kind = row["protocol"].split("(")[0]
            series.setdefault(kind, []).append(
                (row["n"], row["mean_parallel_time"]))
        print()
        print(ascii_chart(series, title="Figure 3 (left): parallel "
                                        "convergence time vs n",
                          x_label="n", y_label="time"))
        path = write_csv(f"{output_dir}/figure3_{scale.name}.csv", rows)
        print(f"\nwrote {path}")
        print(finish_sweep(orchestrator))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
