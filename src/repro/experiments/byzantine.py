"""Byzantine robustness: where exactness breaks as ``f`` grows.

The paper's protocols are *exact* under fair scheduling: AVC and the
four-state baseline always output the true initial majority.  That
guarantee assumes every agent follows the protocol.  This experiment
measures what survives when ``f`` of the ``n`` agents are byzantine —
they present adversarially chosen states in every meeting and never
update their own (:mod:`repro.faults`, ``byzantine_f`` /
``byzantine_mode``) — sweeping ``f`` from 0 to beyond the initial
margin for AVC and the four-state protocol side by side.

Two adversaries, selected with ``--mode``:

* ``stubborn`` — every byzantine agent permanently claims the initial
  *minority* input, the strongest fixed lie against an exact-majority
  protocol;
* ``adaptive`` — byzantine agents watch the live counts and claim the
  input of whichever opinion is currently *trailing*, maximizing
  disruption against cancellation-based dynamics.

The adversary is armed for the robustness sweep's fault window (the
horizon, in parallel-time units) and then released, so the sweep
measures what Lemma A.1's self-stabilization argument can and cannot
absorb: after the window closes the protocol re-converges to *some*
unanimous configuration, and the question is whether the honest
majority's signal survived the corruption.  (An adversary armed
forever trivially wins at any ``f >= 1`` — byzantine agents never
update, so like voter-model zealots they drag every run to their
preferred absorbing state eventually; the horizon is what makes the
breakdown a function of ``f``.)  The breakdown shows up as
``residual_error`` climbing from 0 once the lies injected during the
window overwhelm the initial advantage, with AVC's averaging dynamics
and the four-state baseline breaking at visibly different budgets.

The sweep deliberately reuses the robustness sweep's geometry (same
population, advantage, trials, budget, and per-point seed formula), so
the ``f = 0`` control points carry *identical fingerprints* to
``python -m repro robustness``'s rate-0.0 controls for AVC and the
four-state protocol: a warm run store serves them without
re-simulation, in either direction.

Every point runs through the sweep orchestrator: points are cached by
the fingerprint of (protocol, population, fault model, seed, ...), so
re-invocations complete from the run store and ``--resume`` replays
chunk checkpoints after a crash.
"""

from __future__ import annotations

import argparse

from ..core.avc import AVCProtocol
from ..faults import FaultSpec
from ..protocols.four_state import FourStateProtocol
from ..runstore import Orchestrator
from .config import Scale, resolve_scale
from .io import format_table, write_csv
from .plotting import ascii_chart
from .robustness import DEFAULT_SEED, _advantage
from .runner import (
    add_sweep_arguments,
    add_telemetry_arguments,
    finish_sweep,
    sweep_orchestrator,
    telemetry_session,
)

__all__ = ["BYZANTINE_MODES", "byzantine_spec_for", "byzantine_rows",
           "main"]

BYZANTINE_MODES = ("stubborn", "adaptive")


def byzantine_spec_for(f: int, mode: str,
                       horizon: int) -> FaultSpec | None:
    """The :class:`FaultSpec` for one sweep cell; ``None`` at ``f=0``.

    ``f = 0`` deliberately returns ``None`` rather than a null spec:
    the honest baseline then shares its fingerprint with ordinary
    majority runs — and with the robustness sweep's rate-0.0 controls —
    so a warm run store serves it without re-simulation.
    """
    if f == 0:
        return None
    return FaultSpec(byzantine_f=f, byzantine_mode=mode,
                     horizon=horizon)


def _protocols():
    # The first two robustness-sweep protocols, in the same order, so
    # the f=0 seeds (seed + proto_index) coincide with the robustness
    # rate-0 controls point for point.  The three-state baseline is
    # excluded: it is only approximate even with zero adversaries, so
    # it has no exactness to break.
    return (AVCProtocol(m=15, d=1), FourStateProtocol())


def byzantine_rows(scale: Scale, *, mode: str = "stubborn",
                   seed: int = DEFAULT_SEED, progress=None,
                   orchestrator: Orchestrator | None = None
                   ) -> list[dict]:
    """Compute the byzantine sweep; one row per (f, protocol).

    With an ``orchestrator``, every point is served from the run store
    when cached and checkpointed to the sweep journal while computing;
    without one the rows are computed identically, just not persisted.
    """
    if mode not in BYZANTINE_MODES:
        raise ValueError(
            f"unknown byzantine mode {mode!r}; choose from "
            f"{BYZANTINE_MODES}")
    orch = Orchestrator() if orchestrator is None else orchestrator
    n = scale.robustness_population
    advantage = _advantage(n)
    epsilon = advantage / n
    horizon = int(scale.robustness_horizon * n)
    rows = []
    for f_index, f in enumerate(scale.byzantine_budgets):
        faults = byzantine_spec_for(f, mode, horizon)
        describe = ("fault-free" if faults is None
                    else f"byzantine-{mode}@f={f}")
        for proto_index, protocol in enumerate(_protocols()):
            if progress is not None:
                progress(f"byzantine: {describe} "
                         f"protocol={protocol.name}")
            row = orch.robustness_point(
                protocol, n=n, epsilon=epsilon,
                trials=scale.robustness_trials,
                seed=seed + 1000 * f_index + proto_index,
                faults=faults, max_steps=scale.robustness_budget,
                describe=describe)
            # In place, not dict(row, ...): in work-queue mode `row`
            # is a placeholder filled by drain(), and the store hands
            # out fresh copies, so augmenting it is safe either way.
            row["byzantine_f"] = f
            row["byzantine_mode"] = mode
            row["advantage"] = advantage
            rows.append(row)
    orch.drain()
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro byzantine", description=__doc__.split("\n")[0])
    parser.add_argument("--scale", default=None,
                        help="smoke | default | paper")
    parser.add_argument("--smoke", action="store_true",
                        help="shorthand for --scale smoke")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--mode", default="stubborn",
                        choices=BYZANTINE_MODES,
                        help="which adversary to sweep")
    add_sweep_arguments(parser, workers=True)
    add_telemetry_arguments(parser)
    args = parser.parse_args(argv)

    scale = resolve_scale("smoke" if args.smoke else args.scale)
    progress = lambda msg: print(f"  [{msg}]", flush=True)  # noqa: E731
    sweep = f"byzantine_{args.mode}_{scale.name}"
    with telemetry_session(args, session=sweep):
        orchestrator, output_dir = sweep_orchestrator(
            sweep, args, progress=progress)
        rows = byzantine_rows(scale, mode=args.mode, seed=args.seed,
                              progress=progress,
                              orchestrator=orchestrator)
        columns = ("byzantine_f", "protocol", "residual_error",
                   "settled_fraction", "mean_recovery_time",
                   "std_recovery_time", "mean_fault_events",
                   "mean_parallel_time", "trials", "n", "advantage",
                   "byzantine_mode", "fault_model", "engine")
        print(format_table(
            rows, columns=columns,
            title=f"Byzantine exactness breakdown ({args.mode}, "
                  f"scale={scale.name}, "
                  f"n={scale.robustness_population}, "
                  f"advantage={rows[0]['advantage']})"))
        series: dict[str, list[tuple[float, float]]] = {}
        for row in rows:
            kind = row["protocol"].split("(")[0]
            series.setdefault(kind, []).append(
                (float(row["byzantine_f"]), row["residual_error"]))
        print()
        # Linear x: the sweep includes the honest baseline f=0.
        print(ascii_chart(series, log_x=False, log_y=False,
                          title=f"Residual error vs byzantine f "
                                f"({args.mode})",
                          x_label="f", y_label="error"))
        path = write_csv(f"{output_dir}/{sweep}.csv", rows,
                         columns=columns)
        print(f"\nwrote {path}")
        print(finish_sweep(orchestrator))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
