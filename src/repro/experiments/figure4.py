"""Figure 4: AVC convergence time vs margin ``eps`` and state count ``s``.

Reproduces both panels of the paper's Figure 4 with a single sweep:
for each state count ``s`` (the paper's list runs 4, 6, 12, ...,
16340) and each margin ``eps`` we measure the mean parallel
convergence time of ``AVCProtocol.with_num_states(s)`` on a fixed
population.

* **left panel** — time vs ``eps``, one curve per ``s``: curves shift
  down as ``s`` grows, each showing the ``Theta(1/eps)`` ramp for
  small ``eps`` (until ``s`` is comparable to ``n``, where the curve
  flattens);
* **right panel** — the same points plotted against the product
  ``s * eps``: the curves collapse, supporting the ``Theta~(1/(s eps))``
  dominant term of Theorem 4.1.

Margins are chosen log-spaced with the agent-advantage rounded to odd
integers (the populations are odd, so the split stays integral).
"""

from __future__ import annotations

import argparse
import math

from ..core.avc import AVCProtocol
from ..runstore import Orchestrator
from .config import Scale, resolve_scale
from .io import format_table, write_csv
from .plotting import ascii_chart
from .runner import (
    add_sweep_arguments,
    add_telemetry_arguments,
    finish_sweep,
    sweep_orchestrator,
    telemetry_session,
)

__all__ = ["margin_advantages", "figure4_rows", "main"]

DEFAULT_SEED = 20150716


def margin_advantages(n: int, per_decade: int) -> list[int]:
    """Log-spaced odd agent advantages from 1 to ``~n/2``.

    ``per_decade`` controls the grid density.  The maximum advantage
    keeps both input counts positive.
    """
    if n < 5 or n % 2 == 0:
        raise ValueError(f"population must be odd and >= 5, got {n}")
    largest = n // 2 if (n // 2) % 2 == 1 else n // 2 - 1
    decades = math.log10(largest) if largest > 1 else 0.0
    count = max(2, int(round(decades * per_decade)) + 1)
    advantages = []
    for k in range(count):
        raw = 10 ** (decades * k / (count - 1)) if count > 1 else 1.0
        advantage = int(round(raw))
        if advantage % 2 == 0:
            advantage += 1
        advantage = min(advantage, largest)
        if advantage not in advantages:
            advantages.append(advantage)
    return advantages


def figure4_rows(scale: Scale, *, seed: int = DEFAULT_SEED,
                 engine: str = "ensemble", progress=None,
                 orchestrator: Orchestrator | None = None) -> list[dict]:
    """One row per (s, eps) point, including the ``s * eps`` column."""
    orch = Orchestrator() if orchestrator is None else orchestrator
    n = scale.figure4_population
    advantages = margin_advantages(n, scale.figure4_margins_per_decade)
    rows = []
    for s_index, s in enumerate(scale.figure4_num_states):
        protocol = AVCProtocol.with_num_states(s)
        for a_index, advantage in enumerate(advantages):
            epsilon = advantage / n
            if progress is not None:
                progress(f"figure4: s={s} eps={epsilon:.2e}")
            row = orch.majority_point(
                protocol, n=n, epsilon=epsilon,
                trials=scale.figure4_trials,
                seed=seed + 10_000 * s_index + a_index,
                engine=engine)
            row["s"] = s
            row["s_times_epsilon"] = s * epsilon
            rows.append(row)
    orch.drain()
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro figure4", description=__doc__.split("\n")[0])
    parser.add_argument("--scale", default=None,
                        help="smoke | default | paper")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--engine", default="ensemble",
                        choices=("ensemble", "count", "batch"),
                        help="ensemble advances all trials of a point "
                             "at once (exact); batch trades exactness "
                             "for speed at paper scale")
    add_sweep_arguments(parser, workers=True)
    add_telemetry_arguments(parser)
    args = parser.parse_args(argv)

    scale = resolve_scale(args.scale)
    with telemetry_session(args, session=f"figure4_{scale.name}"):
        return _run_sweep(args, scale)


def _run_sweep(args, scale: Scale) -> int:
    progress = lambda msg: print(f"  [{msg}]", flush=True)  # noqa: E731
    orchestrator, output_dir = sweep_orchestrator(
        f"figure4_{scale.name}", args, progress=progress)
    rows = figure4_rows(scale, seed=args.seed, engine=args.engine,
                        progress=progress, orchestrator=orchestrator)
    columns = ("s", "epsilon", "s_times_epsilon", "mean_parallel_time",
               "std_parallel_time", "trials", "error_fraction")
    print(format_table(
        rows, columns=columns,
        title=f"Figure 4 (scale={scale.name}, n={scale.figure4_population})"))
    left_series: dict[str, list[tuple[float, float]]] = {}
    right_series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        label = f"s={row['s']}"
        left_series.setdefault(label, []).append(
            (row["epsilon"], row["mean_parallel_time"]))
        right_series.setdefault(label, []).append(
            (row["s_times_epsilon"], row["mean_parallel_time"]))
    print()
    print(ascii_chart(left_series,
                      title="Figure 4 (left): time vs eps, per s",
                      x_label="eps", y_label="time"))
    print()
    print(ascii_chart(right_series,
                      title="Figure 4 (right): time vs s*eps "
                            "(curves collapse)",
                      x_label="s*eps", y_label="time"))
    path = write_csv(f"{output_dir}/figure4_{scale.name}.csv", rows)
    print(f"\nwrote {path}")
    print(finish_sweep(orchestrator))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
