"""Interaction-graph builders.

Thin wrappers around ``networkx`` generators that (a) label nodes
``0..n-1`` as the :class:`~repro.sim.schedule.GraphPairSampler`
expects, (b) validate connectivity up front, and (c) cover the
topologies discussed in the population-protocols literature: the
clique (the paper's setting), rings/paths/stars (extremal spectral
gaps in [DV12]), random regular graphs and Erdos-Renyi graphs (typical
expanders), and 2-D grids (spatially embedded sensor deployments).
"""

from __future__ import annotations

import networkx as nx

from ..errors import InvalidParameterError
from ..rng import ensure_rng

__all__ = [
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "grid_graph",
    "random_regular_graph",
    "erdos_renyi_graph",
]


def _check_n(n: int, minimum: int = 2) -> None:
    if n < minimum:
        raise InvalidParameterError(
            f"graph needs at least {minimum} nodes, got {n}")


def complete_graph(n: int) -> nx.Graph:
    """The clique on ``n`` nodes (the paper's interaction model)."""
    _check_n(n)
    return nx.complete_graph(n)


def cycle_graph(n: int) -> nx.Graph:
    """A ring — the slowest-mixing connected topology per node count."""
    _check_n(n, minimum=3)
    return nx.cycle_graph(n)


def path_graph(n: int) -> nx.Graph:
    """A path."""
    _check_n(n)
    return nx.path_graph(n)


def star_graph(n: int) -> nx.Graph:
    """A star with one hub and ``n - 1`` leaves."""
    _check_n(n)
    return nx.star_graph(n - 1)


def grid_graph(rows: int, columns: int, *, periodic: bool = False) -> nx.Graph:
    """A 2-D grid (torus when ``periodic``), nodes relabelled to ints."""
    if rows < 1 or columns < 1 or rows * columns < 2:
        raise InvalidParameterError(
            f"grid needs >= 2 nodes, got {rows}x{columns}")
    graph = nx.grid_2d_graph(rows, columns, periodic=periodic)
    return nx.convert_node_labels_to_integers(graph)


def random_regular_graph(n: int, degree: int, *, rng=None) -> nx.Graph:
    """A uniformly random connected ``degree``-regular graph.

    Resamples until connected (a.s. immediate for ``degree >= 3``).
    """
    _check_n(n)
    if degree < 1 or degree >= n or (n * degree) % 2:
        raise InvalidParameterError(
            f"no {degree}-regular graph on {n} nodes exists")
    generator = ensure_rng(rng)
    for _ in range(100):
        seed = int(generator.integers(0, 2**31 - 1))
        graph = nx.random_regular_graph(degree, n, seed=seed)
        if nx.is_connected(graph):
            return graph
    raise InvalidParameterError(
        f"could not sample a connected {degree}-regular graph on {n} nodes")


def erdos_renyi_graph(n: int, probability: float, *, rng=None) -> nx.Graph:
    """A connected G(n, p) sample (resampled until connected).

    Choose ``probability`` comfortably above ``ln(n)/n`` or expect the
    resampling loop to fail.
    """
    _check_n(n)
    if not 0.0 < probability <= 1.0:
        raise InvalidParameterError(
            f"edge probability must be in (0, 1], got {probability}")
    generator = ensure_rng(rng)
    for _ in range(100):
        seed = int(generator.integers(0, 2**31 - 1))
        graph = nx.erdos_renyi_graph(n, probability, seed=seed)
        if nx.is_connected(graph):
            return graph
    raise InvalidParameterError(
        f"G({n}, {probability}) samples kept coming out disconnected; "
        "increase the edge probability")
