"""Interaction-graph builders for non-clique experiments."""

from .builders import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    random_regular_graph,
    star_graph,
)

__all__ = [
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "grid_graph",
    "random_regular_graph",
    "erdos_renyi_graph",
]
