"""Information-propagation experiment for Theorem C.1.

The ``Omega(log n)`` lower bound tracks the set ``K_t`` of agents that
may "know" the initial value of a decisive 3-agent seed set ``T``:
``K_0 = T`` and an interaction adds both endpoints when exactly one of
them is already in ``K_t``.  The theorem follows because (a) with
probability ``1 - O(1/log^2 n)`` it takes more than ``alpha * n log n``
interactions for ``K_t`` to cover everyone, and (b) an agent with no
causal path from ``T`` guesses the output at best with probability
1/2.

Because only ``|K_t|`` matters, the growth is a pure-jump chain on
``k = |K_t|``: the probability an interaction grows the set is
``p_k = 2 k (n - k) / (n (n - 1))``, so the time to grow is geometric
with that parameter.  This module samples the chain directly (O(n)
per run), computes the exact expectation in closed form, and exposes
the two as the ``thm-c1`` experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidParameterError
from ..rng import ensure_rng

__all__ = [
    "propagation_probability",
    "expected_propagation_steps",
    "simulate_propagation",
    "PropagationTrial",
]


def propagation_probability(n: int, k: int) -> float:
    """Probability one interaction grows ``|K_t|`` from ``k``."""
    if not 0 < k <= n:
        raise InvalidParameterError(f"need 0 < k <= n, got k={k}, n={n}")
    return 2.0 * k * (n - k) / (n * (n - 1))


def expected_propagation_steps(n: int, seed_size: int = 3) -> float:
    """Exact expected interactions until ``K_t`` covers all agents.

    ``sum_{k=seed}^{n-1} n(n-1) / (2 k (n-k))``, which is
    ``Theta(n log n)`` interactions, i.e. ``Theta(log n)`` parallel
    time (this is Claim C.2's expectation, computed exactly).
    """
    _check_parameters(n, seed_size)
    total_pairs = n * (n - 1)
    return sum(total_pairs / (2.0 * k * (n - k))
               for k in range(seed_size, n))


@dataclass(frozen=True, slots=True)
class PropagationTrial:
    """One sampled propagation run."""

    n: int
    seed_size: int
    steps: int

    @property
    def parallel_time(self) -> float:
        return self.steps / self.n


def simulate_propagation(n: int, *, seed_size: int = 3,
                         rng=None) -> PropagationTrial:
    """Sample the number of interactions until full coverage.

    Uses the geometric-jump representation: from ``k`` known agents,
    the wait until the next growth event is geometric with parameter
    ``p_k``, and each growth adds exactly one agent.
    """
    _check_parameters(n, seed_size)
    generator = ensure_rng(rng)
    steps = 0
    for k in range(seed_size, n):
        probability = propagation_probability(n, k)
        steps += int(generator.geometric(probability))
    return PropagationTrial(n=n, seed_size=seed_size, steps=steps)


def _check_parameters(n: int, seed_size: int) -> None:
    if n < 2:
        raise InvalidParameterError(f"n must be >= 2, got {n}")
    if not 0 < seed_size <= n:
        raise InvalidParameterError(
            f"seed_size must be in [1, n], got {seed_size}")
