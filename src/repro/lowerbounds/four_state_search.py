"""Computational census of four-state majority protocols (Theorem B.1).

The paper proves by hand that every *correct* four-state exact-majority
protocol conserves the difference between the two input-state counts
(the discrepancy invariant of Claim B.8), which forces ``Omega(1/eps)``
expected parallel convergence time.  This module automates the case
analysis:

1. **Enumerate** candidate protocols.  States are ``S0, S1, X, Y`` with
   ``gamma(S0) = 0`` and ``gamma(S1) = 1`` forced (required for
   correctness on a one-agent population), and ``gamma(X), gamma(Y)``
   free.  A candidate assigns an unordered outcome pair to each of the
   six unordered pairs of distinct states — ``10^6`` rule sets per
   output assignment.  Interactions between two agents *in the same
   state* are fixed to no-ops: for unordered configurations a
   same-state swap is literally the identity, and Claim B.5 of the
   paper shows correct protocols admit no other behaviour, so no
   correct protocol is excluded (incorrect protocols outside this
   subfamily are eliminated by the paper's Claim B.5 argument rather
   than by this census).
2. **Machine-check** the paper's three correctness properties on small
   populations by exhaustive configuration-space search: absorbing
   output sets are greatest fixpoints, "never wrong" is emptiness of
   the reachable wrong-output fixpoint, "always able to converge" is
   reverse reachability covering the reachable set.
3. **Classify** the survivors: every one must carry the discrepancy
   invariant (Claim B.8) and none may carry a conserved potential
   (Claim B.9) — which together yield the ``Omega(1/eps)`` bound.

``run_census`` with the default sizes reproduces the theorem's
conclusion; the experiment CLI (``python -m repro four-state-census``)
prints the summary table.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from itertools import combinations_with_replacement, product

from ..errors import InvalidParameterError
from ..protocols.table import MajorityTableProtocol
from .invariants import S0, S1, X, Y, conserved_potential, \
    has_discrepancy_invariant

__all__ = [
    "Candidate",
    "CensusResult",
    "enumerate_rule_sets",
    "check_candidate",
    "run_census",
    "paper_four_state_candidate",
    "STATE_NAMES",
]

STATE_NAMES = ("S0", "S1", "X", "Y")

#: The six unordered pairs of distinct states a candidate must define.
DISTINCT_PAIRS = tuple(combinations_with_replacement(range(4), 2))
DISTINCT_PAIRS = tuple(p for p in DISTINCT_PAIRS if p[0] != p[1])

#: The ten possible unordered outcome pairs.
OUTCOMES = tuple(combinations_with_replacement(range(4), 2))


@dataclass(frozen=True, slots=True)
class Candidate:
    """One four-state protocol candidate.

    ``rules`` maps each of the six distinct unordered pairs to an
    unordered outcome (no-op rules may be omitted); ``gamma_x`` /
    ``gamma_y`` are the outputs of states X and Y.
    """

    rules: tuple
    gamma_x: int
    gamma_y: int

    @property
    def rule_dict(self) -> dict:
        return {pair: outcome for pair, outcome in self.rules
                if pair != outcome}

    @property
    def outputs(self) -> tuple[int, int, int, int]:
        return (0, 1, self.gamma_x, self.gamma_y)

    def describe(self) -> str:
        """Human-readable rule list, e.g. ``S0+S1->X+Y``."""
        parts = []
        for (a, b), (c, d) in sorted(self.rule_dict.items()):
            parts.append(f"{STATE_NAMES[a]}+{STATE_NAMES[b]}->"
                         f"{STATE_NAMES[c]}+{STATE_NAMES[d]}")
        gamma = (f"gamma(X)={self.gamma_x},gamma(Y)={self.gamma_y}")
        return "; ".join(parts) + f" [{gamma}]"

    def to_protocol(self) -> MajorityTableProtocol:
        """Wrap the candidate so simulation engines can run it.

        Input A starts in ``S1`` (the output-1 state), input B in
        ``S0``, matching the library's output convention.
        """
        transitions = {
            (STATE_NAMES[a], STATE_NAMES[b]):
                (STATE_NAMES[c], STATE_NAMES[d])
            for (a, b), (c, d) in self.rule_dict.items()
        }
        outputs = dict(zip(STATE_NAMES, self.outputs))
        return MajorityTableProtocol(
            STATE_NAMES, transitions, outputs,
            input_a="S1", input_b="S0",
            name=f"census[{self.describe()}]")


def enumerate_rule_sets() -> Iterator[tuple]:
    """All ``10^6`` assignments of outcomes to the six distinct pairs."""
    for outcomes in product(OUTCOMES, repeat=len(DISTINCT_PAIRS)):
        yield tuple(zip(DISTINCT_PAIRS, outcomes))


def _successor_cache(rules: dict):
    """Precompute, per unordered pair, the count-delta it induces."""
    deltas = {}
    for pair, outcome in rules.items():
        if pair == outcome:
            continue
        delta = [0, 0, 0, 0]
        delta[pair[0]] -= 1
        delta[pair[1]] -= 1
        delta[outcome[0]] += 1
        delta[outcome[1]] += 1
        deltas[pair] = tuple(delta)
    return deltas


def _check_scenario(deltas: dict, outputs, n: int, count_s0: int) -> bool:
    """Check properties 2 and 3 for one initial split (S0^a, S1^b)."""
    majority = 0 if 2 * count_s0 > n else 1
    start = (count_s0, n - count_s0, 0, 0)

    # Reachable configurations and their (state-changing) successors.
    reach: set = {start}
    succs: dict = {}
    frontier = [start]
    while frontier:
        next_frontier = []
        for config in frontier:
            targets = []
            for (i, j), delta in deltas.items():
                if i == j:
                    if config[i] < 2:
                        continue
                elif not (config[i] and config[j]):
                    continue
                target = (config[0] + delta[0], config[1] + delta[1],
                          config[2] + delta[2], config[3] + delta[3])
                targets.append(target)
                if target not in reach:
                    reach.add(target)
                    next_frontier.append(target)
            succs[config] = targets
        frontier = next_frontier

    # Output-unanimous configurations, per output value.
    unanimous: dict[int, set] = {0: set(), 1: set()}
    for config in reach:
        seen = None
        for state in range(4):
            if config[state]:
                value = outputs[state]
                if seen is None:
                    seen = value
                elif seen != value:
                    seen = -1
                    break
        if seen in (0, 1):
            unanimous[seen].add(config)

    # Greatest fixpoints: absorbing-for-output sets C_i within reach.
    for value in (0, 1):
        absorbing = unanimous[value]
        changed = True
        while changed:
            changed = False
            for config in list(absorbing):
                for target in succs[config]:
                    if target not in absorbing:
                        absorbing.discard(config)
                        changed = True
                        break

    # Property 2: no reachable wrong-output absorbing configuration.
    if unanimous[1 - majority]:
        return False
    # Property 3: every reachable configuration can reach C_majority.
    goal = unanimous[majority]
    if not goal:
        return False
    good = set(goal)
    changed = True
    while changed:
        changed = False
        for config in reach:
            if config in good:
                continue
            for target in succs[config]:
                if target in good:
                    good.add(config)
                    changed = True
                    break
    return len(good) == len(reach)


def check_candidate(candidate: Candidate,
                    sizes: Sequence[int] = (3, 5)) -> bool:
    """Whether the candidate passes the paper's correctness properties
    on every non-tied input split of each population size."""
    deltas = _successor_cache(candidate.rule_dict)
    outputs = candidate.outputs
    for n in sizes:
        if n < 2:
            raise InvalidParameterError(f"census sizes must be >= 2: {n}")
        for count_s0 in range(n + 1):
            if 2 * count_s0 == n:
                continue
            if not _check_scenario(deltas, outputs, n, count_s0):
                return False
    return True


@dataclass(frozen=True, slots=True)
class CensusResult:
    """Outcome of a census sweep."""

    num_checked: int
    survivors: tuple[Candidate, ...]
    sizes: tuple[int, ...]

    @property
    def num_survivors(self) -> int:
        return len(self.survivors)

    @property
    def all_survivors_slow(self) -> bool:
        """Theorem B.1's conclusion: every surviving (correct)
        candidate carries the discrepancy invariant, hence converges in
        ``Omega(1/eps)`` parallel time (Claim B.8)."""
        return all(has_discrepancy_invariant(c.rule_dict)
                   for c in self.survivors)

    @property
    def no_survivor_has_conserved_potential(self) -> bool:
        """Claim B.9 sanity check: a conserved potential would make a
        candidate incorrect, so no survivor may carry one."""
        return all(conserved_potential(c.rule_dict) is None
                   for c in self.survivors)


def run_census(*, sizes: Sequence[int] = (3, 5),
               gammas: Iterable[tuple[int, int]] = ((0, 1), (1, 0),
                                                    (0, 0), (1, 1)),
               rule_sets: Iterable[tuple] | None = None,
               limit: int | None = None,
               progress=None) -> CensusResult:
    """Sweep candidates and collect the correct ones.

    Parameters
    ----------
    sizes:
        Population sizes to machine-check; (3, 5) already eliminates
        the overwhelming majority of incorrect candidates, (3, 5, 7, 9)
        matches the constructions used in the paper's proof.
    gammas:
        Output assignments ``(gamma(X), gamma(Y))`` to sweep.
    rule_sets:
        Iterable of rule sets (defaults to the full enumeration).
    limit:
        Stop after this many candidates (for sampled sweeps).
    progress:
        Optional callable invoked as ``progress(num_checked)`` every
        50_000 candidates.
    """
    survivors = []
    num_checked = 0
    gammas = tuple(gammas)
    base_rule_sets = (tuple(enumerate_rule_sets())
                      if rule_sets is None else tuple(rule_sets))
    for rules in base_rule_sets:
        for gamma_x, gamma_y in gammas:
            if limit is not None and num_checked >= limit:
                return CensusResult(num_checked, tuple(survivors),
                                    tuple(sizes))
            candidate = Candidate(rules=rules, gamma_x=gamma_x,
                                  gamma_y=gamma_y)
            num_checked += 1
            if progress is not None and num_checked % 50_000 == 0:
                progress(num_checked)
            if check_candidate(candidate, sizes):
                survivors.append(candidate)
    return CensusResult(num_checked, tuple(survivors), tuple(sizes))


def paper_four_state_candidate() -> Candidate:
    """The known-correct protocol (Case 1.1 of the paper's analysis).

    ``[S0,S1] -> [X,Y]``, ``[S1,X] -> [S1,Y]``, ``[S0,Y] -> [S0,X]``
    with ``gamma(X) = 0, gamma(Y) = 1``: exactly the four-state
    protocol of [DV12, MNRS14] with S1/Y positive and S0/X negative.
    """
    rules = {
        (S0, S1): (X, Y),
        (S1, X): (S1, Y),
        (S0, Y): (S0, X),
    }
    full = tuple((pair, rules.get(pair, pair)) for pair in DISTINCT_PAIRS)
    return Candidate(rules=full, gamma_x=0, gamma_y=1)
