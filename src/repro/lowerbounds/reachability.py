"""Configuration-space reachability for small populations.

The lower-bound arguments of Section 5 reason about *adversarial*
schedules: what configurations can be reached under *some* sequence of
interactions.  For small ``n`` this is a plain graph search over count
vectors.  These utilities power the four-state census and double as a
brute-force oracle for validating each protocol's ``is_settled``
predicate.
"""

from __future__ import annotations

from ..errors import InvalidParameterError
from ..protocols.base import PopulationProtocol, UNDECIDED

__all__ = [
    "successors",
    "reachable_configurations",
    "is_absorbing_for_output",
    "brute_force_is_settled",
]


def successors(protocol: PopulationProtocol,
               config: tuple[int, ...]) -> set[tuple[int, ...]]:
    """All configurations reachable in one (state-changing) interaction."""
    result: set[tuple[int, ...]] = set()
    occupied = [i for i, c in enumerate(config) if c]
    for i in occupied:
        for j in occupied:
            if i == j and config[i] < 2:
                continue
            new_i, new_j = protocol.transition_index(i, j)
            if (new_i, new_j) == (i, j):
                continue
            mutable = list(config)
            mutable[i] -= 1
            mutable[j] -= 1
            mutable[new_i] += 1
            mutable[new_j] += 1
            result.add(tuple(mutable))
    return result


def reachable_configurations(protocol: PopulationProtocol,
                             initial, *,
                             limit: int = 1_000_000
                             ) -> set[tuple[int, ...]]:
    """The full reachable set from ``initial`` (counts mapping or tuple)."""
    if isinstance(initial, tuple):
        start = initial
    else:
        start = tuple(int(c) for c in protocol.counts_to_vector(initial))
    if sum(start) < 2:
        raise InvalidParameterError("need at least 2 agents")
    seen = {start}
    frontier = [start]
    while frontier:
        next_frontier = []
        for config in frontier:
            for target in successors(protocol, config):
                if target not in seen:
                    if len(seen) >= limit:
                        raise InvalidParameterError(
                            f"reachable set exceeds limit={limit}")
                    seen.add(target)
                    next_frontier.append(target)
        frontier = next_frontier
    return seen


def _unanimous_output(protocol: PopulationProtocol, config) -> object:
    """The common output of a config, or ``UNDECIDED`` on disagreement."""
    states = protocol.states
    seen = UNDECIDED
    for index, count in enumerate(config):
        if not count:
            continue
        value = protocol.output(states[index])
        if value is UNDECIDED:
            return UNDECIDED
        if seen is UNDECIDED:
            seen = value
        elif value != seen:
            return UNDECIDED
    return seen


def is_absorbing_for_output(protocol: PopulationProtocol, config,
                            output) -> bool:
    """Whether every configuration reachable from ``config`` shows
    exactly ``output`` on every agent (the paper's ``C_i`` sets)."""
    for reached in reachable_configurations(protocol, config):
        if _unanimous_output(protocol, reached) != output:
            return False
    return True


def brute_force_is_settled(protocol: PopulationProtocol, counts) -> bool:
    """Ground-truth *majority-style* settledness by reachability.

    A configuration is settled iff it has a unanimous defined output
    and so does every reachable configuration, with the same value.
    Exponentially more expensive than ``protocol.is_settled`` — used
    only to validate the fast predicates on small systems.
    """
    start = tuple(int(c) for c in protocol.counts_to_vector(counts))
    target = _unanimous_output(protocol, start)
    if target is UNDECIDED:
        return False
    return is_absorbing_for_output(protocol, start, target)


def brute_force_output_stable(protocol: PopulationProtocol,
                              counts) -> bool:
    """Ground truth for the general settledness notion: every agent's
    output is fixed forever.

    Checked as: in every reachable configuration, every applicable
    interaction preserves both participants' outputs agent-wise.
    (This is what non-unanimity protocols like leader election mean by
    settled: the one leader stays the leader, every follower stays a
    follower.)  Undefined (``UNDECIDED``) outputs never count as
    stable.
    """
    states = protocol.states
    start = tuple(int(c) for c in protocol.counts_to_vector(counts))
    for index, count in enumerate(start):
        if count and protocol.output(states[index]) is UNDECIDED:
            return False
    for config in reachable_configurations(protocol, start):
        occupied = [i for i, c in enumerate(config) if c]
        for i in occupied:
            for j in occupied:
                if i == j and config[i] < 2:
                    continue
                new_i, new_j = protocol.transition_index(i, j)
                if protocol.output(states[new_i]) \
                        != protocol.output(states[i]):
                    return False
                if protocol.output(states[new_j]) \
                        != protocol.output(states[j]):
                    return False
    return True
