"""Computational reproductions of the paper's lower bounds.

* :mod:`repro.lowerbounds.four_state_search` — the four-state census
  (Theorem B.1): enumerate candidate protocols, machine-check the
  correctness properties by configuration-space reachability, verify
  the survivors carry the discrepancy invariant forcing
  ``Omega(1/eps)``.
* :mod:`repro.lowerbounds.info_propagation` — the ``K_t`` growth
  experiment behind the ``Omega(log n)`` bound (Theorem C.1).
* :mod:`repro.lowerbounds.reachability` — adversarial-schedule
  reachability utilities shared by both and by the test suite.
"""

from .four_state_search import (
    Candidate,
    CensusResult,
    check_candidate,
    enumerate_rule_sets,
    paper_four_state_candidate,
    run_census,
)
from .info_propagation import (
    PropagationTrial,
    expected_propagation_steps,
    propagation_probability,
    simulate_propagation,
)
from .invariants import conserved_potential, has_discrepancy_invariant
from .reachability import (
    brute_force_is_settled,
    brute_force_output_stable,
    is_absorbing_for_output,
    reachable_configurations,
    successors,
)

__all__ = [
    "Candidate",
    "CensusResult",
    "check_candidate",
    "enumerate_rule_sets",
    "run_census",
    "paper_four_state_candidate",
    "has_discrepancy_invariant",
    "conserved_potential",
    "PropagationTrial",
    "propagation_probability",
    "expected_propagation_steps",
    "simulate_propagation",
    "successors",
    "reachable_configurations",
    "is_absorbing_for_output",
    "brute_force_is_settled",
    "brute_force_output_stable",
]
