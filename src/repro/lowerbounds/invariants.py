"""Structural invariants of four-state protocols (Claims B.8 / B.9).

The paper's case analysis sorts candidate four-state protocols into
three bins:

* protocols carrying the **discrepancy invariant** (Claim B.8): the
  difference between the counts of the two input states never changes;
  such protocols are *correct but slow* — the last minority-input agent
  can only be cleared by meeting one of the ``eps*n + 1`` surplus
  agents, forcing ``Omega(1/eps)`` expected parallel time;
* protocols carrying a **conserved potential** (Claim B.9): an
  assignment of ``{-3, -1, 1, 3}`` to the four states (with the two
  0-output states positive) whose sum is preserved by every
  interaction; such protocols can never converge from suitable inputs
  and are *incorrect*;
* everything else — eliminated by explicit reachability
  counterexamples (which is what the census automates).

This module tests both invariants mechanically for candidates in the
census representation (see :mod:`repro.lowerbounds.four_state_search`):
states are the integers ``S0 = 0``, ``S1 = 1``, ``X = 2``, ``Y = 3``
and a rule set maps unordered state pairs to unordered state pairs.
"""

from __future__ import annotations

from itertools import permutations

__all__ = [
    "has_discrepancy_invariant",
    "conserved_potential",
    "S0",
    "S1",
    "X",
    "Y",
]

S0, S1, X, Y = 0, 1, 2, 3


def _pair_count(pair: tuple[int, int], state: int) -> int:
    return (pair[0] == state) + (pair[1] == state)


def has_discrepancy_invariant(rules: dict) -> bool:
    """Claim B.8's hypothesis: ``#S0 - #S1`` is conserved by every rule.

    ``rules`` maps unordered (sorted-tuple) state pairs to unordered
    outcome pairs; unlisted pairs are no-ops (trivially conserving).
    """
    for before, after in rules.items():
        balance_before = _pair_count(before, S0) - _pair_count(before, S1)
        balance_after = _pair_count(after, S0) - _pair_count(after, S1)
        if balance_before != balance_after:
            return False
    return True


def conserved_potential(rules: dict) -> dict | None:
    """Claim B.9's hypothesis: a conserved ``{-3,-1,1,3}`` potential.

    Searches the assignments giving ``S0`` and ``X`` the positive
    potentials (as the claim requires) and returns the first assignment
    conserved by every rule, or ``None``.  A protocol admitting such a
    potential violates the always-convergeable property and is
    incorrect (Claim B.9).
    """
    for positive in permutations((1, 3)):
        for negative in permutations((-1, -3)):
            potential = {S0: positive[0], X: positive[1],
                         S1: negative[0], Y: negative[1]}
            if all(potential[a] + potential[b] == potential[c] + potential[d]
                   for (a, b), (c, d) in rules.items()):
                return potential
    return None
