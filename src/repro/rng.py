"""Reproducible random-number plumbing.

All stochastic code in the library draws from a
:class:`numpy.random.Generator`.  This module centralizes how those
generators are created so that

* every experiment is reproducible from one root seed,
* independent trials get *statistically independent* streams (via
  :class:`numpy.random.SeedSequence` spawning, not ad-hoc arithmetic on
  seed integers), and
* functions can accept ``rng=None`` / an ``int`` / a ``Generator``
  uniformly through :func:`ensure_rng`.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["ensure_rng", "spawn", "spawn_many", "stream"]

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def ensure_rng(rng: int | np.random.Generator | np.random.SeedSequence | None = None,
               ) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh OS-entropy generator; an ``int`` or a
    :class:`~numpy.random.SeedSequence` seeds a new PCG64 generator; an
    existing generator is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot build a Generator from {type(rng).__name__}")


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``count`` independent child generators off ``rng``.

    Uses the generator's bit-generator ``SeedSequence`` spawning, which
    guarantees non-overlapping streams.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    seed_seq = rng.bit_generator.seed_seq
    return [np.random.default_rng(child) for child in seed_seq.spawn(count)]


def spawn_many(root_seed: int, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators from a single root seed."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    children = np.random.SeedSequence(root_seed).spawn(count)
    return [np.random.default_rng(child) for child in children]


def stream(root_seed: int) -> Iterator[np.random.Generator]:
    """Yield an unbounded sequence of independent generators.

    Handy for experiments that do not know the trial count up front::

        gens = stream(42)
        rng_for_trial_0 = next(gens)
    """
    seq = np.random.SeedSequence(root_seed)
    index = 0
    while True:
        # spawn() advances the SeedSequence's internal spawn key, so
        # each call yields a distinct, independent child.
        (child,) = seq.spawn(1)
        yield np.random.default_rng(child)
        index += 1
