"""Round-based synchronous message-passing consensus.

The population-protocol engines model anonymous agents meeting
pairwise; this subpackage models the *other* classical distributed
computing arena the byzantine literature lives in: ``n`` named
servers proceeding in synchronous rounds, each round broadcasting a
value and collecting everyone else's, with up to ``f`` byzantine
servers sending adversary-controlled values.

* :mod:`repro.consensus.algorithms` — the protocol layer: a
  :class:`ConsensusProtocol` base (a ``MajorityProtocol`` flagged
  ``is_round_based``) plus two exemplar algorithms, Ben-Or's
  randomized binary consensus and a deterministic epsilon-agreement
  averaging algorithm.
* :mod:`repro.consensus.rounds` — the :class:`RoundsEngine` driving
  whole rounds instead of pairwise interactions, registered in the
  engine registry as ``"rounds"`` (the ``"auto"`` policy routes
  round-based protocols there).

Both algorithms are addressable through :class:`~repro.sim.run.RunSpec`
by registry name (``"ben-or"``, ``"epsilon-agreement"``), serialize
over the HTTP wire form, and cache/resume through the run store like
any population protocol.
"""

from .algorithms import (
    BenOrConsensus,
    ConsensusProtocol,
    EpsilonAgreementConsensus,
    RoundsOutcome,
)
from .rounds import DEFAULT_MAX_ROUNDS, RoundsEngine

__all__ = [
    "ConsensusProtocol",
    "BenOrConsensus",
    "EpsilonAgreementConsensus",
    "RoundsOutcome",
    "RoundsEngine",
    "DEFAULT_MAX_ROUNDS",
]
