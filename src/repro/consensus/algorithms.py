"""Round-based consensus algorithms over binary inputs.

The model: ``n`` servers, of which ``f`` are byzantine, proceed in
synchronous rounds.  Every round each server broadcasts a value and
receives all ``n`` broadcasts (its own included); honest servers then
apply the algorithm's round update.  Byzantine servers send
adversary-controlled values and never update honestly.  Two adversary
modes mirror :class:`repro.FaultSpec`'s byzantine modes:

* ``"stubborn"`` — every byzantine server sends the fixed minority
  input value to every recipient, every round;
* ``"adaptive"`` — the adversary reads the live honest state each
  round and picks the most damaging value, per recipient where the
  algorithm makes that meaningful (equivocation).

The adversary also chooses *which* servers to corrupt: majority-input
servers first, weakening the initial margin maximally.

Both algorithms expose the same entry point,
:meth:`ConsensusProtocol.simulate_rounds`, consumed by
:class:`repro.consensus.rounds.RoundsEngine`.  The pairwise
``transition`` inherited from :class:`PopulationProtocol` is the
identity — round-based protocols have no pairwise dynamics — and the
engine registry refuses to run them on population engines (the
``"auto"`` policy routes them to ``"rounds"``).

References: Ben-Or's free-choice protocol (PODC 1983) for the
randomized binary consensus, and the Dolev–Lynch–Pinter–Stark–Weihl
approximate agreement scheme (JACM 1986) for the trimmed-averaging
epsilon-agreement algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InvalidParameterError
from ..protocols.base import (
    MAJORITY_A,
    MAJORITY_B,
    MajorityProtocol,
    State,
)

__all__ = [
    "ConsensusProtocol",
    "BenOrConsensus",
    "EpsilonAgreementConsensus",
    "RoundsOutcome",
]

_STATES = ("A", "B")


@dataclass(frozen=True)
class RoundsOutcome:
    """What one round-based execution produced.

    ``rounds`` is the number of completed rounds; ``settled`` means all
    honest servers terminated in agreement; ``decision`` maps the
    agreed value onto the majority outputs (``1`` for A / value 1,
    ``0`` for B / value 0, ``None`` when unsettled or exactly
    balanced).  ``final_counts`` buckets all ``n`` servers (byzantine
    ones at their last presented value) into the two input states.
    ``lies`` counts lying messages delivered to honest servers;
    ``broadcasts`` counts the broadcast phases executed.
    """

    rounds: int
    settled: bool
    decision: int | None
    final_counts: dict
    lies: int
    broadcasts: int


class ConsensusProtocol(MajorityProtocol):
    """Base class for round-based message-passing consensus protocols.

    Binary inputs ride the standard majority-input forms (``n`` +
    ``epsilon``, or explicit ``count_a`` / ``count_b``): input A is
    value 1, input B is value 0, and the goal decision is the majority
    input value.  Subclasses implement :meth:`simulate_rounds`.
    """

    #: Routed to the rounds engine by the ``"auto"`` policy; population
    #: engines reject round-based protocols at creation.
    is_round_based = True
    unanimity_settles = False

    def enumerate_states(self):
        return _STATES

    def initial_state(self, symbol: str) -> State:
        if symbol in _STATES:
            return symbol
        raise ValueError(f"unknown input symbol {symbol!r}")

    def transition(self, x: State, y: State) -> tuple[State, State]:
        # Round-based protocols have no pairwise dynamics; the identity
        # keeps the PopulationProtocol interface total.
        return x, y

    def output(self, state: State):
        return MAJORITY_A if state == "A" else MAJORITY_B

    def is_settled(self, counts) -> bool:
        a = counts.get("A", 0)
        b = counts.get("B", 0)
        return (a == 0) != (b == 0)

    # ------------------------------------------------------------------
    # The round-based contract
    # ------------------------------------------------------------------

    def simulate_rounds(self, count_a: int, count_b: int, *, f: int,
                        mode: str, expected: int | None, rng,
                        max_rounds: int) -> RoundsOutcome:
        """Run one execution: ``count_a + count_b`` servers, ``f`` byzantine.

        ``mode`` is ``"stubborn"`` or ``"adaptive"`` (ignored when
        ``f == 0``); ``expected`` is the majority outcome the stubborn
        lie is aimed against.  ``rng`` is a numpy ``Generator``;
        deterministic algorithms simply never draw from it.
        """
        raise NotImplementedError

    # Helpers shared by the concrete algorithms -------------------------

    @staticmethod
    def _corrupt(count_a: int, count_b: int, f: int,
                 expected: int | None) -> tuple[int, int]:
        """Honest ``(ones, zeros)`` after the adversary picks victims.

        The adversary corrupts majority-input servers first — the
        choice that weakens the initial margin most.  With no expected
        majority (a tie) it splits its budget evenly.
        """
        if expected == MAJORITY_A:
            take_a = min(f, count_a)
        elif expected == MAJORITY_B:
            take_a = f - min(f, count_b)
        else:
            take_a = min((f + 1) // 2, count_a)
        take_a = max(take_a, f - count_b)  # spill when one side runs dry
        take_b = f - take_a
        return count_a - take_a, count_b - take_b

    @staticmethod
    def _stubborn_lie(expected: int | None) -> int:
        """The fixed lie value: the minority input (B when expected is
        A or unknown — matching the population engines' fallback)."""
        return 1 if expected == MAJORITY_B else 0


class BenOrConsensus(ConsensusProtocol):
    """Ben-Or's randomized binary byzantine consensus (PODC 1983).

    Each round has two broadcast phases.  Phase 1: servers broadcast
    their current value; a server seeing some value ``v`` on strictly
    more than ``(n + f) / 2`` broadcasts *proposes* ``v``, otherwise
    proposes nothing.  Phase 2: servers broadcast proposals; on more
    than ``(n + f) / 2`` matching proposals a server *decides* ``v``,
    on more than ``f`` it adopts ``v``, and otherwise it flips an
    independent fair coin.  Byzantine servers broadcast the adversary
    value in both phases.  Agreement and termination hold with
    probability 1 when ``n > 3f``; the adaptive majority-flipper
    saturates that bound by always supporting the trailing value.

    Since every server receives every broadcast, honest servers share
    one view and the deterministic branches act in lockstep; only the
    coin flips are per-server.
    """

    name = "ben-or"

    def simulate_rounds(self, count_a, count_b, *, f, mode, expected,
                        rng, max_rounds):
        n = count_a + count_b
        ones, zeros = self._corrupt(count_a, count_b, f, expected)
        h = ones + zeros  # honest servers
        stubborn_lie = self._stubborn_lie(expected)
        threshold = (n + f) / 2.0

        x = np.zeros(h, dtype=np.int64)
        x[:ones] = 1
        rounds = 0
        lies = 0
        broadcasts = 0
        byz = stubborn_lie
        while rounds < max_rounds:
            rounds += 1
            ones_now = int(x.sum())
            if f:
                if mode == "adaptive":
                    # Support the trailing value to stall agreement.
                    if 2 * ones_now < h:
                        byz = 1
                    elif 2 * ones_now > h:
                        byz = 0
                    else:
                        byz = stubborn_lie
                lies += 2 * f * h
            broadcasts += 2
            # Phase 1: value counts, identical at every honest server.
            c1 = ones_now + (f if byz == 1 else 0)
            c0 = (h - ones_now) + (f if byz == 0 else 0)
            if c1 > threshold:
                proposal = 1
            elif c0 > threshold:
                proposal = 0
            else:
                proposal = None
            # Phase 2: proposal counts.
            p1 = (h if proposal == 1 else 0) + (f if byz == 1 else 0)
            p0 = (h if proposal == 0 else 0) + (f if byz == 0 else 0)
            if p1 > threshold or p0 > threshold:
                decision = 1 if p1 > threshold else 0
                return RoundsOutcome(
                    rounds=rounds, settled=True, decision=decision,
                    final_counts=self._buckets(h if decision else 0,
                                               h - (h if decision else 0),
                                               f, byz),
                    lies=lies, broadcasts=broadcasts)
            if p1 > f:
                x[:] = 1
            elif p0 > f:
                x[:] = 0
            else:
                x = (rng.random(h) < 0.5).astype(np.int64)
        ones_now = int(x.sum())
        return RoundsOutcome(
            rounds=rounds, settled=False, decision=None,
            final_counts=self._buckets(ones_now, h - ones_now, f, byz),
            lies=lies, broadcasts=broadcasts)

    @staticmethod
    def _buckets(ones, zeros, f, byz) -> dict:
        counts = {}
        a = ones + (f if byz == 1 else 0)
        b = zeros + (f if byz == 0 else 0)
        if a:
            counts["A"] = a
        if b:
            counts["B"] = b
        return counts


class EpsilonAgreementConsensus(ConsensusProtocol):
    """Deterministic approximate agreement by trimmed averaging.

    Servers hold reals in ``[0, 1]`` (input A starts at 1.0, B at
    0.0).  Each round every server broadcasts its value, sorts the
    ``n`` received values, discards the ``f`` lowest and ``f``
    highest, and adopts the mean of the rest — the JACM 1986
    approximate-agreement scheme with a mean in place of the midpoint,
    so the ``f = 0`` fixed point is the honest average and the decision
    threshold ``1/2`` recovers exact majority.  Honest servers
    terminate when their value spread is at most ``epsilon_agree``;
    the decision is the side of ``1/2`` the common value lies on.

    The stubborn adversary sends one fixed extreme to everyone — which
    trimming absorbs entirely.  The adaptive adversary *equivocates*:
    each recipient gets ``f`` copies of whichever extreme pushes it
    away from the honest median, the spread-maximizing choice.
    Convergence (halving per round) holds when ``n > 3f``.
    """

    name = "epsilon-agreement"

    def __init__(self, epsilon_agree: float = 0.05):
        if not 0.0 < epsilon_agree < 1.0:
            raise InvalidParameterError(
                f"epsilon_agree must be in (0, 1), got {epsilon_agree}")
        self.epsilon_agree = float(epsilon_agree)

    def simulate_rounds(self, count_a, count_b, *, f, mode, expected,
                        rng, max_rounds):
        n = count_a + count_b
        if 2 * f >= n:
            raise InvalidParameterError(
                f"epsilon-agreement trims 2f of the n received values "
                f"per round and requires n > 2f; got n={n}, f={f}")
        ones, zeros = self._corrupt(count_a, count_b, f, expected)
        h = ones + zeros
        stubborn_value = float(self._stubborn_lie(expected))
        eps = self.epsilon_agree

        x = np.zeros(h, dtype=np.float64)
        x[:ones] = 1.0
        rounds = 0
        lies = 0
        broadcasts = 0
        while float(x.max() - x.min()) > eps and rounds < max_rounds:
            rounds += 1
            broadcasts += 1
            lies += f * h
            sorted_honest = np.sort(x)
            if f == 0:
                x[:] = sorted_honest.mean()
                continue
            # With every byzantine server sending one extreme to a
            # given recipient, the trimmed multiset is a contiguous
            # slice of the sorted honest values: f byzantine zeros
            # displace the f highest honest values (and vice versa).
            pulled_down = float(sorted_honest[:h - f].mean())
            pulled_up = float(sorted_honest[f:].mean())
            if mode == "adaptive":
                # Equivocate: pull the lower half of the honest
                # ranking further down and the upper half further up —
                # the spread-maximizing per-recipient choice.
                order = np.argsort(x, kind="stable")
                low_half = np.zeros(h, dtype=bool)
                low_half[order[:h // 2]] = True
                x = np.where(low_half, pulled_down, pulled_up)
            else:
                x[:] = pulled_down if stubborn_value == 0.0 else pulled_up
        settled = float(x.max() - x.min()) <= eps
        value = float(x.mean())
        if not settled:
            decision = None
        elif value > 0.5:
            decision = 1
        elif value < 0.5:
            decision = 0
        else:
            decision = None  # exactly balanced
        near_one = int((x > 0.5).sum())
        byz_value = (stubborn_value if mode == "stubborn" or f == 0
                     else 1.0 - round(value))
        counts = {}
        a = near_one + (f if byz_value > 0.5 else 0)
        b = (h - near_one) + (f if byz_value <= 0.5 else 0)
        if a:
            counts["A"] = a
        if b:
            counts["B"] = b
        return RoundsOutcome(
            rounds=rounds, settled=settled, decision=decision,
            final_counts=counts, lies=lies, broadcasts=broadcasts)
