"""The rounds engine: synchronous message-passing on the RunSpec rails.

:class:`RoundsEngine` drives :class:`~repro.consensus.algorithms
.ConsensusProtocol` executions — ``n`` servers, ``f`` byzantine,
whole broadcast rounds per tick — through the exact same front door
as the population engines: build a :class:`~repro.sim.run.RunSpec`
(the majority input forms apply unchanged), attach a byzantine
:class:`repro.FaultSpec` for the corruption budget, and call
:func:`repro.simulate`.  Results come back as ordinary
:class:`~repro.sim.results.RunResult` values whose ``steps`` field
counts *rounds*, so the run store fingerprints, caches, and resumes
round-based batches with no special cases.

Differences from the population engines, all enforced loudly:

* the interaction budget is counted in rounds — ``max_steps`` is the
  round budget (default :data:`DEFAULT_MAX_ROUNDS`) and
  ``max_parallel_time`` is rejected;
* only the byzantine fault fields apply; population fault kinds
  (flips, churn, drops, one-way, schedulers) and interaction-indexed
  horizons are rejected;
* per-interaction instrumentation (recorders, event observers) does
  not exist in the rounds model and is rejected.
"""

from __future__ import annotations

import time
from collections.abc import Mapping

from ..errors import ConvergenceTimeout, InvalidParameterError
from ..faults import active_faults
from ..rng import ensure_rng
from ..sim.engine import Engine
from ..sim.results import RunResult
from ..telemetry.context import current as current_telemetry
from .algorithms import ConsensusProtocol

__all__ = ["RoundsEngine", "DEFAULT_MAX_ROUNDS"]

#: Default round budget.  Ben-Or's coin phase succeeds with
#: probability >= 2^-n per round in the worst case but in practice
#: breaks symmetry within tens of rounds at the populations simulated
#: here; 4096 rounds is far past any converging configuration.
DEFAULT_MAX_ROUNDS = 4096


class RoundsEngine(Engine):
    """Synchronous round-based execution of consensus protocols."""

    name = "rounds"
    supports_faults = True
    supports_byzantine = True

    def __init__(self, protocol):
        if not isinstance(protocol, ConsensusProtocol):
            raise InvalidParameterError(
                f"engine 'rounds' drives round-based consensus "
                f"protocols; {getattr(protocol, 'name', protocol)!r} "
                "is not one (see repro.consensus)")
        super().__init__(protocol)

    def run(self, initial_counts: Mapping, *, rng=None,
            max_steps: int | None = None,
            max_parallel_time: float | None = None,
            expected: int | None = None,
            recorder=None, event_observer=None, faults=None,
            on_timeout: str = "return") -> RunResult:
        """Run one execution; ``max_steps`` is the *round* budget."""
        if on_timeout not in ("return", "raise"):
            raise InvalidParameterError(
                f"on_timeout must be 'return' or 'raise', got "
                f"{on_timeout!r}")
        if recorder is not None or event_observer is not None:
            raise InvalidParameterError(
                "the rounds engine advances whole broadcast rounds; "
                "per-interaction recorders/observers do not apply")
        if max_parallel_time is not None:
            raise InvalidParameterError(
                "the rounds engine's budget is counted in rounds; "
                "give max_steps (rounds), not max_parallel_time")
        max_rounds = DEFAULT_MAX_ROUNDS if max_steps is None else max_steps
        if max_rounds <= 0:
            raise InvalidParameterError(
                f"max_steps must be positive, got {max_rounds}")

        protocol = self.protocol
        counts = {str(state): int(count)
                  for state, count in initial_counts.items() if count}
        unknown = sorted(set(counts) - {"A", "B"})
        if unknown:
            raise InvalidParameterError(
                f"unknown consensus input state(s) {unknown}; "
                "round-based protocols take binary inputs 'A'/'B'")
        count_a = counts.get("A", 0)
        count_b = counts.get("B", 0)
        n = count_a + count_b
        if n < 2:
            raise InvalidParameterError(
                f"population must have at least 2 agents, got {n}")

        f, mode = self._resolve_faults(faults, n)
        generator = ensure_rng(rng)
        telemetry = current_telemetry()
        started = time.perf_counter() if telemetry.enabled else 0.0

        outcome = protocol.simulate_rounds(
            count_a, count_b, f=f, mode=mode, expected=expected,
            rng=generator, max_rounds=max_rounds)

        events = None
        if f:
            events = {"byzantine_lies": outcome.lies,
                      "byzantine_meetings": f * outcome.broadcasts}
        if telemetry.enabled:
            self._emit_run_telemetry(
                telemetry, time.perf_counter() - started, n,
                outcome.rounds, None, outcome.settled)
            if events:
                labels = {"engine": self.name, "protocol": protocol.name}
                telemetry.count("fault.runs", **labels)
                for kind, count in events.items():
                    if count:
                        telemetry.count(f"fault.{kind}", count, **labels)
        result = RunResult(
            protocol_name=protocol.name,
            engine_name=self.name,
            n=n,
            steps=outcome.rounds,
            settled=outcome.settled,
            decision=outcome.decision,
            expected=expected,
            final_counts=dict(outcome.final_counts),
            productive_steps=None,
            continuous_time=None,
            frozen=False,
            fault_events=events,
        )
        if on_timeout == "raise" and not result.settled:
            raise ConvergenceTimeout(
                f"{protocol.name} did not reach agreement within "
                f"{max_rounds} rounds (n={n}, f={f})", result=result)
        return result

    @staticmethod
    def _resolve_faults(faults, n: int) -> tuple[int, str]:
        """Extract ``(byzantine_f, mode)``; reject population faults."""
        active = active_faults(faults)
        if active is None:
            return 0, "stubborn"
        rejected = [name for name, value in (
            ("flip_prob", active.flip_prob),
            ("crash_prob", active.crash_prob),
            ("join_prob", active.join_prob),
            ("drop_prob", active.drop_prob),
            ("oneway_prob", active.oneway_prob),
        ) if value]
        if active.scheduler is not None:
            rejected.append("scheduler")
        if rejected:
            raise InvalidParameterError(
                f"the rounds engine models byzantine servers only; "
                f"population fault field(s) {rejected} do not apply "
                "to the synchronous message-passing model")
        if active.horizon is not None:
            raise InvalidParameterError(
                "fault horizons are measured in interactions and do "
                "not apply to the rounds engine; omit horizon")
        if active.byzantine_f >= n:
            raise InvalidParameterError(
                f"byzantine_f={active.byzantine_f} must be smaller than "
                f"the population (n={n}); at least one honest agent is "
                "required")
        return active.byzantine_f, active.byzantine_mode

    def _simulate(self, counts, n, rng, max_steps, tracker, recorder):
        raise InvalidParameterError(
            "the rounds engine overrides run() and has no "
            "interaction-level loop")
