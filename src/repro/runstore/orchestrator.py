"""The resumable sweep driver.

:class:`Orchestrator` sits between the experiment modules and
:func:`repro.sim.run.run_trials`-style fan-out.  Each sweep point is
addressed by its :mod:`~repro.runstore.fingerprint`; the orchestrator

* serves committed points straight from the :class:`RunStore` (a warm
  cache re-invocation never enters a simulation engine),
* checkpoints in-flight points to the per-sweep journal at the
  deterministic :data:`~repro.sim.run.ENSEMBLE_CHUNK_TRIALS` trial
  boundaries, so ``--resume`` after a crash replays the completed
  chunks and recomputes only the rest,
* retries transient worker failures
  (:class:`~repro.errors.WorkerError` from
  :mod:`repro.sim.parallel`) with capped exponential backoff, and
* records wall-time/engine provenance per point in the store's
  ``meta`` — *outside* the result row, so cached, resumed, and freshly
  computed sweeps emit byte-identical CSVs.

Determinism contract: chunk boundaries and per-chunk generators are
derived exactly as the uninterrupted runners derive them (same
``SeedSequence`` spawning, same chunk plan), and fresh generators are
rebuilt from the spawned sequences on every attempt — so a resumed or
retried sweep is bit-identical to one that never failed.

Distributed mode (see :mod:`repro.runstore.distributed`): give the
orchestrator a :class:`~repro.runstore.distributed.LeaseManager` and a
``worker`` id and it becomes one of N cooperating sweep workers over
the same store — points are claimed via atomic per-fingerprint
leases, chunk checkpoints go to a per-worker journal (merged on read,
so a point half-computed by a crashed peer resumes from *its* chunks),
and ``defer=True`` turns a grid of point calls into a work queue:
each call returns a placeholder row immediately and :meth:`drain`
fills them all, largest-estimated-cost first, claiming unleased
points and back-filling peer-computed ones from the store.  The
result rows — and the CSVs built from them — are byte-identical to a
single-process sweep.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import JobInterrupted, WorkerError
from ..faults import active_faults
from ..rng import ensure_rng
from ..serialize import run_result_from_dict, run_result_to_dict
from ..sim.results import TrialStats
from ..sim.run import (
    RunSpec,
    ensemble_chunks,
    make_run_engine,
    raise_unsettled,
    resolve_trial_engine,
)
from ..telemetry.context import current as current_telemetry
from .distributed import LeaseLost
from .fingerprint import fingerprint, point_key, spec_key
from .journal import chunk_map
from .store import RunStore

__all__ = ["Orchestrator", "RETRYABLE_ERRORS"]

#: Failures worth retrying: the work is a pure function of its seed,
#: so a crashed worker pool just means "run that batch again".
RETRYABLE_ERRORS = (WorkerError,)

#: Row columns of a ``majority-point``, in the exact order
#: :meth:`Orchestrator.spec_point` emits them.  Deferred (work-queue)
#: points hand out a ``None``-valued skeleton in this order and fill
#: it in place on drain, so a distributed sweep's CSV columns — and
#: bytes — match a single-process run's.
MAJORITY_COLUMNS = (
    "protocol", "engine", "n", "epsilon", "trials",
    "settled_fraction", "mean_parallel_time", "std_parallel_time",
    "min_parallel_time", "max_parallel_time", "error_fraction",
)

#: Row columns of a ``robustness-point`` (same contract as above).
ROBUSTNESS_COLUMNS = (
    "protocol", "engine", "n", "epsilon", "fault_model", "trials",
    "settled_fraction", "mean_recovery_time", "std_recovery_time",
    "residual_error", "mean_parallel_time", "mean_fault_events",
)


class _Deferred:
    """One queued sweep point awaiting :meth:`Orchestrator.drain`."""

    __slots__ = ("fp", "label", "kind", "compute", "skeleton",
                 "cost_hint", "manifest")

    def __init__(self, fp, label, kind, compute, skeleton, cost_hint,
                 manifest=None):
        self.fp = fp
        self.label = label
        self.kind = kind
        self.compute = compute
        self.skeleton = skeleton
        self.cost_hint = cost_hint
        self.manifest = manifest


def _manifest_entry(spec: RunSpec, kind: str, **extra) -> dict | None:
    """The wire form a helper worker needs to recompute this point.

    ``None`` for specs that cannot cross a process boundary (engine
    instances, attached graphs/observers) — such points stay local to
    the process that queued them.
    """
    from ..serialize import spec_to_dict

    try:
        wire = spec_to_dict(spec)
    except Exception:
        return None
    entry = {"kind": kind, "spec": wire}
    entry.update(extra)
    return entry


def _cost_hint(spec: RunSpec) -> float:
    """Rough relative cost of a point, for longest-first claiming.

    Convergence needs ``Theta~(1 / (s * eps))`` parallel time
    (Theorem 4.1), i.e. ``~ n * trials / (s * eps)`` interactions.
    Only the *ordering* matters: draining the expensive points first
    keeps the last worker from being stuck alone with the biggest
    point while its peers idle (classic LPT scheduling).
    """
    try:
        n = spec.n
        if n is None:
            n = (spec.count_a or 0) + (spec.count_b or 0)
        epsilon = spec.epsilon or 1.0
        states = getattr(spec.protocol, "num_states", 2) or 2
        hint = n * spec.num_trials / max(epsilon * states, 1e-12)
        if spec.max_steps is not None:
            hint = min(hint, float(spec.max_steps) * spec.num_trials)
        return float(hint)
    except Exception:
        return 0.0


class Orchestrator:
    """Run sweep points through the cache/journal/retry machinery.

    Parameters
    ----------
    store:
        The :class:`RunStore` backing the sweep, or ``None`` for a
        purely in-memory pass (no caching, no journal — the rows are
        still computed identically, which is what keeps direct calls
        to the ``*_rows`` functions equivalent to orchestrated ones).
    sweep:
        Journal name for this sweep (e.g. ``"figure3_smoke"``).
        Without it no chunk checkpoints are written.
    resume:
        Replay the existing journal's completed chunks instead of
        starting the journal afresh.
    use_cache:
        Serve committed points from the store.  ``False`` forces full
        recomputation (results are still committed, overwriting).
    max_attempts / backoff_base / backoff_cap / sleep:
        Retry policy for :data:`RETRYABLE_ERRORS`: attempt ``k`` waits
        ``min(backoff_cap, backoff_base * 2**(k-1))`` seconds.
    progress:
        Optional callable receiving human-readable status lines.
    should_stop:
        Optional zero-argument callable polled between trial chunks;
        returning ``True`` raises :class:`~repro.errors.JobInterrupted`
        *after* every completed chunk has been journaled, so the point
        resumes from the checkpoint on the next attempt.  This is the
        simulation service's graceful-shutdown hook.
    leases:
        Optional :class:`~repro.runstore.distributed.LeaseManager`.
        With one attached, every uncached point is computed under its
        fingerprint lease: peers never simulate the same point twice,
        a point leased elsewhere is awaited (served from the store the
        moment the peer commits), and stale leases of crashed peers
        are reclaimed and resumed from their journaled chunks.
    worker:
        Worker identity for distributed sweeps.  Chunk checkpoints go
        to the per-worker journal ``<sweep>.<worker>.jsonl`` and chunk
        *replay* merges every worker's journal, so resume parity holds
        across N appenders.
    defer:
        Work-queue mode: point calls queue work and return ``None``-
        valued placeholder rows; :meth:`drain` computes/collects them
        cooperatively and fills the placeholders in place.  Requires a
        ``store`` (the store is the coordination medium).
    wait_poll:
        Seconds between store polls while waiting on a peer's lease.
    status:
        Optional :class:`~repro.runstore.distributed.WorkerStatus`
        file, refreshed as points complete (the ``runs workers`` view).
    on_drain:
        Optional callable invoked (with this orchestrator, once) at
        the start of the first :meth:`drain` — after the full grid has
        been queued, before any point computes.  The sweep launcher
        uses it to publish the work manifest and fork helper workers.
    """

    def __init__(self, store: RunStore | None = None, *,
                 sweep: str | None = None, resume: bool = False,
                 use_cache: bool = True, max_attempts: int = 3,
                 backoff_base: float = 0.5, backoff_cap: float = 30.0,
                 sleep=time.sleep, progress=None, should_stop=None,
                 leases=None, worker: str | None = None,
                 defer: bool = False, wait_poll: float = 0.5,
                 status=None, on_drain=None):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if defer and store is None:
            raise ValueError("work-queue (defer) mode needs a store: "
                             "committed points are how deferred rows "
                             "are filled")
        self.store = store
        self.sweep = sweep
        self.use_cache = use_cache
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.leases = leases
        self.worker = worker
        self.wait_poll = wait_poll
        self._defer = defer
        self._sleep = sleep
        self._progress = progress
        self._should_stop = should_stop
        self._status = status
        self._status_written = 0.0
        self._on_drain = on_drain
        self.counters = {"computed": 0, "cached": 0,
                         "resumed_chunks": 0, "retries": 0,
                         "trials": 0, "interactions": 0,
                         "lease_reclaims": 0, "lease_lost": 0}
        self._journal = None
        self._pending: dict[str, dict[int, list]] = {}
        self._deferred: list[_Deferred] = []
        self._waiting_noted = False
        if store is not None and sweep is not None:
            self._journal = store.journal(sweep, worker=worker)
            if resume and use_cache:
                records = (store.sweep_records(sweep)
                           if self._distributed
                           else self._journal.replay())
                self._pending = chunk_map(records)
            else:
                self._journal.clear()
            self._journal.append({"event": "begin", "sweep": sweep,
                                  **({"worker": worker} if worker
                                     else {})})
        self._report_status(force=True)

    @property
    def _distributed(self) -> bool:
        return self.leases is not None or self.worker is not None

    # -- the two point shapes ----------------------------------------

    def majority_point(self, protocol, *, n: int, epsilon: float,
                       trials: int, seed: int, engine: str = "auto",
                       max_parallel_time: float | None = None,
                       batch_fraction: float = 0.05) -> dict:
        """One ``measure_majority_point``-shaped sweep point.

        Returns the flat result row (identical schema to
        :func:`repro.experiments.runner.measure_majority_point` except
        that nondeterministic ``wall_seconds`` lives in the store's
        provenance ``meta``, not the row).
        """
        spec = RunSpec(protocol, n=n, epsilon=epsilon, num_trials=trials,
                       seed=seed, engine=engine,
                       max_parallel_time=max_parallel_time,
                       batch_fraction=batch_fraction)
        return self.spec_point(spec)

    def spec_point(self, spec: RunSpec, *, label: str | None = None
                   ) -> dict:
        """One sweep point addressed directly by a :class:`RunSpec`.

        The general entry the simulation service drives: any
        cache-addressable majority-form spec (margin or explicit
        counts, clean or faulted) runs through the same cache/journal/
        retry machinery as :meth:`majority_point`, and for margin-form
        specs the returned row — and the committed cache entry — is
        byte-identical to :meth:`majority_point`'s.  Count-form specs
        extend the row with ``count_a``/``count_b``.

        In work-queue mode the returned dict is a placeholder (every
        column present, values ``None``) filled in place by
        :meth:`drain`.
        """
        key = spec_key(spec)
        fp = fingerprint(key)
        protocol = spec.protocol
        label = label or (f"{protocol.name} n={spec.n}" if spec.n
                          else f"{protocol.name} "
                               f"{spec.count_a}v{spec.count_b}")
        cached = self._lookup(fp, label=label, kind="majority-point")
        if cached is not None:
            return cached

        def compute():
            return self._compute_spec_point(spec, fp, key)

        if self._defer:
            skeleton = {column: None for column in MAJORITY_COLUMNS}
            if spec.count_a is not None:
                skeleton["count_a"] = None
                skeleton["count_b"] = None
            return self._defer_point(
                fp, label, "majority-point", compute, skeleton,
                _cost_hint(spec),
                manifest=_manifest_entry(spec, "majority-point"))
        return self._guarded(fp, label=label, kind="majority-point",
                             compute=compute)

    def _compute_spec_point(self, spec: RunSpec, fp: str, key: dict
                            ) -> dict:
        protocol = spec.protocol
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.count("runstore.cache.miss", kind="majority-point")
        started = time.perf_counter()
        results, plan_meta = self._run_point_chunks(spec, fp=fp)
        stats = TrialStats.from_results(results)
        row = {
            "protocol": protocol.name,
            "engine": spec.engine,
            "n": spec.n,
            "epsilon": spec.epsilon,
            "trials": stats.num_trials,
            "settled_fraction": stats.settled_fraction,
            "mean_parallel_time": stats.mean_parallel_time,
            "std_parallel_time": stats.std_parallel_time,
            "min_parallel_time": stats.min_parallel_time,
            "max_parallel_time": stats.max_parallel_time,
            "error_fraction": stats.error_fraction,
        }
        if spec.count_a is not None:
            row["count_a"] = spec.count_a
            row["count_b"] = spec.count_b
        wall = time.perf_counter() - started
        meta = dict(plan_meta, wall_seconds=wall)
        if telemetry.enabled:
            telemetry.record_span(
                "runstore.point", wall, kind="majority-point",
                protocol=protocol.name, n=spec.n,
                engine=plan_meta["engine_resolved"],
                trials=stats.num_trials,
                interactions=plan_meta["interactions"])
        self._commit(fp, key, row, meta)
        return row

    def robustness_point(self, protocol, *, n: int, epsilon: float,
                         trials: int, seed: int, faults,
                         engine: str = "auto",
                         max_steps: int | None = None,
                         max_parallel_time: float | None = None,
                         describe: str | None = None) -> dict:
        """One fault-injection sweep point (``kind="robustness-point"``).

        Runs through the same chunk/journal/retry machinery as
        :meth:`majority_point`, with the :class:`~repro.faults.FaultSpec`
        folded into the fingerprint, and reports recovery statistics:

        * ``mean_recovery_time`` — parallel time spent *after* the
          fault window closes, ``max(0, steps - horizon) / n`` averaged
          over settled runs.  With no faults (or no horizon) it is the
          ordinary convergence time, so fault-free points slot into the
          same curve as a baseline.
        * ``residual_error`` — fraction of trials that retired on a
          wrong (or no) decision despite the self-stabilizing dynamics.
        * ``mean_fault_events`` — average number of injected events per
          trial, straight from the engines' fault counters.
        """
        spec = RunSpec(protocol, n=n, epsilon=epsilon, num_trials=trials,
                       seed=seed, engine=engine, max_steps=max_steps,
                       max_parallel_time=max_parallel_time,
                       faults=faults)
        key = dict(spec_key(spec), kind="robustness-point")
        fp = fingerprint(key)
        label = f"{protocol.name} n={n} [{describe or 'fault-free'}]"
        cached = self._lookup(fp, label=label, kind="robustness-point")
        if cached is not None:
            return cached

        def compute():
            return self._compute_robustness_point(
                spec, fp, key, faults=faults, engine=engine,
                describe=describe)

        if self._defer:
            skeleton = {column: None for column in ROBUSTNESS_COLUMNS}
            return self._defer_point(
                fp, label, "robustness-point", compute, skeleton,
                _cost_hint(spec),
                manifest=_manifest_entry(spec, "robustness-point",
                                         describe=describe))
        return self._guarded(fp, label=label, kind="robustness-point",
                             compute=compute)

    def _compute_robustness_point(self, spec: RunSpec, fp: str,
                                  key: dict, *, faults, engine,
                                  describe) -> dict:
        protocol = spec.protocol
        n = spec.n
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.count("runstore.cache.miss", kind="robustness-point")
        started = time.perf_counter()
        results, plan_meta = self._run_point_chunks(spec, fp=fp)
        stats = TrialStats.from_results(results)
        active = active_faults(faults)
        horizon = 0
        if active is not None and active.horizon is not None:
            horizon = active.horizon
        recoveries = [max(0, r.steps - horizon) / r.n
                      for r in results if r.settled]
        events = [sum(r.fault_events.values()) if r.fault_events else 0
                  for r in results]
        row = {
            "protocol": protocol.name,
            "engine": engine,
            "n": n,
            "epsilon": spec.epsilon,
            "fault_model": describe or "fault-free",
            "trials": stats.num_trials,
            "settled_fraction": stats.settled_fraction,
            "mean_recovery_time": (float(np.mean(recoveries))
                                   if recoveries else None),
            "std_recovery_time": (float(np.std(recoveries))
                                  if recoveries else None),
            "residual_error": stats.error_fraction,
            "mean_parallel_time": stats.mean_parallel_time,
            "mean_fault_events": float(np.mean(events)),
        }
        wall = time.perf_counter() - started
        meta = dict(plan_meta, wall_seconds=wall)
        if telemetry.enabled:
            telemetry.record_span(
                "runstore.point", wall, kind="robustness-point",
                protocol=protocol.name, n=n,
                engine=plan_meta["engine_resolved"],
                trials=stats.num_trials,
                interactions=plan_meta["interactions"])
        self._commit(fp, key, row, meta)
        return row

    def point(self, kind: str, params: dict, compute, *,
              label: str | None = None):
        """A generic cached point: any deterministic computation.

        ``compute()`` must be a pure function of ``params`` returning
        a JSON-safe payload (a row dict or a list of row dicts); the
        payload is committed under the fingerprint of
        ``(schema, kind, params)`` and served from cache on the next
        invocation.

        Generic points are lease-coordinated like the typed points,
        but never deferred (their payload shape is opaque, so there is
        no skeleton to hand out): in work-queue mode they compute
        synchronously at call time.
        """
        key = point_key(kind, params)
        fp = fingerprint(key)
        cached = self._lookup(fp, label=label, kind=kind)
        if cached is not None:
            return cached

        def guarded_compute():
            telemetry = current_telemetry()
            if telemetry.enabled:
                telemetry.count("runstore.cache.miss", kind=kind)
            started = time.perf_counter()
            payload = self._attempt(compute, label=label or kind)
            wall = time.perf_counter() - started
            if telemetry.enabled:
                telemetry.record_span("runstore.point", wall, kind=kind,
                                      label=label or kind)
            self._commit(fp, key, payload, {"wall_seconds": wall})
            return payload

        return self._guarded(fp, label=label or kind, kind=kind,
                             compute=guarded_compute)

    # -- the work queue -----------------------------------------------

    def _defer_point(self, fp, label, kind, compute, skeleton,
                     cost_hint, manifest=None) -> dict:
        self._deferred.append(
            _Deferred(fp, label, kind, compute, skeleton, cost_hint,
                      manifest))
        return skeleton

    @property
    def pending_points(self) -> int:
        """Deferred points not yet drained."""
        return len(self._deferred)

    def manifest(self) -> list[dict]:
        """Wire-form descriptors of the queued points, one per
        distinct fingerprint — what a ``python -m repro workers
        start`` helper needs to queue the identical work-list."""
        entries = []
        seen = set()
        for item in self._deferred:
            if item.manifest is None or item.fp in seen:
                continue
            seen.add(item.fp)
            entries.append(dict(item.manifest, point=item.fp))
        return entries

    def drain(self) -> None:
        """Run every deferred point to completion, cooperatively.

        Claims unleased points (most expensive first — LPT scheduling
        keeps the grid's tail short), back-fills peer-committed points
        from the store, waits on fresh peer leases, and reclaims stale
        ones.  On return every placeholder row handed out by the point
        methods is filled; without leases this degenerates to plain
        sequential computation in cost order.

        No-op when nothing was deferred, so sweeps can call it
        unconditionally.
        """
        if self._on_drain is not None:
            hook, self._on_drain = self._on_drain, None
            hook(self)
        pending = sorted(self._deferred,
                         key=lambda item: -item.cost_hint)
        self._deferred = []
        while pending:
            progressed = False
            rest = []
            for item in pending:
                if self._drain_one(item):
                    progressed = True
                    self._waiting_noted = False
                else:
                    rest.append(item)
                self._report_status()
            pending = rest
            if pending and not progressed:
                self._poll_peers(pending)
        self._report_status(force=True)

    def _drain_one(self, item: _Deferred) -> bool:
        """Try to finish one queued point; ``True`` when filled."""
        cached = self._lookup(item.fp, label=item.label, kind=item.kind)
        if cached is not None:
            item.skeleton.update(cached)
            return True
        if self.leases is not None and not self.leases.acquire(item.fp):
            return False
        lost = False
        try:
            if self.leases is not None:
                # Double-check under the lease: the peer may have
                # committed between our lookup and the acquire.
                cached = self._lookup(item.fp, label=item.label,
                                      kind=item.kind)
                if cached is not None:
                    item.skeleton.update(cached)
                    return True
                self._refresh_pending(item.fp)
            try:
                item.skeleton.update(item.compute())
            except LeaseLost:
                lost = True
        finally:
            if self.leases is not None:
                self.leases.release(item.fp)
        if lost:
            self._lease_lost(item.label)
            return False
        return True

    def _guarded(self, fp: str, *, label, kind, compute):
        """Compute one point under its lease (synchronous path).

        Without a lease manager this is just ``compute()``.  With one:
        acquire-or-wait — a point leased by a peer is served from the
        store the moment the peer commits, a stale lease is reclaimed
        and the point (re)computed here, resuming from the dead peer's
        journaled chunks.
        """
        if self.leases is None:
            return compute()
        while True:
            if self.leases.acquire(fp):
                lost = False
                try:
                    cached = self._lookup(fp, label=label, kind=kind)
                    if cached is not None:
                        return cached
                    self._refresh_pending(fp)
                    try:
                        return compute()
                    except LeaseLost:
                        lost = True
                finally:
                    self.leases.release(fp)
                if lost:
                    self._lease_lost(label)
            row = self._await_peer(fp, label=label, kind=kind)
            if row is not None:
                return row

    def _await_peer(self, fp: str, *, label, kind):
        """Wait out the peer holding ``fp``'s lease.

        Returns the committed row once the peer finishes, or ``None``
        when the lease disappears (released without a commit) or goes
        stale and is reclaimed — the caller then retries the acquire.
        """
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.count("runstore.lease.busy", kind=kind)
        noted = False
        while True:
            self._check_stop(fp)
            cached = self._lookup(fp, label=label, kind=kind)
            if cached is not None:
                return cached
            owner = self.leases.owner(fp)
            if owner is None:
                return None
            if owner.get("stale") and self.leases.reclaim(fp):
                self._reclaimed(label)
                return None
            if not noted:
                self._note(f"waiting on {label} (leased by "
                           f"{owner.get('worker', '?')})")
                noted = True
            self._sleep(self.wait_poll)

    def _poll_peers(self, pending) -> None:
        """One wait round of :meth:`drain`: sleep, then reap the dead."""
        if not self._waiting_noted:
            self._note(f"waiting on {len(pending)} point(s) leased "
                       "by peers")
            self._waiting_noted = True
        self._sleep(self.wait_poll)
        if self.leases is None:
            return
        for item in pending:
            owner = self.leases.owner(item.fp)
            if owner is not None and owner.get("stale") \
                    and self.leases.reclaim(item.fp):
                self._reclaimed(item.label)

    def _reclaimed(self, label) -> None:
        self.counters["lease_reclaims"] += 1
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.event("runstore.lease.reclaimed", label=label)
        self._note(f"reclaimed stale lease on {label}; resuming from "
                   "its journaled chunks")

    def _lease_lost(self, label) -> None:
        self.counters["lease_lost"] += 1
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.event("runstore.lease.lost", label=label)
        self._note(f"lost lease on {label} to a peer; abandoning")

    def finish(self) -> None:
        """Mark the sweep complete: drop its (now redundant) journal.

        A distributed worker drops only its *own* per-worker journal;
        peers still mid-drain keep theirs (the launcher clears any
        leftovers once the whole fleet has joined).
        """
        if self._journal is not None:
            self._journal.clear()
        self._report_status(state="done", force=True)

    # -- cache and journal plumbing ----------------------------------

    def _lookup(self, fp: str, label: str | None = None,
                kind: str = "point"):
        if not self.use_cache or self.store is None:
            return None
        entry = self.store.get(fp)
        if entry is None:
            return None
        self.counters["cached"] += 1
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.count("runstore.cache.hit", kind=kind)
        self._note(f"cache hit {label or fp[:12]}")
        return entry["row"]

    def _commit(self, fp: str, key: dict, payload, meta: dict) -> None:
        if self.sweep is not None:
            meta = dict(meta, sweep=self.sweep)
        if self.worker is not None:
            meta = dict(meta, worker=self.worker)
        if self.store is not None:
            self.store.put(fp, key=key, row=payload, meta=meta)
        if self._journal is not None:
            self._journal.append({"event": "point", "point": fp})
        self._pending.pop(fp, None)
        self.counters["computed"] += 1
        if isinstance(meta.get("trials"), int):
            self.counters["trials"] += meta["trials"]
        if isinstance(meta.get("interactions"), int):
            self.counters["interactions"] += meta["interactions"]
        self._report_status()

    def _journal_chunk(self, fp: str, index: int, results) -> None:
        if self._journal is not None:
            self._journal.append({
                "event": "chunk", "point": fp, "index": index,
                "results": [run_result_to_dict(r) for r in results]})

    def _replayed_chunk(self, fp: str, index: int, size: int):
        """Deserialize a journaled chunk, or ``None`` if absent/short."""
        payloads = self._pending.get(fp, {}).get(index)
        if payloads is None or len(payloads) != size:
            return None
        self.counters["resumed_chunks"] += 1
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.count("runstore.chunk.resumed")
        return [run_result_from_dict(payload) for payload in payloads]

    def _refresh_pending(self, fp: str) -> None:
        """Re-merge every worker's journaled chunks for ``fp``.

        Called when a distributed worker claims a point: a peer may
        have checkpointed (then crashed on) this very point *after*
        this orchestrator was constructed, so the init-time replay is
        refreshed from the merged per-worker journals before any chunk
        is recomputed — worker B resumes bit-identically from worker
        A's boundary.
        """
        if not self._distributed or self.store is None \
                or self.sweep is None:
            return
        merged = chunk_map(self.store.sweep_records(self.sweep))
        if fp in merged:
            self._pending[fp] = merged[fp]

    def _heartbeat(self, fp: str) -> None:
        """Refresh this worker's lease at a chunk boundary."""
        if self.leases is not None:
            self.leases.heartbeat(fp)

    def _report_status(self, state: str = "running",
                       force: bool = False) -> None:
        """Refresh the worker status file (throttled to ~1/s)."""
        if self._status is None:
            return
        now = time.monotonic()
        if not force and now - self._status_written < 1.0:
            return
        self._status_written = now
        counters = dict(self.counters)
        if self.leases is not None:
            counters["lease_reclaims"] = max(
                counters["lease_reclaims"], self.leases.reclaimed)
        self._status.write(state, counters,
                           pending_points=len(self._deferred))

    # -- trial fan-out, checkpointed ---------------------------------

    def _run_point_chunks(self, spec: RunSpec, *, fp):
        """Compute a point chunk-by-chunk, exactly as :func:`simulate`.

        Chunk plans and per-chunk ``SeedSequence`` children match
        :func:`repro.sim.run.simulate` (and its parallel twin), and
        generators are rebuilt from the spawned sequences on every
        attempt, so replaying journaled chunks and recomputing the rest
        yields the identical result list an uninterrupted run produces.
        """
        # Same children as ensure_rng(seed) + spawn(): SeedSequence
        # values are pure, so retries rebuild identical fresh generators.
        root_seq = ensure_rng(spec.seed).bit_generator.seed_seq
        telemetry = current_telemetry()
        ensemble, fallback = resolve_trial_engine(spec)
        if fallback is not None and telemetry.enabled:
            telemetry.event("engine.fallback", requested="auto",
                            reason=fallback, protocol=spec.protocol.name,
                            num_trials=spec.num_trials)
        initial, expected = spec.resolve_input()
        sizes = ensemble_chunks(spec.num_trials)
        results = []
        if ensemble is not None:
            children = root_seq.spawn(len(sizes))
            for index, (size, child) in enumerate(zip(sizes, children)):
                chunk = self._replayed_chunk(fp, index, size)
                if chunk is None:
                    self._check_stop(fp)
                    chunk = self._attempt(
                        lambda: ensemble.run_ensemble(
                            initial, num_trials=size,
                            rng=np.random.default_rng(child),
                            expected=expected,
                            max_steps=spec.max_steps,
                            max_parallel_time=spec.max_parallel_time,
                            faults=spec.faults),
                        label=f"chunk {index + 1}/{len(sizes)}")
                    self._journal_chunk(fp, index, chunk)
                results.extend(chunk)
                self._heartbeat(fp)
            if spec.on_timeout == "raise":
                raise_unsettled(results)
            resolved = ensemble.name
        else:
            engine = make_run_engine(spec)
            children = root_seq.spawn(spec.num_trials)
            start = 0
            for index, size in enumerate(sizes):
                batch = children[start:start + size]
                start += size
                chunk = self._replayed_chunk(fp, index, size)
                if chunk is None:
                    self._check_stop(fp)
                    chunk = self._attempt(
                        lambda: [engine.run(
                            initial, rng=np.random.default_rng(child),
                            max_steps=spec.max_steps,
                            max_parallel_time=spec.max_parallel_time,
                            expected=expected,
                            faults=spec.faults,
                            on_timeout=spec.on_timeout)
                            for child in batch],
                        label=f"chunk {index + 1}/{len(sizes)}")
                    self._journal_chunk(fp, index, chunk)
                results.extend(chunk)
                self._heartbeat(fp)
            resolved = results[0].engine_name if results \
                else getattr(spec.engine, "name", spec.engine)
        requested = getattr(spec.engine, "name", spec.engine)
        meta = {"engine_requested": requested,
                "engine_resolved": resolved,
                "chunks": len(sizes),
                "resumed_chunks": sum(
                    1 for index in self._pending.get(fp, ())
                    if index < len(sizes)),
                "trials": len(results),
                "interactions": int(sum(r.steps for r in results))}
        return results, meta

    def _check_stop(self, fp: str) -> None:
        """Honor a pending stop request at a chunk boundary.

        Every completed chunk is already journaled by the time this
        runs, so the raised :class:`~repro.errors.JobInterrupted`
        leaves the point resumable with zero lost work.
        """
        if self._should_stop is not None and self._should_stop():
            telemetry = current_telemetry()
            if telemetry.enabled:
                telemetry.event("runstore.point.interrupted", point=fp)
            raise JobInterrupted(
                f"stop requested; point {fp[:12]} checkpointed at a "
                "chunk boundary and is resumable")

    # -- retries ------------------------------------------------------

    def _attempt(self, compute, *, label: str):
        """Run ``compute`` with capped-backoff retries on worker loss."""
        for attempt in range(1, self.max_attempts + 1):
            try:
                return compute()
            except RETRYABLE_ERRORS as failure:
                if attempt == self.max_attempts:
                    raise
                delay = min(self.backoff_cap,
                            self.backoff_base * 2 ** (attempt - 1))
                self.counters["retries"] += 1
                telemetry = current_telemetry()
                if telemetry.enabled:
                    telemetry.count("runstore.retry", label=label)
                self._note(f"retrying {label} after worker failure "
                           f"({failure}); backoff {delay:.1f}s")
                self._sleep(delay)

    def _note(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)
