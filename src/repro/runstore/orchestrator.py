"""The resumable sweep driver.

:class:`Orchestrator` sits between the experiment modules and
:func:`repro.sim.run.run_trials`-style fan-out.  Each sweep point is
addressed by its :mod:`~repro.runstore.fingerprint`; the orchestrator

* serves committed points straight from the :class:`RunStore` (a warm
  cache re-invocation never enters a simulation engine),
* checkpoints in-flight points to the per-sweep journal at the
  deterministic :data:`~repro.sim.run.ENSEMBLE_CHUNK_TRIALS` trial
  boundaries, so ``--resume`` after a crash replays the completed
  chunks and recomputes only the rest,
* retries transient worker failures
  (:class:`~repro.errors.WorkerError` from
  :mod:`repro.sim.parallel`) with capped exponential backoff, and
* records wall-time/engine provenance per point in the store's
  ``meta`` — *outside* the result row, so cached, resumed, and freshly
  computed sweeps emit byte-identical CSVs.

Determinism contract: chunk boundaries and per-chunk generators are
derived exactly as the uninterrupted runners derive them (same
``SeedSequence`` spawning, same chunk plan), and fresh generators are
rebuilt from the spawned sequences on every attempt — so a resumed or
retried sweep is bit-identical to one that never failed.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import JobInterrupted, WorkerError
from ..faults import active_faults
from ..rng import ensure_rng
from ..serialize import run_result_from_dict, run_result_to_dict
from ..sim.results import TrialStats
from ..sim.run import (
    RunSpec,
    ensemble_chunks,
    make_run_engine,
    raise_unsettled,
    resolve_trial_engine,
)
from ..telemetry.context import current as current_telemetry
from .fingerprint import fingerprint, point_key, spec_key
from .journal import chunk_map
from .store import RunStore

__all__ = ["Orchestrator", "RETRYABLE_ERRORS"]

#: Failures worth retrying: the work is a pure function of its seed,
#: so a crashed worker pool just means "run that batch again".
RETRYABLE_ERRORS = (WorkerError,)


class Orchestrator:
    """Run sweep points through the cache/journal/retry machinery.

    Parameters
    ----------
    store:
        The :class:`RunStore` backing the sweep, or ``None`` for a
        purely in-memory pass (no caching, no journal — the rows are
        still computed identically, which is what keeps direct calls
        to the ``*_rows`` functions equivalent to orchestrated ones).
    sweep:
        Journal name for this sweep (e.g. ``"figure3_smoke"``).
        Without it no chunk checkpoints are written.
    resume:
        Replay the existing journal's completed chunks instead of
        starting the journal afresh.
    use_cache:
        Serve committed points from the store.  ``False`` forces full
        recomputation (results are still committed, overwriting).
    max_attempts / backoff_base / backoff_cap / sleep:
        Retry policy for :data:`RETRYABLE_ERRORS`: attempt ``k`` waits
        ``min(backoff_cap, backoff_base * 2**(k-1))`` seconds.
    progress:
        Optional callable receiving human-readable status lines.
    should_stop:
        Optional zero-argument callable polled between trial chunks;
        returning ``True`` raises :class:`~repro.errors.JobInterrupted`
        *after* every completed chunk has been journaled, so the point
        resumes from the checkpoint on the next attempt.  This is the
        simulation service's graceful-shutdown hook.
    """

    def __init__(self, store: RunStore | None = None, *,
                 sweep: str | None = None, resume: bool = False,
                 use_cache: bool = True, max_attempts: int = 3,
                 backoff_base: float = 0.5, backoff_cap: float = 30.0,
                 sleep=time.sleep, progress=None, should_stop=None):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.store = store
        self.sweep = sweep
        self.use_cache = use_cache
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self._progress = progress
        self._should_stop = should_stop
        self.counters = {"computed": 0, "cached": 0,
                         "resumed_chunks": 0, "retries": 0}
        self._journal = None
        self._pending: dict[str, dict[int, list]] = {}
        if store is not None and sweep is not None:
            self._journal = store.journal(sweep)
            if resume and use_cache:
                self._pending = chunk_map(self._journal.replay())
            else:
                self._journal.clear()
            self._journal.append({"event": "begin", "sweep": sweep})

    # -- the two point shapes ----------------------------------------

    def majority_point(self, protocol, *, n: int, epsilon: float,
                       trials: int, seed: int, engine: str = "auto",
                       max_parallel_time: float | None = None,
                       batch_fraction: float = 0.05) -> dict:
        """One ``measure_majority_point``-shaped sweep point.

        Returns the flat result row (identical schema to
        :func:`repro.experiments.runner.measure_majority_point` except
        that nondeterministic ``wall_seconds`` lives in the store's
        provenance ``meta``, not the row).
        """
        spec = RunSpec(protocol, n=n, epsilon=epsilon, num_trials=trials,
                       seed=seed, engine=engine,
                       max_parallel_time=max_parallel_time,
                       batch_fraction=batch_fraction)
        return self.spec_point(spec)

    def spec_point(self, spec: RunSpec, *, label: str | None = None
                   ) -> dict:
        """One sweep point addressed directly by a :class:`RunSpec`.

        The general entry the simulation service drives: any
        cache-addressable majority-form spec (margin or explicit
        counts, clean or faulted) runs through the same cache/journal/
        retry machinery as :meth:`majority_point`, and for margin-form
        specs the returned row — and the committed cache entry — is
        byte-identical to :meth:`majority_point`'s.  Count-form specs
        extend the row with ``count_a``/``count_b``.
        """
        key = spec_key(spec)
        fp = fingerprint(key)
        protocol = spec.protocol
        label = label or (f"{protocol.name} n={spec.n}" if spec.n
                          else f"{protocol.name} "
                               f"{spec.count_a}v{spec.count_b}")
        cached = self._lookup(fp, label=label, kind="majority-point")
        if cached is not None:
            return cached
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.count("runstore.cache.miss", kind="majority-point")
        started = time.perf_counter()
        results, plan_meta = self._run_point_chunks(spec, fp=fp)
        stats = TrialStats.from_results(results)
        row = {
            "protocol": protocol.name,
            "engine": spec.engine,
            "n": spec.n,
            "epsilon": spec.epsilon,
            "trials": stats.num_trials,
            "settled_fraction": stats.settled_fraction,
            "mean_parallel_time": stats.mean_parallel_time,
            "std_parallel_time": stats.std_parallel_time,
            "min_parallel_time": stats.min_parallel_time,
            "max_parallel_time": stats.max_parallel_time,
            "error_fraction": stats.error_fraction,
        }
        if spec.count_a is not None:
            row["count_a"] = spec.count_a
            row["count_b"] = spec.count_b
        wall = time.perf_counter() - started
        meta = dict(plan_meta, wall_seconds=wall)
        if telemetry.enabled:
            telemetry.record_span(
                "runstore.point", wall, kind="majority-point",
                protocol=protocol.name, n=spec.n,
                engine=plan_meta["engine_resolved"],
                trials=stats.num_trials,
                interactions=plan_meta["interactions"])
        self._commit(fp, key, row, meta)
        return row

    def robustness_point(self, protocol, *, n: int, epsilon: float,
                         trials: int, seed: int, faults,
                         engine: str = "auto",
                         max_steps: int | None = None,
                         max_parallel_time: float | None = None,
                         describe: str | None = None) -> dict:
        """One fault-injection sweep point (``kind="robustness-point"``).

        Runs through the same chunk/journal/retry machinery as
        :meth:`majority_point`, with the :class:`~repro.faults.FaultSpec`
        folded into the fingerprint, and reports recovery statistics:

        * ``mean_recovery_time`` — parallel time spent *after* the
          fault window closes, ``max(0, steps - horizon) / n`` averaged
          over settled runs.  With no faults (or no horizon) it is the
          ordinary convergence time, so fault-free points slot into the
          same curve as a baseline.
        * ``residual_error`` — fraction of trials that retired on a
          wrong (or no) decision despite the self-stabilizing dynamics.
        * ``mean_fault_events`` — average number of injected events per
          trial, straight from the engines' fault counters.
        """
        spec = RunSpec(protocol, n=n, epsilon=epsilon, num_trials=trials,
                       seed=seed, engine=engine, max_steps=max_steps,
                       max_parallel_time=max_parallel_time,
                       faults=faults)
        key = dict(spec_key(spec), kind="robustness-point")
        fp = fingerprint(key)
        label = f"{protocol.name} n={n} [{describe or 'fault-free'}]"
        cached = self._lookup(fp, label=label, kind="robustness-point")
        if cached is not None:
            return cached
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.count("runstore.cache.miss", kind="robustness-point")
        started = time.perf_counter()
        results, plan_meta = self._run_point_chunks(spec, fp=fp)
        stats = TrialStats.from_results(results)
        active = active_faults(faults)
        horizon = 0
        if active is not None and active.horizon is not None:
            horizon = active.horizon
        recoveries = [max(0, r.steps - horizon) / r.n
                      for r in results if r.settled]
        events = [sum(r.fault_events.values()) if r.fault_events else 0
                  for r in results]
        row = {
            "protocol": protocol.name,
            "engine": engine,
            "n": n,
            "epsilon": epsilon,
            "fault_model": describe or "fault-free",
            "trials": stats.num_trials,
            "settled_fraction": stats.settled_fraction,
            "mean_recovery_time": (float(np.mean(recoveries))
                                   if recoveries else None),
            "std_recovery_time": (float(np.std(recoveries))
                                  if recoveries else None),
            "residual_error": stats.error_fraction,
            "mean_parallel_time": stats.mean_parallel_time,
            "mean_fault_events": float(np.mean(events)),
        }
        wall = time.perf_counter() - started
        meta = dict(plan_meta, wall_seconds=wall)
        if telemetry.enabled:
            telemetry.record_span(
                "runstore.point", wall, kind="robustness-point",
                protocol=protocol.name, n=n,
                engine=plan_meta["engine_resolved"],
                trials=stats.num_trials,
                interactions=plan_meta["interactions"])
        self._commit(fp, key, row, meta)
        return row

    def point(self, kind: str, params: dict, compute, *,
              label: str | None = None):
        """A generic cached point: any deterministic computation.

        ``compute()`` must be a pure function of ``params`` returning
        a JSON-safe payload (a row dict or a list of row dicts); the
        payload is committed under the fingerprint of
        ``(schema, kind, params)`` and served from cache on the next
        invocation.
        """
        key = point_key(kind, params)
        fp = fingerprint(key)
        cached = self._lookup(fp, label=label, kind=kind)
        if cached is not None:
            return cached
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.count("runstore.cache.miss", kind=kind)
        started = time.perf_counter()
        payload = self._attempt(compute, label=label or kind)
        wall = time.perf_counter() - started
        if telemetry.enabled:
            telemetry.record_span("runstore.point", wall, kind=kind,
                                  label=label or kind)
        self._commit(fp, key, payload, {"wall_seconds": wall})
        return payload

    def finish(self) -> None:
        """Mark the sweep complete: drop its (now redundant) journal."""
        if self._journal is not None:
            self._journal.clear()

    # -- cache and journal plumbing ----------------------------------

    def _lookup(self, fp: str, label: str | None = None,
                kind: str = "point"):
        if not self.use_cache or self.store is None:
            return None
        entry = self.store.get(fp)
        if entry is None:
            return None
        self.counters["cached"] += 1
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.count("runstore.cache.hit", kind=kind)
        self._note(f"cache hit {label or fp[:12]}")
        return entry["row"]

    def _commit(self, fp: str, key: dict, payload, meta: dict) -> None:
        if self.sweep is not None:
            meta = dict(meta, sweep=self.sweep)
        if self.store is not None:
            self.store.put(fp, key=key, row=payload, meta=meta)
        if self._journal is not None:
            self._journal.append({"event": "point", "point": fp})
        self._pending.pop(fp, None)
        self.counters["computed"] += 1

    def _journal_chunk(self, fp: str, index: int, results) -> None:
        if self._journal is not None:
            self._journal.append({
                "event": "chunk", "point": fp, "index": index,
                "results": [run_result_to_dict(r) for r in results]})

    def _replayed_chunk(self, fp: str, index: int, size: int):
        """Deserialize a journaled chunk, or ``None`` if absent/short."""
        payloads = self._pending.get(fp, {}).get(index)
        if payloads is None or len(payloads) != size:
            return None
        self.counters["resumed_chunks"] += 1
        telemetry = current_telemetry()
        if telemetry.enabled:
            telemetry.count("runstore.chunk.resumed")
        return [run_result_from_dict(payload) for payload in payloads]

    # -- trial fan-out, checkpointed ---------------------------------

    def _run_point_chunks(self, spec: RunSpec, *, fp):
        """Compute a point chunk-by-chunk, exactly as :func:`simulate`.

        Chunk plans and per-chunk ``SeedSequence`` children match
        :func:`repro.sim.run.simulate` (and its parallel twin), and
        generators are rebuilt from the spawned sequences on every
        attempt, so replaying journaled chunks and recomputing the rest
        yields the identical result list an uninterrupted run produces.
        """
        # Same children as ensure_rng(seed) + spawn(): SeedSequence
        # values are pure, so retries rebuild identical fresh generators.
        root_seq = ensure_rng(spec.seed).bit_generator.seed_seq
        telemetry = current_telemetry()
        ensemble, fallback = resolve_trial_engine(spec)
        if fallback is not None and telemetry.enabled:
            telemetry.event("engine.fallback", requested="auto",
                            reason=fallback, protocol=spec.protocol.name,
                            num_trials=spec.num_trials)
        initial, expected = spec.resolve_input()
        sizes = ensemble_chunks(spec.num_trials)
        results = []
        if ensemble is not None:
            children = root_seq.spawn(len(sizes))
            for index, (size, child) in enumerate(zip(sizes, children)):
                chunk = self._replayed_chunk(fp, index, size)
                if chunk is None:
                    self._check_stop(fp)
                    chunk = self._attempt(
                        lambda: ensemble.run_ensemble(
                            initial, num_trials=size,
                            rng=np.random.default_rng(child),
                            expected=expected,
                            max_steps=spec.max_steps,
                            max_parallel_time=spec.max_parallel_time,
                            faults=spec.faults),
                        label=f"chunk {index + 1}/{len(sizes)}")
                    self._journal_chunk(fp, index, chunk)
                results.extend(chunk)
            if spec.on_timeout == "raise":
                raise_unsettled(results)
            resolved = ensemble.name
        else:
            engine = make_run_engine(spec)
            children = root_seq.spawn(spec.num_trials)
            start = 0
            for index, size in enumerate(sizes):
                batch = children[start:start + size]
                start += size
                chunk = self._replayed_chunk(fp, index, size)
                if chunk is None:
                    self._check_stop(fp)
                    chunk = self._attempt(
                        lambda: [engine.run(
                            initial, rng=np.random.default_rng(child),
                            max_steps=spec.max_steps,
                            max_parallel_time=spec.max_parallel_time,
                            expected=expected,
                            faults=spec.faults,
                            on_timeout=spec.on_timeout)
                            for child in batch],
                        label=f"chunk {index + 1}/{len(sizes)}")
                    self._journal_chunk(fp, index, chunk)
                results.extend(chunk)
            resolved = results[0].engine_name if results \
                else getattr(spec.engine, "name", spec.engine)
        requested = getattr(spec.engine, "name", spec.engine)
        meta = {"engine_requested": requested,
                "engine_resolved": resolved,
                "chunks": len(sizes),
                "resumed_chunks": sum(
                    1 for index in self._pending.get(fp, ())
                    if index < len(sizes)),
                "trials": len(results),
                "interactions": int(sum(r.steps for r in results))}
        return results, meta

    def _check_stop(self, fp: str) -> None:
        """Honor a pending stop request at a chunk boundary.

        Every completed chunk is already journaled by the time this
        runs, so the raised :class:`~repro.errors.JobInterrupted`
        leaves the point resumable with zero lost work.
        """
        if self._should_stop is not None and self._should_stop():
            telemetry = current_telemetry()
            if telemetry.enabled:
                telemetry.event("runstore.point.interrupted", point=fp)
            raise JobInterrupted(
                f"stop requested; point {fp[:12]} checkpointed at a "
                "chunk boundary and is resumable")

    # -- retries ------------------------------------------------------

    def _attempt(self, compute, *, label: str):
        """Run ``compute`` with capped-backoff retries on worker loss."""
        for attempt in range(1, self.max_attempts + 1):
            try:
                return compute()
            except RETRYABLE_ERRORS as failure:
                if attempt == self.max_attempts:
                    raise
                delay = min(self.backoff_cap,
                            self.backoff_base * 2 ** (attempt - 1))
                self.counters["retries"] += 1
                telemetry = current_telemetry()
                if telemetry.enabled:
                    telemetry.count("runstore.retry", label=label)
                self._note(f"retrying {label} after worker failure "
                           f"({failure}); backoff {delay:.1f}s")
                self._sleep(delay)

    def _note(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)
