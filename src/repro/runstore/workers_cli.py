"""``python -m repro workers`` — cooperative sweep worker processes.

``start`` turns this process into one (or, with ``-j N``, a fleet of)
sweep workers: it loads the sweep's published work manifest from the
run store (``manifests/<sweep>.json``, written by the experiment CLI
that launched the sweep — or by a previous run of it), queues every
point on a lease-coordinated :class:`~repro.runstore.Orchestrator`,
and drains the queue until the grid is done.  Workers are completely
generic: the manifest carries each point's RunSpec wire form, which
preserves the content-address exactly, so a worker needs no knowledge
of the experiment module that built the grid — it can run on any
machine that sees the same store directory.

The usual way in is ``--workers N`` on an experiment CLI (figure3 /
figure4 / robustness / successors / byzantine), which publishes the
manifest and forks ``N - 1`` of these processes next to itself.
Running ``python -m repro workers start --sweep figure4_default -j 4``
by hand attaches extra drain capacity to a sweep that is already in
flight (or finishes one whose launcher died — the manifest and the
journaled chunks are all on disk).

Progress is observable from a second terminal via
``python -m repro runs workers`` (live leases, per-worker throughput,
reclaimed leases).
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

from ..errors import ExperimentError
from .distributed import (
    LeaseManager,
    WorkerStatus,
    lease_ttl_from_env,
    new_worker_id,
)
from .orchestrator import Orchestrator
from .store import RunStore

__all__ = ["WorkerFleet", "main", "queue_manifest_entry", "run_worker"]


def queue_manifest_entry(orchestrator: Orchestrator, entry: dict
                         ) -> dict | None:
    """Queue one manifest point on a (defer-mode) orchestrator.

    Rebuilds the RunSpec from its wire form — the round trip preserves
    ``spec.key()``, so the queued point carries the same fingerprint
    the launcher queued — and routes it through the same typed point
    method, so the committed row is byte-identical no matter which
    worker computes it.  Malformed entries are skipped (``None``).
    """
    from ..serialize import spec_from_dict

    try:
        spec = spec_from_dict(entry["spec"])
    except Exception:
        return None
    if entry.get("kind") == "robustness-point":
        return orchestrator.robustness_point(
            spec.protocol, n=spec.n, epsilon=spec.epsilon,
            trials=spec.num_trials, seed=spec.seed, faults=spec.faults,
            engine=spec.engine, max_steps=spec.max_steps,
            max_parallel_time=spec.max_parallel_time,
            describe=entry.get("describe"))
    return orchestrator.spec_point(spec)


def run_worker(store: RunStore, sweep: str, *,
               worker_id: str | None = None,
               lease_ttl: float | None = None,
               progress=None) -> dict:
    """Drain ``sweep``'s manifest as one cooperative worker.

    Returns the orchestrator's counters.  A missing manifest is not an
    error — the sweep may already be finished (its launcher clears the
    manifest on completion), so the worker simply reports zero work.
    """
    manifest = store.load_manifest(sweep)
    worker_id = worker_id or new_worker_id()
    if not manifest:
        if progress is not None:
            progress(f"no manifest for sweep {sweep!r}; nothing to do")
        return dict.fromkeys(("computed", "cached"), 0)
    leases = LeaseManager(store.leases_dir, worker_id,
                          ttl=lease_ttl_from_env(lease_ttl))
    status = WorkerStatus(store.workers_dir, worker_id, sweep=sweep)
    orchestrator = Orchestrator(
        store, sweep=sweep, resume=True, leases=leases,
        worker=worker_id, defer=True, status=status, progress=progress)
    queued = 0
    for entry in manifest:
        if isinstance(entry, dict) and \
                queue_manifest_entry(orchestrator, entry) is not None:
            queued += 1
    if progress is not None:
        progress(f"worker {worker_id}: {queued} point(s) queued, "
                 f"{orchestrator.pending_points} to compute or await")
    orchestrator.drain()
    orchestrator.finish()
    return orchestrator.counters


class WorkerFleet:
    """Helper worker processes forked next to a sweep launcher.

    Each helper is a ``python -m repro workers start --sweep <name>``
    subprocess against the same output directory; stdout/stderr go to
    per-helper logs under the store's ``workers/`` directory.  The
    launcher participates in the drain itself, so ``--workers N``
    means N cooperating processes total: this fleet holds ``N - 1``.
    """

    def __init__(self, *, sweep: str, output_dir, count: int,
                 lease_ttl: float | None = None):
        self.sweep = sweep
        self.output_dir = output_dir
        self.count = max(0, count)
        self.lease_ttl = lease_ttl
        self._procs: list[tuple[subprocess.Popen, object]] = []

    def launch(self, store: RunStore) -> int:
        """Fork the helpers; returns how many were started."""
        log_dir = store.workers_dir
        log_dir.mkdir(parents=True, exist_ok=True)
        for index in range(self.count):
            command = [sys.executable, "-m", "repro", "workers",
                       "start", "--sweep", self.sweep, "-j", "1",
                       "--output-dir", str(self.output_dir)]
            if self.lease_ttl is not None:
                command += ["--lease-ttl", str(self.lease_ttl)]
            log_path = Path(log_dir) / f"{self.sweep}.helper{index}.log"
            log = open(log_path, "w", encoding="utf-8")
            self._procs.append((subprocess.Popen(
                command, stdout=log, stderr=subprocess.STDOUT,
                env=dict(os.environ)), log))
        return len(self._procs)

    def join(self) -> int:
        """Wait for every helper; returns the number that failed.

        A failed helper is not fatal — its leases go stale and its
        points are reclaimed by the survivors — so the caller only
        needs the count for reporting.
        """
        failures = 0
        for process, log in self._procs:
            failures += 1 if process.wait() != 0 else 0
            log.close()
        self._procs = []
        return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro workers",
        description="Cooperative sweep worker processes over the "
                    "content-addressed run store.")
    parser.add_argument("action", choices=("start",),
                        help="start: drain a sweep's work manifest")
    parser.add_argument("--sweep", required=True,
                        help="sweep name, e.g. figure4_default — the "
                             "manifest under <store>/manifests/")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        metavar="N",
                        help="run N cooperating workers (this process "
                             "plus N-1 forked helpers)")
    parser.add_argument("--worker-id", default=None,
                        help="worker identity (default: "
                             "host-pid-nonce); must not contain '.'")
    parser.add_argument("--lease-ttl", type=float, default=None,
                        metavar="SECONDS",
                        help="stale-lease TTL (default: "
                             "$REPRO_LEASE_TTL or 600)")
    parser.add_argument("--output-dir", default=None,
                        help="results directory owning the store "
                             "(default: results/ or $REPRO_OUTPUT_DIR)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-point progress lines")
    args = parser.parse_args(argv)

    if args.jobs < 1:
        raise ExperimentError(f"-j must be >= 1, got {args.jobs}")
    if args.worker_id and "." in args.worker_id:
        raise ExperimentError(
            "worker ids must not contain '.' (they name per-worker "
            f"journal files); got {args.worker_id!r}")
    store = RunStore.for_output_dir(args.output_dir)
    progress = None if args.quiet else (
        lambda msg: print(f"  [{msg}]", flush=True))

    fleet = None
    if args.jobs > 1:
        fleet = WorkerFleet(sweep=args.sweep,
                            output_dir=store.root.parent,
                            count=args.jobs - 1,
                            lease_ttl=args.lease_ttl)
        fleet.launch(store)
    counters = run_worker(store, args.sweep, worker_id=args.worker_id,
                          lease_ttl=args.lease_ttl, progress=progress)
    failures = fleet.join() if fleet is not None else 0
    print(f"worker(s) done: {counters.get('computed', 0)} computed, "
          f"{counters.get('cached', 0)} served from cache"
          + (f", {failures} helper(s) failed" if failures else ""))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
