"""The on-disk content-addressed result store.

Layout, rooted at ``<output-dir>/.runstore/``::

    objects/<fp[:2]>/<fp>.json   one committed point per file
    journals/<sweep>.jsonl       per-sweep chunk checkpoints

Each object file holds ``{"schema", "fingerprint", "key", "row",
"meta"}`` — the full canonical key is stored next to the row so
``repro runs list`` and the gc can describe entries without reverse
lookups.  ``row`` is the CSV-bound result payload (byte-stable:
re-serialization round-trips every float); ``meta`` is free-form
provenance (wall time, resolved engine, chunk counts, sweep name)
that deliberately stays *out* of the row so cached and freshly
computed sweeps emit identical CSVs.

Commits are atomic: payloads are written to a temp file in the target
directory, fsynced, then ``os.replace``d into place — readers never
observe a half-written object, and a crash leaves only a stray
``*.tmp*`` file for gc.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path

from .fingerprint import RESULT_SCHEMA_VERSION
from .journal import Journal, chunk_map, committed_points

__all__ = ["RunStore", "atomic_write_text"]


def atomic_write_text(target: Path, text: str) -> Path:
    """Durably write ``text`` to ``target`` via temp-file + rename."""
    target = Path(target)
    target.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", encoding="utf-8", dir=target.parent,
        prefix=target.name + ".", suffix=".tmp", delete=False)
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, target)
    except BaseException:
        os.unlink(handle.name)
        raise
    return target


class RunStore:
    """Content-addressed store for committed sweep points."""

    def __init__(self, root):
        self.root = Path(root)

    @classmethod
    def for_output_dir(cls, output_dir=None) -> "RunStore":
        """The store that serves CSVs written under ``output_dir``."""
        from ..experiments.io import default_output_dir
        base = Path(default_output_dir() if output_dir is None
                    else output_dir)
        return cls(base / ".runstore")

    # -- objects ------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def object_path(self, fp: str) -> Path:
        return self.objects_dir / fp[:2] / f"{fp}.json"

    def __contains__(self, fp: str) -> bool:
        return self.object_path(fp).exists()

    def get(self, fp: str) -> dict | None:
        """The committed entry for ``fp``, or ``None``.

        A corrupt object file (impossible via the atomic commit path,
        but disks happen) reads as a miss, not an error — the point is
        simply recomputed and recommitted.
        """
        path = self.object_path(fp)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or "row" not in payload:
            return None
        return payload

    def put(self, fp: str, *, key: dict, row, meta: dict | None = None
            ) -> Path:
        """Atomically commit one point; returns the object path."""
        payload = {
            "schema": key.get("schema", RESULT_SCHEMA_VERSION),
            "fingerprint": fp,
            "key": key,
            "row": row,
            "meta": meta or {},
        }
        return atomic_write_text(self.object_path(fp),
                                 json.dumps(payload, indent=1))

    def entries(self):
        """Every committed entry, in stable (path-sorted) order."""
        if not self.objects_dir.is_dir():
            return
        for path in sorted(self.objects_dir.glob("*/*.json")):
            entry = self.get(path.stem)
            if entry is not None:
                yield entry

    # -- journals -----------------------------------------------------

    @property
    def journals_dir(self) -> Path:
        return self.root / "journals"

    def journal(self, sweep: str) -> Journal:
        return Journal(self.journals_dir / f"{sweep}.jsonl")

    def journals(self):
        """``(sweep name, Journal)`` pairs for every journal on disk."""
        if not self.journals_dir.is_dir():
            return
        for path in sorted(self.journals_dir.glob("*.jsonl")):
            yield path.stem, Journal(path)

    # -- service state ------------------------------------------------
    #
    # The simulation service keeps its durable queue next to the sweep
    # journals: one append-only JSONL file recording job submissions
    # ("submit" with the spec's wire form) and completions ("done" /
    # "failed").  A restarted server replays it to re-enqueue whatever
    # was queued or in flight — in-flight points additionally resume
    # their chunk checkpoints from the ordinary per-sweep journals.

    @property
    def service_dir(self) -> Path:
        return self.root / "service"

    def service_queue(self) -> Journal:
        """The service's durable submission journal."""
        return Journal(self.service_dir / "queue.jsonl")

    def service_trace_path(self, fp: str) -> Path:
        """Where the service writes point ``fp``'s telemetry trace."""
        return self.service_dir / "traces" / f"{fp}.jsonl"

    def pending_submissions(self) -> list[dict]:
        """Replayed service-queue records still awaiting completion.

        Returns the ``submit`` records (fingerprint + spec wire form,
        submission order preserved) with no later ``done``/``failed``
        record — exactly the jobs a restarted server re-enqueues.
        """
        pending: dict[str, dict] = {}
        for record in self.service_queue().replay():
            event = record.get("event")
            if event == "submit" and record.get("point"):
                pending.setdefault(record["point"], record)
            elif event in ("done", "failed"):
                pending.pop(record.get("point"), None)
        return list(pending.values())

    def in_flight(self) -> list[dict]:
        """Points with journaled-but-uncommitted chunk checkpoints.

        One row per in-flight point across every sweep journal:
        ``{"sweep", "point", "chunks", "trials"}`` — what ``--resume``
        (or the service's restart path) would pick up mid-point.
        """
        rows = []
        for name, journal in self.journals():
            for fp, chunks in sorted(
                    chunk_map(journal.replay()).items()):
                rows.append({
                    "sweep": name,
                    "point": fp,
                    "chunks": len(chunks),
                    "trials": sum(len(results)
                                  for results in chunks.values()),
                })
        return rows

    # -- maintenance --------------------------------------------------

    def gc(self, *, drop_all: bool = False, dry_run: bool = False
           ) -> dict:
        """Reclaim dead state; returns removal counts.

        Policy (see ``docs/runstore.md``):

        * journals whose every journaled point was committed to the
          store are finished business — removed;
        * objects with a schema version other than the current
          :data:`RESULT_SCHEMA_VERSION` can never be served — removed;
        * stray ``*.tmp`` files from interrupted commits — removed;
        * ``drop_all=True`` wipes the whole store.

        ``dry_run=True`` reports the same counts (plus the doomed
        paths under ``"would_remove"``) while deleting nothing.
        """
        removed = {"journals": 0, "objects": 0, "temp_files": 0}
        doomed: list[str] = []
        if dry_run:
            removed["would_remove"] = doomed
        if drop_all:
            if self.root.is_dir():
                removed["journals"] = sum(1 for _ in self.journals())
                removed["objects"] = sum(
                    1 for _ in self.objects_dir.glob("*/*.json"))
                if dry_run:
                    doomed.append(str(self.root))
                else:
                    shutil.rmtree(self.root)
            return removed
        for _, journal in list(self.journals() or ()):
            records = journal.replay()
            pending = chunk_map(records)
            journaled = {record["point"] for record in records
                         if record.get("event") in ("chunk", "point")}
            if not pending and (not journaled
                                or journaled <= committed_points(records)):
                if dry_run:
                    doomed.append(str(journal.path))
                else:
                    journal.clear()
                removed["journals"] += 1
        if self.objects_dir.is_dir():
            for path in sorted(self.objects_dir.glob("*/*.json")):
                entry = self.get(path.stem)
                if entry is None or entry.get("schema") != \
                        RESULT_SCHEMA_VERSION:
                    if dry_run:
                        doomed.append(str(path))
                    else:
                        path.unlink(missing_ok=True)
                    removed["objects"] += 1
        if self.root.is_dir():
            for path in self.root.rglob("*.tmp"):
                if dry_run:
                    doomed.append(str(path))
                else:
                    path.unlink(missing_ok=True)
                removed["temp_files"] += 1
        return removed
