"""The on-disk content-addressed result store.

Layout, rooted at ``<output-dir>/.runstore/``::

    objects/<fp[:2]>/<fp>.json            one committed point per file
    journals/<sweep>.jsonl                per-sweep chunk checkpoints
    journals/<sweep>.<worker>.jsonl       per-worker journals of a
                                          distributed sweep
    leases/<fp>.lock                      live worker leases
    workers/<worker>.json                 worker status files
    manifests/<sweep>.json                published work-lists for
                                          `repro workers start`

Each object file holds ``{"schema", "fingerprint", "key", "row",
"meta"}`` — the full canonical key is stored next to the row so
``repro runs list`` and the gc can describe entries without reverse
lookups.  ``row`` is the CSV-bound result payload (byte-stable:
re-serialization round-trips every float); ``meta`` is free-form
provenance (wall time, resolved engine, chunk counts, sweep name)
that deliberately stays *out* of the row so cached and freshly
computed sweeps emit identical CSVs.

Commits are atomic: payloads are written to a temp file in the target
directory, fsynced, then ``os.replace``d into place — readers never
observe a half-written object, and a crash leaves only a stray
``*.tmp*`` file for gc.
"""

from __future__ import annotations

import copy
import json
import os
import shutil
import tempfile
from pathlib import Path

from .fingerprint import RESULT_SCHEMA_VERSION
from .journal import Journal, chunk_map, committed_points

__all__ = ["RunStore", "atomic_write_text"]


def atomic_write_text(target: Path, text: str) -> Path:
    """Durably write ``text`` to ``target`` via temp-file + rename."""
    target = Path(target)
    target.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", encoding="utf-8", dir=target.parent,
        prefix=target.name + ".", suffix=".tmp", delete=False)
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, target)
    except BaseException:
        os.unlink(handle.name)
        raise
    return target


class RunStore:
    """Content-addressed store for committed sweep points."""

    def __init__(self, root):
        self.root = Path(root)
        # Per-process memo of parsed object files, validated against
        # (mtime_ns, size) on every read: a resuming grid re-reads the
        # same committed points on each pass, and a distributed drain
        # loop polls them while peers compute.  Misses are never
        # memoized (a peer's commit must become visible immediately),
        # and hits are returned as deep copies so callers can extend
        # rows freely, exactly as with uncached reads.
        self._memo: dict[str, tuple[tuple[int, int], dict]] = {}

    @classmethod
    def for_output_dir(cls, output_dir=None) -> "RunStore":
        """The store that serves CSVs written under ``output_dir``."""
        from ..experiments.io import default_output_dir
        base = Path(default_output_dir() if output_dir is None
                    else output_dir)
        return cls(base / ".runstore")

    # -- objects ------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def object_path(self, fp: str) -> Path:
        return self.objects_dir / fp[:2] / f"{fp}.json"

    def __contains__(self, fp: str) -> bool:
        return self.object_path(fp).exists()

    def get(self, fp: str) -> dict | None:
        """The committed entry for ``fp``, or ``None``.

        A corrupt object file (impossible via the atomic commit path,
        but disks happen) reads as a miss, not an error — the point is
        simply recomputed and recommitted.

        Reads are memoized per process: the parsed payload is cached
        against the file's ``(mtime_ns, size)`` and re-parsed only
        when the object changes on disk, so a grid re-statting the
        same committed points on every resume pass pays one ``stat``
        per lookup instead of a full read-and-parse.
        """
        path = self.object_path(fp)
        try:
            stat = path.stat()
        except OSError:
            self._memo.pop(fp, None)
            return None
        token = (stat.st_mtime_ns, stat.st_size)
        memo = self._memo.get(fp)
        if memo is not None and memo[0] == token:
            return copy.deepcopy(memo[1])
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or "row" not in payload:
            return None
        self._memo[fp] = (token, payload)
        return copy.deepcopy(payload)

    def put(self, fp: str, *, key: dict, row, meta: dict | None = None
            ) -> Path:
        """Atomically commit one point; returns the object path."""
        payload = {
            "schema": key.get("schema", RESULT_SCHEMA_VERSION),
            "fingerprint": fp,
            "key": key,
            "row": row,
            "meta": meta or {},
        }
        self._memo.pop(fp, None)
        return atomic_write_text(self.object_path(fp),
                                 json.dumps(payload, indent=1))

    def entries(self):
        """Every committed entry, in stable (path-sorted) order."""
        if not self.objects_dir.is_dir():
            return
        for path in sorted(self.objects_dir.glob("*/*.json")):
            entry = self.get(path.stem)
            if entry is not None:
                yield entry

    # -- journals -----------------------------------------------------
    #
    # A single-process sweep journals to ``<sweep>.jsonl``.  A
    # distributed sweep gives every worker its own appender —
    # ``<sweep>.<worker_id>.jsonl`` — and *merges on read*: each file
    # is an ordinary torn-tail-recoverable journal, and the merged
    # record stream is what chunk resume, ``runs status``, and gc
    # consult.  Worker ids never contain ``.``, so the first dot in a
    # stem separates sweep from worker.

    @property
    def journals_dir(self) -> Path:
        return self.root / "journals"

    def journal(self, sweep: str, *, worker: str | None = None
                ) -> Journal:
        name = (f"{sweep}.jsonl" if worker is None
                else f"{sweep}.{worker}.jsonl")
        return Journal(self.journals_dir / name)

    def journals(self):
        """``(sweep name, Journal)`` pairs for every journal file.

        Per-worker files of a distributed sweep report their *sweep's*
        name (several pairs may share it); use :meth:`sweeps` for the
        grouped view or :meth:`sweep_records` for the merged stream.
        """
        if not self.journals_dir.is_dir():
            return
        for path in sorted(self.journals_dir.glob("*.jsonl")):
            yield path.stem.split(".", 1)[0], Journal(path)

    def sweeps(self):
        """``(sweep name, [Journal, ...])`` grouped per sweep."""
        grouped: dict[str, list[Journal]] = {}
        for name, journal in self.journals() or ():
            grouped.setdefault(name, []).append(journal)
        for name in sorted(grouped):
            yield name, grouped[name]

    def sweep_journals(self, sweep: str) -> list[Journal]:
        """Every journal file of ``sweep`` (base + per-worker)."""
        if not self.journals_dir.is_dir():
            return []
        paths = [path for path in
                 sorted(self.journals_dir.glob(f"{sweep}.jsonl"))
                 + sorted(self.journals_dir.glob(f"{sweep}.*.jsonl"))]
        return [Journal(path) for path in paths]

    def sweep_records(self, sweep: str) -> list[dict]:
        """The merged record stream of every journal of ``sweep``.

        Each file contributes its own consistent (torn-tail-recovered)
        prefix; files are concatenated in sorted-path order.  The
        record vocabulary is order-insensitive across writers — chunk
        records are keyed by ``(point, index)`` and ``point`` events
        are idempotent — so any interleaving yields the same
        :func:`~repro.runstore.journal.chunk_map`.
        """
        records: list[dict] = []
        for journal in self.sweep_journals(sweep):
            records.extend(journal.replay())
        return records

    def clear_sweep_journals(self, sweep: str) -> int:
        """Remove every journal file of ``sweep``; returns the count."""
        removed = 0
        for journal in self.sweep_journals(sweep):
            journal.clear()
            removed += 1
        return removed

    # -- distributed execution ----------------------------------------

    @property
    def leases_dir(self) -> Path:
        """Where sweep workers keep their per-point lease lockfiles."""
        return self.root / "leases"

    @property
    def workers_dir(self) -> Path:
        """Where sweep workers keep their status files."""
        return self.root / "workers"

    @property
    def manifests_dir(self) -> Path:
        """Where sweep launchers publish work manifests for helpers."""
        return self.root / "manifests"

    def manifest_path(self, sweep: str) -> Path:
        return self.manifests_dir / f"{sweep}.json"

    def write_manifest(self, sweep: str, entries: list[dict]) -> Path:
        """Publish ``sweep``'s work-list for ``repro workers start``.

        Each entry carries a point's RunSpec wire form (which preserves
        ``spec.key()``, hence the fingerprint, exactly) plus whatever
        row-side extras the point kind needs — enough for a helper
        process with no knowledge of the experiment module to queue
        the identical points.
        """
        payload = {"sweep": sweep, "points": entries}
        return atomic_write_text(self.manifest_path(sweep),
                                 json.dumps(payload, indent=1))

    def load_manifest(self, sweep: str) -> list[dict] | None:
        """``sweep``'s published work-list, or ``None`` if absent."""
        try:
            with open(self.manifest_path(sweep),
                      encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        points = payload.get("points") if isinstance(payload, dict) \
            else None
        return points if isinstance(points, list) else None

    def clear_manifest(self, sweep: str) -> None:
        self.manifest_path(sweep).unlink(missing_ok=True)

    # -- service state ------------------------------------------------
    #
    # The simulation service keeps its durable queue next to the sweep
    # journals: one append-only JSONL file recording job submissions
    # ("submit" with the spec's wire form) and completions ("done" /
    # "failed").  A restarted server replays it to re-enqueue whatever
    # was queued or in flight — in-flight points additionally resume
    # their chunk checkpoints from the ordinary per-sweep journals.

    @property
    def service_dir(self) -> Path:
        return self.root / "service"

    def service_queue(self, *, worker: str | None = None) -> Journal:
        """The service's durable submission journal.

        A single server appends to ``queue.jsonl``; additional server
        processes sharing one store (or one server per worker id)
        append to ``queue.<worker>.jsonl`` instead, and
        :meth:`service_queue_records` merges them on read — a second
        writer never shadows the first.
        """
        name = ("queue.jsonl" if worker is None
                else f"queue.{worker}.jsonl")
        return Journal(self.service_dir / name)

    def service_queue_records(self) -> list[dict]:
        """Merged records of every service queue journal on disk.

        Records carrying a ``ts`` timestamp are merge-sorted by it
        (stably, so same-file order is preserved); legacy records
        without one sort first in file order.
        """
        if not self.service_dir.is_dir():
            return []
        records: list[dict] = []
        for path in sorted(self.service_dir.glob("queue*.jsonl")):
            records.extend(Journal(path).replay())
        records.sort(key=lambda record: record.get("ts", 0.0) or 0.0)
        return records

    def service_trace_path(self, fp: str) -> Path:
        """Where the service writes point ``fp``'s telemetry trace."""
        return self.service_dir / "traces" / f"{fp}.jsonl"

    def pending_submissions(self) -> list[dict]:
        """Replayed service-queue records still awaiting completion.

        Returns the ``submit`` records (fingerprint + spec wire form,
        submission order preserved) with no later ``done``/``failed``
        record — exactly the jobs a restarted server re-enqueues.
        Every ``queue*.jsonl`` journal is merged, so multiple server
        processes sharing one store replay each other's completions.
        """
        pending: dict[str, dict] = {}
        for record in self.service_queue_records():
            event = record.get("event")
            if event == "submit" and record.get("point"):
                pending.setdefault(record["point"], record)
            elif event in ("done", "failed"):
                pending.pop(record.get("point"), None)
        return list(pending.values())

    def in_flight(self) -> list[dict]:
        """Points with journaled-but-uncommitted chunk checkpoints.

        One row per in-flight point across every sweep (per-worker
        journal files merged first, so a point checkpointed by several
        workers reports once): ``{"sweep", "point", "chunks",
        "trials"}`` — what ``--resume`` (or the service's restart
        path) would pick up mid-point.
        """
        rows = []
        for name, journals in self.sweeps():
            records: list[dict] = []
            for journal in journals:
                records.extend(journal.replay())
            for fp, chunks in sorted(chunk_map(records).items()):
                rows.append({
                    "sweep": name,
                    "point": fp,
                    "chunks": len(chunks),
                    "trials": sum(len(results)
                                  for results in chunks.values()),
                })
        return rows

    # -- maintenance --------------------------------------------------

    def gc(self, *, drop_all: bool = False, dry_run: bool = False
           ) -> dict:
        """Reclaim dead state; returns removal counts.

        Policy (see ``docs/runstore.md``):

        * sweeps whose every journaled point (across all of the
          sweep's per-worker journal files) was committed to the store
          are finished business — their journals are removed;
        * objects with a schema version other than the current
          :data:`RESULT_SCHEMA_VERSION` can never be served — removed;
        * stray ``*.tmp`` files from interrupted commits, lease
          reclaim tombstones, and worker status files whose worker
          finished — removed;
        * ``drop_all=True`` wipes the whole store.

        ``dry_run=True`` reports the same counts (plus the doomed
        paths under ``"would_remove"``) while deleting nothing.
        """
        removed = {"journals": 0, "objects": 0, "temp_files": 0,
                   "worker_files": 0}
        doomed: list[str] = []
        if dry_run:
            removed["would_remove"] = doomed
        if drop_all:
            if self.root.is_dir():
                removed["journals"] = sum(1 for _ in self.journals())
                removed["objects"] = sum(
                    1 for _ in self.objects_dir.glob("*/*.json"))
                if dry_run:
                    doomed.append(str(self.root))
                else:
                    shutil.rmtree(self.root)
            return removed
        for _, journals in list(self.sweeps() or ()):
            records: list[dict] = []
            for journal in journals:
                records.extend(journal.replay())
            pending = chunk_map(records)
            journaled = {record["point"] for record in records
                         if record.get("event") in ("chunk", "point")}
            if not pending and (not journaled
                                or journaled <= committed_points(records)):
                for journal in journals:
                    if dry_run:
                        doomed.append(str(journal.path))
                    else:
                        journal.clear()
                    removed["journals"] += 1
        if self.workers_dir.is_dir():
            for path in sorted(self.workers_dir.glob("*.json")):
                try:
                    with open(path, encoding="utf-8") as handle:
                        payload = json.load(handle)
                    state = payload.get("state")
                except (OSError, ValueError, AttributeError):
                    state = None
                if state != "running":
                    if dry_run:
                        doomed.append(str(path))
                    else:
                        path.unlink(missing_ok=True)
                    removed["worker_files"] += 1
        if self.leases_dir.is_dir():
            for path in sorted(self.leases_dir.glob("*.reclaim-*")):
                if dry_run:
                    doomed.append(str(path))
                else:
                    path.unlink(missing_ok=True)
                removed["temp_files"] += 1
        if self.manifests_dir.is_dir():
            # A manifest with no journal left belongs to a finished
            # sweep — the launcher normally deletes it, but a crashed
            # launcher leaves it behind.
            for path in sorted(self.manifests_dir.glob("*.json")):
                if not self.sweep_journals(path.stem):
                    if dry_run:
                        doomed.append(str(path))
                    else:
                        path.unlink(missing_ok=True)
                    removed["temp_files"] += 1
        if self.objects_dir.is_dir():
            for path in sorted(self.objects_dir.glob("*/*.json")):
                entry = self.get(path.stem)
                if entry is None or entry.get("schema") != \
                        RESULT_SCHEMA_VERSION:
                    if dry_run:
                        doomed.append(str(path))
                    else:
                        path.unlink(missing_ok=True)
                    removed["objects"] += 1
        if self.root.is_dir():
            for path in self.root.rglob("*.tmp"):
                if dry_run:
                    doomed.append(str(path))
                else:
                    path.unlink(missing_ok=True)
                removed["temp_files"] += 1
        return removed
