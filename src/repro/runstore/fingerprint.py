"""Content addresses for sweep points.

A sweep point is cacheable only if its identity is *stable*: the same
logical inputs must hash to the same address regardless of dict
insertion order, tuple-vs-list spelling, numpy scalar types, or how a
float was written in source (``1e-2`` and ``0.01`` are the same
number, so they are the same point).  :func:`fingerprint` therefore
hashes a *canonical JSON* form: keys sorted, sequences normalized to
lists, numpy scalars unboxed, ``-0.0`` folded into ``0.0``, and floats
rendered by Python's shortest round-trip ``repr``.

The key always embeds :data:`RESULT_SCHEMA_VERSION`; bumping it after
a result-schema change orphans every old cache entry at once (they are
reclaimed by ``repro runs gc``) instead of silently serving rows with
missing columns.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping, Sequence

from ..faults import active_faults
from ..serialize import protocol_to_dict

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "canonical",
    "canonical_json",
    "fingerprint",
    "majority_point_key",
    "point_key",
    "spec_key",
]

#: Version of the result-row schema committed to the store.  Bump when
#: the orchestrator's row layout changes; old entries stop resolving.
RESULT_SCHEMA_VERSION = 1


def canonical(value):
    """Normalize ``value`` into plain, deterministic JSON types.

    Numpy scalars are unboxed via their ``item()`` method, tuples
    become lists, mapping keys are coerced to strings, and ``-0.0`` is
    folded into ``0.0``.  NaN is rejected: a key containing NaN can
    never be looked up again (NaN != NaN), so it cannot address a
    cache entry.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if hasattr(value, "item") and not isinstance(value, (Mapping, Sequence)):
        value = value.item()
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value != value:
            raise ValueError("NaN cannot appear in a fingerprint key")
        return 0.0 if value == 0.0 else value
    if isinstance(value, Mapping):
        return {str(key): canonical(item) for key, item in value.items()}
    if isinstance(value, Sequence):
        return [canonical(item) for item in value]
    raise TypeError(
        f"cannot canonicalize {type(value).__name__} for fingerprinting")


def canonical_json(key) -> str:
    """The canonical serialized form whose hash is the fingerprint."""
    return json.dumps(canonical(key), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def fingerprint(key) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``key``."""
    digest = hashlib.sha256(canonical_json(key).encode("utf-8"))
    return digest.hexdigest()


def point_key(kind: str, params: Mapping) -> dict:
    """Key for a generic experiment point (topology cell, phase run)."""
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "kind": kind,
        "params": canonical(params),
    }


def majority_point_key(protocol, *, n: int, epsilon: float, trials: int,
                       seed: int, engine: str = "auto",
                       max_parallel_time: float | None = None,
                       batch_fraction: float = 0.05) -> dict:
    """Key for one ``measure_majority_point``-shaped sweep point.

    The protocol enters through its serialized form (name + full
    parameters), so two differently constructed but identical protocol
    instances address the same cache entry.
    """
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "kind": "majority-point",
        "protocol": protocol_to_dict(protocol),
        "n": n,
        "epsilon": epsilon,
        "trials": trials,
        "seed": seed,
        "engine": engine,
        "max_parallel_time": max_parallel_time,
        "batch_fraction": batch_fraction,
    }


def spec_key(spec) -> dict:
    """Key for a :class:`~repro.sim.run.RunSpec` sweep point.

    For margin-form majority specs this emits the *exact* dict
    :func:`majority_point_key` produces, so the fingerprints — and
    with them every committed cache entry — are unchanged by the
    RunSpec migration.  Runtime-only fields (telemetry, recorders,
    observers) never enter the key: they do not affect the results.

    Engine-key policy: the key records the *requested* engine name,
    not the engine resolution resolves it to.  Every exact engine —
    and every engine ``"auto"`` may pick, including the population-
    size routing between the token and count ensembles — samples the
    same chain, so resolved names are distribution-irrelevant and
    keying on them would needlessly invalidate caches whenever a
    routing threshold moves.  The resolved name is recorded in the
    entry's *metadata* (``engine_resolved``) for provenance, e.g. in
    ``runs status --metrics``.  Requesting a different engine *name*
    (say ``"count-ensemble"`` instead of ``"auto"``) is a different
    key: per-trial random streams are engine-specific, so the swap
    changes byte-level results even though distributions agree.
    """
    if spec.initial is not None or spec.graph is not None:
        raise ValueError(
            "only majority-input specs on the complete graph are "
            "addressable sweep points")
    engine = spec.engine
    if not isinstance(engine, str):
        raise ValueError(
            "engine instances cannot be fingerprinted; use a registered "
            "engine name")
    key = {
        "schema": RESULT_SCHEMA_VERSION,
        "kind": "majority-point",
        "protocol": protocol_to_dict(spec.protocol),
        "n": spec.n,
        "epsilon": spec.epsilon,
        "trials": spec.num_trials,
        "seed": spec.seed,
        "engine": engine,
        "max_parallel_time": spec.max_parallel_time,
        "batch_fraction": spec.batch_fraction,
    }
    if spec.count_a is not None:
        # Count-form inputs extend the key; margin-form keys stay
        # byte-identical to the pre-RunSpec layout.
        key["count_a"] = spec.count_a
        key["count_b"] = spec.count_b
    if spec.majority != "A":
        key["majority"] = spec.majority
    if spec.max_steps is not None:
        key["max_steps"] = spec.max_steps
    if spec.on_timeout != "return":
        key["on_timeout"] = spec.on_timeout
    faults = active_faults(spec.faults)
    if faults is not None:
        # Only active fault models enter the key (and only their
        # non-default fields), so every clean fingerprint — and every
        # committed cache entry — is unchanged by the fault subsystem.
        key["faults"] = faults.key()
    return key
